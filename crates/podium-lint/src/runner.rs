//! Orchestration: file discovery, pass execution, suppression, and
//! result assembly. The binary is a thin wrapper over [`run`]; the
//! integration tests call it directly.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::allow::{self, Allowlist};
use crate::passes::{casts, cfg_features, locks, panic, protocol};
use crate::scan::FileScan;
use crate::{Rule, Violation};

/// What to lint and how.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Discover and lint every workspace crate (walks up from `cwd` to
    /// the workspace root); also enables the cross-file protocol pass.
    pub workspace: bool,
    /// Explicit files/directories to lint (always treated as library
    /// code — pointing the tool at a path means "audit this").
    pub paths: Vec<PathBuf>,
    /// Allowlist file; defaults to `<root>/podium-lint.allow` in
    /// workspace mode.
    pub allowlist: Option<PathBuf>,
    /// Deny advisory rules (`index`, `expect`) too, not just the
    /// default-deny set.
    pub deny_all: bool,
    /// Working directory to resolve the workspace from (defaults to the
    /// process cwd).
    pub cwd: Option<PathBuf>,
}

/// All findings plus the resolved root they are relative to.
#[derive(Debug)]
pub struct Outcome {
    /// Every violation, suppressed ones included (`allowed` set).
    pub violations: Vec<Violation>,
    /// Workspace root (or cwd for explicit-path runs).
    pub root: PathBuf,
}

impl Outcome {
    /// Unsuppressed violations that fail the run under the given
    /// strictness.
    pub fn denied(&self, deny_all: bool) -> usize {
        self.violations
            .iter()
            .filter(|v| v.allowed.is_none() && (deny_all || denied_by_default(v.rule)))
            .count()
    }
}

/// Advisory-by-default rules: high-volume, justified wholesale in hot
/// numeric kernels. CI runs `--deny-all`, which promotes them.
fn denied_by_default(rule: Rule) -> bool {
    !matches!(rule, Rule::Index | Rule::Expect | Rule::AsCast)
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// A file to lint: absolute path plus the stable relative name used in
/// reports, and the crate directory owning it (for manifests and the
/// per-crate lock graph).
struct SourceFile {
    abs: PathBuf,
    rel: String,
    crate_dir: PathBuf,
}

/// Relative path with forward slashes.
fn rel_name(root: &Path, abs: &Path) -> String {
    let rel = abs.strip_prefix(root).unwrap_or(abs);
    rel.to_string_lossy().replace('\\', "/")
}

/// Runs the configured lint. `Err` is an environment problem (missing
/// workspace, unreadable path) rather than a lint finding.
pub fn run(opts: &Options) -> Result<Outcome, String> {
    let cwd = match &opts.cwd {
        Some(d) => d.clone(),
        None => std::env::current_dir().map_err(|e| format!("cannot determine cwd: {e}"))?,
    };

    let mut files: Vec<SourceFile> = Vec::new();
    let root;
    if opts.workspace {
        root = find_workspace_root(&cwd)
            .ok_or_else(|| "no workspace root ([workspace] in Cargo.toml) above cwd".to_owned())?;
        // Library code: the root package's src/ plus every crates/*/src/.
        let mut dirs = vec![(root.join("src"), root.clone())];
        let crates_dir = root.join("crates");
        if let Ok(entries) = std::fs::read_dir(&crates_dir) {
            let mut crate_dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
            crate_dirs.sort();
            for c in crate_dirs {
                if c.join("Cargo.toml").is_file() {
                    dirs.push((c.join("src"), c.clone()));
                }
            }
        }
        for (src_dir, crate_dir) in dirs {
            let mut found = Vec::new();
            rust_files(&src_dir, &mut found);
            for abs in found {
                files.push(SourceFile {
                    rel: rel_name(&root, &abs),
                    abs,
                    crate_dir: crate_dir.clone(),
                });
            }
        }
    } else {
        root = cwd.clone();
        for p in &opts.paths {
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                cwd.join(p)
            };
            if abs.is_dir() {
                let mut found = Vec::new();
                rust_files(&abs, &mut found);
                for f in found {
                    files.push(SourceFile {
                        rel: rel_name(&root, &f),
                        crate_dir: nearest_manifest_dir(&f).unwrap_or_else(|| root.clone()),
                        abs: f,
                    });
                }
            } else if abs.is_file() {
                files.push(SourceFile {
                    rel: rel_name(&root, &abs),
                    crate_dir: nearest_manifest_dir(&abs).unwrap_or_else(|| root.clone()),
                    abs,
                });
            } else {
                return Err(format!("no such path: {}", p.display()));
            }
        }
    }
    if files.is_empty() {
        return Err("nothing to lint: pass --workspace or explicit paths".to_owned());
    }

    // Allowlist.
    let allowlist_path = opts.allowlist.clone().or_else(|| {
        let default = root.join("podium-lint.allow");
        default.is_file().then_some(default)
    });
    let mut violations: Vec<Violation> = Vec::new();
    let allowlist = match &allowlist_path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read allowlist {}: {e}", p.display()))?;
            let (list, bad) = Allowlist::parse(&text, &rel_name(&root, p));
            violations.extend(bad);
            list
        }
        None => Allowlist::default(),
    };

    // Manifest cache: crate dir → (manifest display name, features).
    let mut manifests: BTreeMap<PathBuf, (String, Vec<String>)> = BTreeMap::new();

    // Per-crate lock edges for the cross-file cycle check.
    let mut lock_edges: BTreeMap<PathBuf, Vec<locks::LockEdge>> = BTreeMap::new();

    for sf in &files {
        let src =
            std::fs::read(&sf.abs).map_err(|e| format!("cannot read {}: {e}", sf.abs.display()))?;
        let scan = FileScan::new(&src);
        let (allows, mut file_violations) = allow::collect_allows(&scan, &sf.rel);

        file_violations.extend(panic::run(&scan, &sf.rel));
        file_violations.extend(casts::run(&scan, &sf.rel));

        let fl = locks::collect(&scan, &sf.rel);
        file_violations.extend(fl.violations);
        lock_edges
            .entry(sf.crate_dir.clone())
            .or_default()
            .extend(fl.edges);

        let (manifest_name, features) = manifests
            .entry(sf.crate_dir.clone())
            .or_insert_with(|| load_manifest(&root, &sf.crate_dir));
        file_violations.extend(cfg_features::run(&scan, &sf.rel, features, manifest_name));

        allow::apply_suppressions(&mut file_violations, &allows, &allowlist);
        violations.extend(file_violations);
    }

    // Cross-file checks: lock-order cycles per crate, protocol pass.
    let mut cross: Vec<Violation> = Vec::new();
    for edges in lock_edges.values() {
        cross.extend(locks::cycle_violations(edges));
    }
    if opts.workspace {
        cross.extend(protocol::run(&root));
    }
    allow::apply_suppressions(&mut cross, &[], &allowlist);
    violations.extend(cross);

    violations
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(Outcome { violations, root })
}

/// Nearest ancestor directory containing a `Cargo.toml`.
fn nearest_manifest_dir(file: &Path) -> Option<PathBuf> {
    let mut dir = file.parent();
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

/// Loads a crate manifest's display name and declared features; a crate
/// without a readable manifest gets no declared features (every cfg
/// feature use there is flagged, loudly — that is the safe direction).
fn load_manifest(root: &Path, crate_dir: &Path) -> (String, Vec<String>) {
    let manifest = crate_dir.join("Cargo.toml");
    let name = rel_name(root, &manifest);
    match std::fs::read_to_string(&manifest) {
        Ok(text) => {
            let features = cfg_features::declared_features(&text);
            (name, features)
        }
        Err(_) => (name, Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denied_by_default_is_advisory_for_index_and_expect() {
        assert!(!denied_by_default(Rule::Index));
        assert!(!denied_by_default(Rule::Expect));
        assert!(!denied_by_default(Rule::AsCast));
        assert!(denied_by_default(Rule::Unwrap));
        assert!(denied_by_default(Rule::LockOrder));
        assert!(denied_by_default(Rule::BadAllow));
    }
}
