//! Shared per-file token machinery for the passes: significant-token
//! views, balanced-delimiter matching, attribute scanning, and
//! `#[cfg(test)]` region detection.

use crate::lexer::{lex, Token, TokenKind};

/// A lexed file plus the derived structure every pass needs. `sig`
/// indexes the non-comment tokens; passes address tokens by
/// *significant index* so comments never perturb pattern matching,
/// while the comment tokens remain available for allow-comment
/// extraction.
pub struct FileScan<'a> {
    /// Raw bytes.
    pub src: &'a [u8],
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    pub sig: Vec<usize>,
    /// Half-open ranges of significant indices that belong to test-only
    /// code (`#[cfg(test)]` / `#[test]` / `#[bench]` items) and are
    /// exempt from the panic-freedom and lock passes.
    pub test_regions: Vec<(usize, usize)>,
}

/// Rust keywords that can legally precede `[` without it being an index
/// expression (`return [1, 2]`, `in [a, b]`, …).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// True if `text` is a Rust keyword (receiver exclusion for indexing).
pub fn is_keyword(text: &[u8]) -> bool {
    KEYWORDS.iter().any(|k| k.as_bytes() == text)
}

impl<'a> FileScan<'a> {
    /// Lexes and precomputes structure.
    pub fn new(src: &'a [u8]) -> Self {
        let tokens = lex(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let mut scan = FileScan {
            src,
            tokens,
            sig,
            test_regions: Vec::new(),
        };
        scan.test_regions = scan.compute_test_regions();
        scan
    }

    /// The token at significant index `si`.
    pub fn tok(&self, si: usize) -> Option<&Token> {
        self.sig.get(si).and_then(|&i| self.tokens.get(i))
    }

    /// The bytes of the token at significant index `si`.
    pub fn text(&self, si: usize) -> &'a [u8] {
        match self.tok(si) {
            Some(t) => self.src.get(t.start..t.end).unwrap_or(b""),
            None => b"",
        }
    }

    /// Is `si` a punctuation token equal to `b`?
    pub fn is_punct(&self, si: usize, b: u8) -> bool {
        self.tok(si)
            .is_some_and(|t| t.kind == TokenKind::Punct && self.text(si) == [b])
    }

    /// Is `si` an identifier token equal to `name`?
    pub fn is_ident(&self, si: usize, name: &[u8]) -> bool {
        self.tok(si)
            .is_some_and(|t| t.kind == TokenKind::Ident && self.text(si) == name)
    }

    /// Is `si` an identifier of any spelling?
    pub fn is_any_ident(&self, si: usize) -> bool {
        self.tok(si).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    /// (line, col) of the token at `si`, or (0, 0) out of bounds.
    pub fn pos(&self, si: usize) -> (u32, u32) {
        self.tok(si).map(|t| (t.line, t.col)).unwrap_or((0, 0))
    }

    /// Given the significant index of an opening delimiter byte
    /// (`{`/`(`/`[`), returns the index of its matching closer, or
    /// `None` if the file ends first.
    pub fn match_delim(&self, open_si: usize) -> Option<usize> {
        let (open, close) = match self.text(open_si) {
            b"{" => (b'{', b'}'),
            b"(" => (b'(', b')'),
            b"[" => (b'[', b']'),
            _ => return None,
        };
        let mut depth = 0usize;
        let mut si = open_si;
        while si < self.sig.len() {
            if self.is_punct(si, open) {
                depth += 1;
            } else if self.is_punct(si, close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(si);
                }
            }
            si += 1;
        }
        None
    }

    /// If `si` starts an attribute (`#[…]` or `#![…]`), returns
    /// `(bracket_open_si, bracket_close_si, inner)` where `inner` marks
    /// the `#!` form. Otherwise `None`.
    pub fn attr_at(&self, si: usize) -> Option<(usize, usize, bool)> {
        if !self.is_punct(si, b'#') {
            return None;
        }
        let (open, inner) = if self.is_punct(si + 1, b'!') {
            (si + 2, true)
        } else {
            (si + 1, false)
        };
        if !self.is_punct(open, b'[') {
            return None;
        }
        let close = self.match_delim(open)?;
        Some((open, close, inner))
    }

    /// Whether the attribute spanning `(open, close)` gates test-only
    /// code. `#[test]`, `#[bench]`, and any `cfg` mentioning `test` /
    /// `doctest` outside a `not(…)` count. The `not(…)` check is
    /// coarse (any `not` in the attribute disqualifies it), which
    /// misclassifies `#[cfg(all(test, not(feature = "x")))]` as
    /// non-test; that shape does not occur in this workspace.
    fn attr_is_test(&self, open: usize, close: usize) -> bool {
        let mut has_test = false;
        let mut has_not = false;
        let mut has_cfg = false;
        let mut first_ident: Option<&[u8]> = None;
        for si in open + 1..close {
            if self.is_any_ident(si) {
                let text = self.text(si);
                if first_ident.is_none() {
                    first_ident = Some(text);
                }
                match text {
                    b"test" | b"doctest" => has_test = true,
                    b"not" => has_not = true,
                    b"cfg" => has_cfg = true,
                    _ => {}
                }
            }
        }
        match first_ident {
            Some(b"test") | Some(b"bench") => true,
            _ => has_cfg && has_test && !has_not,
        }
    }

    /// Computes the significant-index ranges of test-only items. After a
    /// test-gating attribute, subsequent attributes are absorbed and the
    /// item extends to its body's closing brace (or the terminating `;`
    /// for bodiless items). An *inner* test attribute (`#![cfg(test)]`)
    /// marks the whole file.
    fn compute_test_regions(&self) -> Vec<(usize, usize)> {
        let mut regions = Vec::new();
        let mut si = 0usize;
        while si < self.sig.len() {
            let Some((open, close, inner)) = self.attr_at(si) else {
                si += 1;
                continue;
            };
            if !self.attr_is_test(open, close) {
                si = close + 1;
                continue;
            }
            if inner {
                regions.push((0, self.sig.len()));
                return regions;
            }
            let start = si;
            let mut at = close + 1;
            // Absorb any further attributes on the same item.
            while let Some((_, c2, _)) = self.attr_at(at) {
                at = c2 + 1;
            }
            let end = self.item_end(at);
            regions.push((start, end));
            si = end;
        }
        regions
    }

    /// The significant index one past the end of the item starting at
    /// `at`: the matching `}` of the first body brace at bracket depth
    /// zero, or the first `;` at depth zero for bodiless items.
    fn item_end(&self, at: usize) -> usize {
        let mut depth = 0usize;
        let mut si = at;
        while si < self.sig.len() {
            let text = self.text(si);
            match text {
                b"(" | b"[" => depth += 1,
                b")" | b"]" => depth = depth.saturating_sub(1),
                b"{" if depth == 0 => {
                    return self
                        .match_delim(si)
                        .map(|c| c + 1)
                        .unwrap_or(self.sig.len());
                }
                b";" if depth == 0 => return si + 1,
                _ => {}
            }
            si += 1;
        }
        self.sig.len()
    }

    /// Whether significant index `si` falls inside a test-only region.
    pub fn in_test_region(&self, si: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| si >= s && si < e)
    }

    /// If `si` is the `fn` keyword of a function *with a body*, returns
    /// `(name, body_open_si, body_close_si)`. Bodiless trait-method
    /// declarations return `None`.
    pub fn function_at(&self, si: usize) -> Option<(String, usize, usize)> {
        if !self.is_ident(si, b"fn") {
            return None;
        }
        let name = String::from_utf8_lossy(self.text(si + 1)).into_owned();
        let mut depth = 0usize;
        let mut at = si + 2;
        while at < self.sig.len() {
            match self.text(at) {
                b"(" | b"[" => depth += 1,
                b")" | b"]" => depth = depth.saturating_sub(1),
                b"{" if depth == 0 => {
                    let close = self.match_delim(at)?;
                    return Some((name, at, close));
                }
                b";" if depth == 0 => return None,
                _ => {}
            }
            at += 1;
        }
        None
    }

    /// Finds the body of the named function anywhere in the file.
    pub fn find_function(&self, name: &[u8]) -> Option<(usize, usize)> {
        (0..self.sig.len()).find_map(|si| {
            if self.is_ident(si, b"fn") && self.is_ident(si + 1, name) {
                self.function_at(si).map(|(_, o, c)| (o, c))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_covers_cfg_test_module() {
        let src = br#"
fn lib_code() { x.unwrap(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}
fn more_lib() {}
"#;
        let scan = FileScan::new(src);
        let unwraps: Vec<bool> = (0..scan.sig.len())
            .filter(|&si| scan.is_ident(si, b"unwrap"))
            .map(|si| scan.in_test_region(si))
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        // Code after the module is not exempt.
        let more = (0..scan.sig.len())
            .find(|&si| scan.is_ident(si, b"more_lib"))
            .expect("more_lib token"); // podium-lint: allow(expect) — test fixture, token known present
        assert!(!scan.in_test_region(more));
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = b"#[cfg(not(test))]\nfn f() { x.unwrap(); }";
        let scan = FileScan::new(src);
        let si = (0..scan.sig.len())
            .find(|&si| scan.is_ident(si, b"unwrap"))
            .expect("unwrap token"); // podium-lint: allow(expect) — test fixture, token known present
        assert!(!scan.in_test_region(si));
    }

    #[test]
    fn bodiless_test_item_ends_at_semicolon() {
        let src = b"#[cfg(test)]\nmod tests;\nfn g() {}";
        let scan = FileScan::new(src);
        let g = (0..scan.sig.len())
            .find(|&si| scan.is_ident(si, b"g"))
            .expect("g token"); // podium-lint: allow(expect) — test fixture, token known present
        assert!(!scan.in_test_region(g));
    }

    #[test]
    fn match_delim_handles_nesting() {
        let src = b"{ a { b } c } d";
        let scan = FileScan::new(src);
        let close = scan.match_delim(0).expect("match"); // podium-lint: allow(expect) — test fixture, brace known balanced
        assert_eq!(scan.text(close), b"}");
        assert!(scan.is_ident(close + 1, b"d"));
    }
}
