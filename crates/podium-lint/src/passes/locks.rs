//! Pass 2 — lock discipline.
//!
//! Two checks over non-test library code:
//!
//! * **poison propagation** (`lock-poison`): a zero-argument
//!   `.lock()` / `.read()` / `.write()` immediately followed by
//!   `.unwrap()` propagates lock poisoning as a panic instead of
//!   applying an explicit policy (`podium_service::poison::recover`,
//!   or a typed shutdown error).
//! * **nesting order** (`lock-order`): acquisition sites are collected
//!   per function with the receiver expression as the lock's name
//!   (`self.` stripped, so `self.shared.state` and `shared.state` are
//!   one node). While a guard is live, acquiring a different lock adds
//!   a `held → acquired` edge; a cycle in the resulting per-crate graph
//!   is a potential deadlock.
//!
//! Guard lifetimes are inferred structurally: a `let`-bound guard lives
//! to the end of its enclosing block (or an explicit `drop(binding)`);
//! a guard acquired inside a larger expression lives to the end of the
//! statement. `if let` / `match` scrutinee guards are treated as
//! statement-scoped — an under-approximation that can miss edges but
//! never invents them. The zero-argument requirement keeps
//! `io::Read::read(&mut buf)` and friends (which take arguments) out
//! of the graph.

use std::collections::BTreeMap;

use crate::scan::FileScan;
use crate::{Rule, Violation};

/// One inferred nesting edge: `held` was live when `acquired` was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock already held.
    pub held: String,
    /// Lock acquired under it.
    pub acquired: String,
    /// Function in which the nesting occurs.
    pub function: String,
    /// File of the acquisition site.
    pub file: String,
    /// Line of the acquisition site.
    pub line: u32,
}

/// Per-file result: poison violations plus raw nesting edges (the
/// cycle check runs crate-wide over the merged edge set).
pub struct FileLocks {
    /// `lock-poison` findings.
    pub violations: Vec<Violation>,
    /// Nesting edges discovered in this file.
    pub edges: Vec<LockEdge>,
}

/// A live guard inside a function body.
struct Guard {
    lock: String,
    binding: Option<Vec<u8>>,
    /// Brace depth at acquisition; `let`-bound guards expire when this
    /// depth closes.
    depth: usize,
    /// Statement-scoped (not `let`-bound): expires at `;`.
    temporary: bool,
}

/// Collects poison violations and nesting edges from one file.
pub fn collect(scan: &FileScan<'_>, file: &str) -> FileLocks {
    let mut out = FileLocks {
        violations: Vec::new(),
        edges: Vec::new(),
    };
    let mut si = 0usize;
    while si < scan.sig.len() {
        if scan.is_ident(si, b"fn") && !scan.in_test_region(si) {
            if let Some((name, body_open, body_close)) = scan.function_at(si) {
                analyze_body(scan, file, &name, body_open, body_close, &mut out);
                si = body_close + 1;
                continue;
            }
        }
        si += 1;
    }
    out
}

/// Walks one function body tracking guard lifetimes.
fn analyze_body(
    scan: &FileScan<'_>,
    file: &str,
    function: &str,
    body_open: usize,
    body_close: usize,
    out: &mut FileLocks,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // Statement state: does the current statement start with `let`, and
    // what is the first binding identifier after it?
    let mut stmt_is_let = false;
    let mut stmt_binding: Option<Vec<u8>> = None;
    let mut at_stmt_start = true;

    let mut si = body_open;
    while si <= body_close {
        let text = scan.text(si);
        match text {
            b"{" => {
                depth += 1;
                at_stmt_start = true;
                stmt_is_let = false;
                stmt_binding = None;
            }
            b"}" => {
                // Everything acquired at this depth dies with the block,
                // `let`-bound or not.
                guards.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
                at_stmt_start = true;
                stmt_is_let = false;
                stmt_binding = None;
            }
            b";" => {
                guards.retain(|g| !g.temporary);
                at_stmt_start = true;
                stmt_is_let = false;
                stmt_binding = None;
            }
            _ => {
                if at_stmt_start {
                    at_stmt_start = false;
                    if scan.is_ident(si, b"let") {
                        stmt_is_let = true;
                        stmt_binding = first_binding(scan, si + 1);
                    }
                }
                // drop(binding) releases a guard early.
                if scan.is_ident(si, b"drop")
                    && scan.is_punct(si + 1, b'(')
                    && scan.is_punct(si + 3, b')')
                {
                    let dropped = scan.text(si + 2).to_vec();
                    guards.retain(|g| g.binding.as_deref() != Some(dropped.as_slice()));
                }
                if let Some(lock) = acquisition_at(scan, si) {
                    let (line, col) = scan.pos(si + 1);
                    // Nesting edges against everything currently held.
                    for g in &guards {
                        if g.lock != lock {
                            out.edges.push(LockEdge {
                                held: g.lock.clone(),
                                acquired: lock.clone(),
                                function: function.to_owned(),
                                file: file.to_owned(),
                                line,
                            });
                        }
                    }
                    // Bare .unwrap() right after the acquisition.
                    if scan.is_punct(si + 4, b'.')
                        && scan.is_ident(si + 5, b"unwrap")
                        && scan.is_punct(si + 6, b'(')
                        && scan.is_punct(si + 7, b')')
                    {
                        out.violations.push(Violation::new(
                            file,
                            line,
                            col,
                            Rule::LockPoison,
                            format!(
                                "bare `.{}().unwrap()` on `{lock}` propagates poisoning as a panic — apply an explicit poison policy",
                                String::from_utf8_lossy(scan.text(si + 1)),
                            ),
                        ));
                    }
                    guards.push(Guard {
                        lock,
                        binding: stmt_binding.clone().filter(|_| stmt_is_let),
                        depth,
                        temporary: !stmt_is_let,
                    });
                }
            }
        }
        si += 1;
    }
}

/// First identifier after `let` (skipping `mut` and pattern openers).
fn first_binding(scan: &FileScan<'_>, mut si: usize) -> Option<Vec<u8>> {
    for _ in 0..4 {
        if scan.is_ident(si, b"mut") || scan.is_punct(si, b'(') || scan.is_punct(si, b'&') {
            si += 1;
            continue;
        }
        if scan.is_any_ident(si) {
            return Some(scan.text(si).to_vec());
        }
        return None;
    }
    None
}

/// If `si` is the `.` of a zero-argument `.lock()` / `.read()` /
/// `.write()`, returns the normalized receiver chain (`self.` stripped).
fn acquisition_at(scan: &FileScan<'_>, si: usize) -> Option<String> {
    if !scan.is_punct(si, b'.') {
        return None;
    }
    let method_ok = scan.is_ident(si + 1, b"lock")
        || scan.is_ident(si + 1, b"read")
        || scan.is_ident(si + 1, b"write");
    if !method_ok || !scan.is_punct(si + 2, b'(') || !scan.is_punct(si + 3, b')') {
        return None;
    }
    // Walk backwards over the `ident (. ident)*` receiver chain.
    let mut segments: Vec<String> = Vec::new();
    let mut j = si;
    while j >= 1 && scan.is_any_ident(j - 1) {
        segments.push(String::from_utf8_lossy(scan.text(j - 1)).into_owned());
        if j >= 2 && scan.is_punct(j - 2, b'.') {
            j -= 2;
        } else {
            break;
        }
    }
    if segments.is_empty() {
        return None;
    }
    segments.reverse();
    if segments.first().map(String::as_str) == Some("self") && segments.len() > 1 {
        segments.remove(0);
    }
    Some(segments.join("."))
}

/// Runs cycle detection over a merged edge set, reporting one
/// `lock-order` violation per distinct cycle (canonicalized by its
/// node set). An edge `u → v` closes a cycle iff `u` is reachable from
/// `v`; the graphs are tiny (a handful of locks), so a BFS per edge is
/// plenty.
pub fn cycle_violations(edges: &[LockEdge]) -> Vec<Violation> {
    // One representative edge per (held, acquired) pair.
    let mut rep: BTreeMap<(&str, &str), &LockEdge> = BTreeMap::new();
    for e in edges {
        rep.entry((e.held.as_str(), e.acquired.as_str()))
            .or_insert(e);
    }
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for &(u, v) in rep.keys() {
        adj.entry(u).or_default().push(v);
    }

    let mut seen_cycles: Vec<Vec<String>> = Vec::new();
    let mut out = Vec::new();
    for (&(u, v), &edge) in &rep {
        let Some(path) = find_path(v, u, &adj) else {
            continue;
        };
        // Cycle node set: u, v, and the v→…→u path (which ends at u).
        let mut nodes: Vec<String> = vec![u.to_owned(), v.to_owned()];
        nodes.extend(path.iter().map(|n| n.to_string()));
        nodes.sort();
        nodes.dedup();
        if seen_cycles.contains(&nodes) {
            continue;
        }
        seen_cycles.push(nodes);
        // Describe the full loop: u → v, then each hop along the path.
        let mut hops: Vec<(&str, &str)> = vec![(u, v)];
        let mut prev = v;
        for &next in &path {
            if next != prev {
                hops.push((prev, next));
                prev = next;
            }
        }
        let desc = hops
            .iter()
            .filter_map(|key| rep.get(key))
            .map(|e| {
                format!(
                    "{} -> {} (fn {} at {}:{})",
                    e.held, e.acquired, e.function, e.file, e.line
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push(Violation::new(
            &edge.file,
            edge.line,
            1,
            Rule::LockOrder,
            format!("lock-order cycle (potential deadlock): {desc}"),
        ));
    }
    out
}

/// BFS path from `from` to `to` (inclusive of both ends, excluding
/// `from` itself in the returned list); `None` if unreachable.
fn find_path<'g>(
    from: &'g str,
    to: &'g str,
    adj: &BTreeMap<&'g str, Vec<&'g str>>,
) -> Option<Vec<&'g str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            // Reconstruct from `to` back to `from`.
            let mut path = vec![to];
            let mut cur = to;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.pop(); // drop `from` itself
            path.reverse();
            return Some(path);
        }
        for &next in adj.get(n).map(Vec::as_slice).unwrap_or(&[]) {
            if next != from && !prev.contains_key(next) {
                prev.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locks_of(src: &str) -> FileLocks {
        let scan = FileScan::new(src.as_bytes());
        collect(&scan, "f.rs")
    }

    #[test]
    fn bare_lock_unwrap_is_poison() {
        let fl = locks_of("fn f(&self) { let g = self.state.lock().unwrap(); }");
        assert_eq!(fl.violations.len(), 1);
        assert_eq!(fl.violations[0].rule, Rule::LockPoison);
        assert!(fl.violations[0].message.contains("state"));
    }

    #[test]
    fn recovering_unwrap_or_else_is_clean() {
        let fl = locks_of(
            "fn f(&self) { let g = self.state.lock().unwrap_or_else(|e| e.into_inner()); }",
        );
        assert!(fl.violations.is_empty());
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        let fl = locks_of("fn f(s: &mut TcpStream) { s.read(&mut buf).unwrap_or(0); }");
        assert!(fl.violations.is_empty());
        assert!(fl.edges.is_empty());
    }

    #[test]
    fn nested_acquisitions_make_edges() {
        let fl = locks_of(
            "fn f(&self) { let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner()); \
             let b = self.beta.lock().unwrap_or_else(|e| e.into_inner()); }",
        );
        assert_eq!(fl.edges.len(), 1);
        assert_eq!(fl.edges[0].held, "alpha");
        assert_eq!(fl.edges[0].acquired, "beta");
    }

    #[test]
    fn statement_temporary_does_not_outlive_statement() {
        let fl = locks_of(
            "fn f(&self) { self.alpha.lock().unwrap_or_else(|e| e.into_inner()).push(1); \
             let b = self.beta.lock().unwrap_or_else(|e| e.into_inner()); }",
        );
        assert!(fl.edges.is_empty());
    }

    #[test]
    fn drop_releases_guard() {
        let fl = locks_of(
            "fn f(&self) { let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner()); drop(a); \
             let b = self.beta.lock().unwrap_or_else(|e| e.into_inner()); }",
        );
        assert!(fl.edges.is_empty());
    }

    #[test]
    fn block_scope_expires_guard() {
        let fl = locks_of(
            "fn f(&self) { { let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner()); } \
             let b = self.beta.lock().unwrap_or_else(|e| e.into_inner()); }",
        );
        assert!(fl.edges.is_empty());
    }

    #[test]
    fn cycle_is_detected_and_reported_once() {
        let edges = vec![
            LockEdge {
                held: "a".into(),
                acquired: "b".into(),
                function: "f".into(),
                file: "x.rs".into(),
                line: 3,
            },
            LockEdge {
                held: "b".into(),
                acquired: "a".into(),
                function: "g".into(),
                file: "x.rs".into(),
                line: 9,
            },
        ];
        let vs = cycle_violations(&edges);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, Rule::LockOrder);
        assert!(vs[0].message.contains("a -> b"));
        assert!(vs[0].message.contains("b -> a"));
    }

    #[test]
    fn acyclic_order_is_clean() {
        let edges = vec![LockEdge {
            held: "a".into(),
            acquired: "b".into(),
            function: "f".into(),
            file: "x.rs".into(),
            line: 3,
        }];
        assert!(cycle_violations(&edges).is_empty());
    }

    #[test]
    fn self_prefix_is_normalized() {
        let fl = locks_of(
            "fn f(&self, other: &S) { let a = self.shared.state.lock().unwrap_or_else(|e| e.into_inner()); \
             let b = other.shared.state.lock().unwrap_or_else(|e| e.into_inner()); }",
        );
        // Both normalize differently: `shared.state` vs `other.shared.state`.
        assert_eq!(fl.edges.len(), 1);
        assert_eq!(fl.edges[0].held, "shared.state");
    }
}
