//! Pass 3 — protocol exhaustiveness.
//!
//! The wire protocol's error surface is maintained by hand in four
//! places that nothing but convention keeps in sync:
//!
//! * `ServiceError` variants and their stable codes
//!   (`crates/podium-service/src/error.rs`, `fn code`);
//! * the protocol module docs, which enumerate the codes clients can
//!   receive (`crates/podium-service/src/protocol.rs`);
//! * the failure-cause classifier `bench-serve` aggregates by
//!   (`crates/podium-service/src/bench.rs`, `fn classify_error_code`);
//! * DESIGN.md, the operator-facing contract.
//!
//! Likewise `DataErrorKind` variants and their quarantine-report tags
//! (`crates/podium-data/src/load.rs`, `fn tag`). This pass parses the
//! enums and match arms out of the token streams and flags:
//!
//! * a variant with no explicit code/tag arm (`protocol-unmapped`);
//! * a code missing from the protocol.rs docs (`protocol-unmapped`);
//! * a code or tag not documented in DESIGN.md (`protocol-undocumented`);
//! * a classifier string that matches no known code (`protocol-stale`).

use std::path::Path;

use crate::scan::FileScan;
use crate::{Rule, Violation};

/// Relative paths of everything the pass reads.
const ERROR_RS: &str = "crates/podium-service/src/error.rs";
const PROTOCOL_RS: &str = "crates/podium-service/src/protocol.rs";
const BENCH_RS: &str = "crates/podium-service/src/bench.rs";
const LOAD_RS: &str = "crates/podium-data/src/load.rs";
const DESIGN_MD: &str = "DESIGN.md";

/// Runs the pass against the workspace at `root`.
pub fn run(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();

    let Some(error_src) = read(root, ERROR_RS, &mut out) else {
        return out;
    };
    let Some(protocol_src) = read(root, PROTOCOL_RS, &mut out) else {
        return out;
    };
    let Some(bench_src) = read(root, BENCH_RS, &mut out) else {
        return out;
    };
    let Some(load_src) = read(root, LOAD_RS, &mut out) else {
        return out;
    };
    let Some(design_src) = read(root, DESIGN_MD, &mut out) else {
        return out;
    };
    let protocol_text = String::from_utf8_lossy(&protocol_src).into_owned();
    let design_text = String::from_utf8_lossy(&design_src).into_owned();

    // ServiceError: variants ↔ code() arms ↔ protocol docs ↔ DESIGN.md.
    let error_scan = FileScan::new(&error_src);
    let variants = enum_variants(&error_scan, b"ServiceError");
    if variants.is_empty() {
        out.push(Violation::new(
            ERROR_RS,
            1,
            1,
            Rule::ProtocolUnmapped,
            "could not find `enum ServiceError` — protocol pass inputs moved?",
        ));
    }
    let arms = variant_string_arms(&error_scan, b"code", b"ServiceError");
    for (variant, line) in &variants {
        if !arms.iter().any(|(v, _, _)| v == variant) {
            out.push(Violation::new(
                ERROR_RS,
                *line,
                1,
                Rule::ProtocolUnmapped,
                format!("ServiceError::{variant} has no explicit wire code in `fn code` — the wire would drop it"),
            ));
        }
    }
    for (variant, code, line) in &arms {
        if !mentions(&protocol_text, code) {
            out.push(Violation::new(
                ERROR_RS,
                *line,
                1,
                Rule::ProtocolUnmapped,
                format!("wire code `{code}` (ServiceError::{variant}) is not named in {PROTOCOL_RS} — clients cannot discover it"),
            ));
        }
        if !mentions(&design_text, code) {
            out.push(Violation::new(
                ERROR_RS,
                *line,
                1,
                Rule::ProtocolUndocumented,
                format!(
                    "wire code `{code}` (ServiceError::{variant}) is not documented in {DESIGN_MD}"
                ),
            ));
        }
    }

    // bench-serve classifier strings must be real codes.
    let bench_scan = FileScan::new(&bench_src);
    for (code, line) in string_match_arms(&bench_scan, b"classify_error_code") {
        if !arms.iter().any(|(_, c, _)| *c == code) {
            out.push(Violation::new(
                BENCH_RS,
                line,
                1,
                Rule::ProtocolStale,
                format!(
                    "classify_error_code matches `{code}`, which is not a ServiceError wire code"
                ),
            ));
        }
    }

    // DataErrorKind: variants ↔ tag() arms ↔ DESIGN.md.
    let load_scan = FileScan::new(&load_src);
    let kinds = enum_variants(&load_scan, b"DataErrorKind");
    if kinds.is_empty() {
        out.push(Violation::new(
            LOAD_RS,
            1,
            1,
            Rule::ProtocolUnmapped,
            "could not find `enum DataErrorKind` — protocol pass inputs moved?",
        ));
    }
    let tags = variant_string_arms(&load_scan, b"tag", b"DataErrorKind");
    for (variant, line) in &kinds {
        if !tags.iter().any(|(v, _, _)| v == variant) {
            out.push(Violation::new(
                LOAD_RS,
                *line,
                1,
                Rule::ProtocolUnmapped,
                format!("DataErrorKind::{variant} has no stable tag in `fn tag` — quarantine reports would drop it"),
            ));
        }
    }
    for (variant, tag, line) in &tags {
        if !mentions(&design_text, tag) {
            out.push(Violation::new(
                LOAD_RS,
                *line,
                1,
                Rule::ProtocolUndocumented,
                format!("quarantine tag `{tag}` (DataErrorKind::{variant}) is not documented in {DESIGN_MD}"),
            ));
        }
    }

    out
}

/// Reads `rel` under `root`, recording a violation when it is missing
/// (a silent skip would disable the pass on a rename and mask drift).
fn read(root: &Path, rel: &str, out: &mut Vec<Violation>) -> Option<Vec<u8>> {
    match std::fs::read(root.join(rel)) {
        Ok(bytes) => Some(bytes),
        Err(_) => {
            out.push(Violation::new(
                rel,
                1,
                1,
                Rule::ProtocolUnmapped,
                format!(
                    "protocol pass input {rel} is missing — update passes/protocol.rs if it moved"
                ),
            ));
            None
        }
    }
}

/// `text` names `code` either backtick-quoted (docs) or string-quoted
/// (source).
fn mentions(text: &str, code: &str) -> bool {
    text.contains(&format!("`{code}`")) || text.contains(&format!("\"{code}\""))
}

/// The variants of `enum <name>`, with their lines.
pub fn enum_variants(scan: &FileScan<'_>, name: &[u8]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let Some(open) = (0..scan.sig.len()).find_map(|si| {
        if scan.is_ident(si, b"enum") && scan.is_ident(si + 1, name) && scan.is_punct(si + 2, b'{')
        {
            Some(si + 2)
        } else {
            None
        }
    }) else {
        return out;
    };
    let Some(close) = scan.match_delim(open) else {
        return out;
    };
    let mut depth = 0usize;
    let mut expect_variant = true;
    let mut si = open + 1;
    while si < close {
        // Attributes on variants are skipped wholesale.
        if depth == 0 {
            if let Some((_, attr_close, _)) = scan.attr_at(si) {
                si = attr_close + 1;
                continue;
            }
        }
        match scan.text(si) {
            b"{" | b"(" | b"[" => depth += 1,
            b"}" | b")" | b"]" => depth = depth.saturating_sub(1),
            b"," if depth == 0 => expect_variant = true,
            _ => {
                if depth == 0 && expect_variant && scan.is_any_ident(si) {
                    let (line, _) = scan.pos(si);
                    out.push((String::from_utf8_lossy(scan.text(si)).into_owned(), line));
                    expect_variant = false;
                }
            }
        }
        si += 1;
    }
    out
}

/// In `fn <fn_name>`, pairs `Enum::Variant … => "string"`: returns
/// `(variant, string, line)` triples. Or-patterns map every pending
/// variant to the arm's string.
pub fn variant_string_arms(
    scan: &FileScan<'_>,
    fn_name: &[u8],
    enum_name: &[u8],
) -> Vec<(String, String, u32)> {
    let mut out = Vec::new();
    let Some((open, close)) = scan.find_function(fn_name) else {
        return out;
    };
    let mut pending: Vec<String> = Vec::new();
    for si in open..=close {
        if scan.is_ident(si, enum_name)
            && scan.is_punct(si + 1, b':')
            && scan.is_punct(si + 2, b':')
            && scan.is_any_ident(si + 3)
        {
            pending.push(String::from_utf8_lossy(scan.text(si + 3)).into_owned());
        } else if let Some(code) = string_literal(scan, si) {
            let (line, _) = scan.pos(si);
            for v in pending.drain(..) {
                out.push((v, code.clone(), line));
            }
        }
    }
    out
}

/// In `fn <fn_name>`, string literals used as match patterns
/// (`"string" … =>`): returns `(string, line)` pairs. Heuristic: any
/// string literal that is *followed* by `=>` or `|` before another
/// string is a pattern; this matches the shape of the classifier fns.
pub fn string_match_arms(scan: &FileScan<'_>, fn_name: &[u8]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let Some((open, close)) = scan.find_function(fn_name) else {
        return out;
    };
    for si in open..=close {
        let Some(code) = string_literal(scan, si) else {
            continue;
        };
        // Pattern position: `=>` or `|` follows immediately.
        let is_pattern = (scan.is_punct(si + 1, b'=') && scan.is_punct(si + 2, b'>'))
            || scan.is_punct(si + 1, b'|');
        if is_pattern {
            let (line, _) = scan.pos(si);
            out.push((code, line));
        }
    }
    out
}

/// The unquoted contents of a plain string literal token at `si`.
fn string_literal(scan: &FileScan<'_>, si: usize) -> Option<String> {
    use crate::lexer::TokenKind;
    let tok = scan.tok(si)?;
    if tok.kind != TokenKind::Str {
        return None;
    }
    let text = String::from_utf8_lossy(scan.text(si)).into_owned();
    Some(
        text.trim_start_matches(['b', 'c'])
            .trim_matches('"')
            .to_owned(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_enum_variants_with_payloads_and_attrs() {
        let src = br#"
pub enum ServiceError {
    /// Doc.
    Overloaded,
    BadRequest(String),
    #[allow(dead_code)]
    SessionRetired { session: u64, pinned: u64 },
    Core(CoreError),
}
"#;
        let scan = FileScan::new(src);
        let names: Vec<String> = enum_variants(&scan, b"ServiceError")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(
            names,
            vec!["Overloaded", "BadRequest", "SessionRetired", "Core"]
        );
    }

    #[test]
    fn extracts_code_arms_including_or_patterns() {
        let src = br#"
impl ServiceError {
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Overloaded => "overloaded",
            ServiceError::BadRequest(_) | ServiceError::Core(_) => "client",
        }
    }
}
"#;
        let scan = FileScan::new(src);
        let arms = variant_string_arms(&scan, b"code", b"ServiceError");
        assert_eq!(
            arms.iter()
                .map(|(v, c, _)| (v.as_str(), c.as_str()))
                .collect::<Vec<_>>(),
            vec![
                ("Overloaded", "overloaded"),
                ("BadRequest", "client"),
                ("Core", "client")
            ]
        );
    }

    #[test]
    fn extracts_string_patterns_not_return_values() {
        let src = br#"
fn classify_error_code(code: &str) -> FailCause {
    match code {
        "deadline_exceeded" => FailCause::Deadline,
        "overloaded" | "shutting_down" => FailCause::Admission,
        _ => FailCause::Other,
    }
}
"#;
        let scan = FileScan::new(src);
        let arms: Vec<String> = string_match_arms(&scan, b"classify_error_code")
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        assert_eq!(
            arms,
            vec!["deadline_exceeded", "overloaded", "shutting_down"]
        );
    }
}
