//! The analysis passes. Each pass takes a [`crate::scan::FileScan`]
//! (or, for the cross-file protocol pass, the workspace root) and
//! returns raw [`crate::Violation`]s; suppression is applied afterwards
//! by [`crate::allow::apply_suppressions`].

pub mod casts;
pub mod cfg_features;
pub mod locks;
pub mod panic;
pub mod protocol;
