//! Pass 5 — numeric `as`-cast audit.
//!
//! Flags, in library code only (test regions are exempt), every `as`
//! cast whose target is a numeric primitive (`u8`…`u128`, `i8`…`i128`,
//! `usize`/`isize`, `f32`/`f64`). `as` is the one numeric conversion in
//! Rust that never fails and never complains: it truncates integers,
//! saturates floats, wraps signs, and rounds silently — which is exactly
//! why a serving system that mixes `u64` epoch counters, `u128`
//! durations, and `f64` scores wants every such site either rewritten
//! with `From`/`TryFrom` or carrying a written justification of the
//! range argument.
//!
//! The rule is advisory by default (like `index` and `expect`) and
//! promoted under `--deny-all`, the CI gate: hits must be burned down or
//! suppressed with a reason via an inline
//! `// podium-lint: allow(as-cast) — why` comment or an allowlist
//! entry.
//!
//! Detection is token-level: the keyword `as` followed by a numeric
//! primitive identifier. Pointer casts (`as *const T`), trait-object
//! casts, and `use … as name` renames all have non-primitive right-hand
//! sides and are skipped.

use crate::lexer::TokenKind;
use crate::scan::FileScan;
use crate::{Rule, Violation};

/// Cast targets the pass flags.
const NUMERIC_PRIMITIVES: &[&[u8]] = &[
    b"u8", b"u16", b"u32", b"u64", b"u128", b"usize", b"i8", b"i16", b"i32", b"i64", b"i128",
    b"isize", b"f32", b"f64",
];

/// Runs the pass over one file.
pub fn run(scan: &FileScan<'_>, file: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for si in 0..scan.sig.len() {
        if scan.in_test_region(si) {
            continue;
        }
        if !scan.is_ident(si, b"as") {
            continue;
        }
        let Some(next) = scan.tok(si + 1) else {
            continue;
        };
        if next.kind != TokenKind::Ident {
            continue;
        }
        let Some(target) = NUMERIC_PRIMITIVES.iter().find(|t| scan.is_ident(si + 1, t)) else {
            continue;
        };
        let (line, col) = scan.pos(si);
        out.push(Violation::new(
            file,
            line,
            col,
            Rule::AsCast,
            format!(
                "`as {}` numeric cast — truncates, wraps, or rounds silently; use From/TryFrom or justify the range",
                String::from_utf8_lossy(target)
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<Rule> {
        let scan = FileScan::new(src.as_bytes());
        run(&scan, "f.rs").into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_numeric_casts_of_every_width() {
        assert_eq!(rules_of("fn f(x: u64) { x as u32; }"), vec![Rule::AsCast]);
        assert_eq!(rules_of("fn f(x: f64) { x as f32; }"), vec![Rule::AsCast]);
        assert_eq!(rules_of("fn f(x: i8) { x as usize; }"), vec![Rule::AsCast]);
        assert_eq!(
            rules_of("fn f(d: std::time::Duration) { d.as_micros() as u64; }"),
            vec![Rule::AsCast]
        );
        assert_eq!(
            rules_of("fn f(n: usize) { n as f64 / 2.0; n as u128; }"),
            vec![Rule::AsCast, Rule::AsCast]
        );
    }

    #[test]
    fn non_numeric_as_is_not_flagged() {
        // Imports, pointer casts, and trait-object coercions.
        assert!(rules_of("use std::io::Result as IoResult;").is_empty());
        assert!(rules_of("fn f(p: &u8) { p as *const u8; }").is_empty());
        assert!(rules_of("fn f(e: E) { Box::new(e) as Box<dyn Error>; }").is_empty());
        // Identifiers merely *containing* `as`.
        assert!(rules_of("fn f() { let asu32 = 1; cast_u64(); }").is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn t(x: u64) { x as u32; }
}
"#;
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn strings_and_comments_never_flag() {
        let src = r#"fn f() { let s = "x as u64"; /* y as f64 */ }"#;
        assert!(rules_of(src).is_empty());
    }
}
