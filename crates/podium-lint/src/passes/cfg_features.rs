//! Pass 4 — cfg/feature hygiene.
//!
//! A `#[cfg(feature = "x")]` (or `cfg!(feature = "x")`,
//! `#[cfg_attr(feature = "x", …)]`) naming a feature the crate's
//! `Cargo.toml` does not declare silently evaluates false: the gated
//! code never compiles anywhere, and no compiler error says so. This
//! pass parses the `[features]` section of the owning crate's manifest
//! (plus implicit features from `optional = true` dependencies) and
//! flags every undeclared feature name used in source.

use crate::scan::FileScan;
use crate::{Rule, Violation};

/// Extracts declared feature names from `Cargo.toml` text: entries of
/// the `[features]` table and implicit features from optional
/// dependencies. This is a line-oriented parse, sufficient for the
/// hand-maintained manifests in this workspace (no inline tables
/// spanning `[features]`, no `dep:` renames).
pub fn declared_features(manifest: &str) -> Vec<String> {
    let mut features = Vec::new();
    let mut section = String::new();
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_owned();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"').to_owned();
        if key.is_empty() || key.starts_with('#') {
            continue;
        }
        let declares = section == "features"
            || (section.ends_with("dependencies")
                && value.contains("optional")
                && value.contains("true"));
        if declares {
            features.push(key);
        }
    }
    features
}

/// Runs the pass over one file given its crate's declared features.
pub fn run(
    scan: &FileScan<'_>,
    file: &str,
    declared: &[String],
    manifest_name: &str,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut si = 0usize;
    while si < scan.sig.len() {
        let is_cfg = scan.is_ident(si, b"cfg") || scan.is_ident(si, b"cfg_attr");
        if !is_cfg {
            si += 1;
            continue;
        }
        // `cfg(` in an attribute, or `cfg!(` as a macro.
        let open = if scan.is_punct(si + 1, b'(') {
            si + 1
        } else if scan.is_punct(si + 1, b'!') && scan.is_punct(si + 2, b'(') {
            si + 2
        } else {
            si += 1;
            continue;
        };
        let Some(close) = scan.match_delim(open) else {
            si += 1;
            continue;
        };
        for i in open + 1..close {
            if scan.is_ident(i, b"feature")
                && scan.is_punct(i + 1, b'=')
                && scan.tok(i + 2).is_some()
            {
                let raw = String::from_utf8_lossy(scan.text(i + 2)).into_owned();
                let name = raw.trim_matches('"');
                if !name.is_empty() && !declared.iter().any(|f| f == name) {
                    let (line, col) = scan.pos(i + 2);
                    out.push(Violation::new(
                        file,
                        line,
                        col,
                        Rule::CfgFeature,
                        format!(
                            "feature \"{name}\" is not declared in {manifest_name} (declared: {})",
                            if declared.is_empty() {
                                "none".to_owned()
                            } else {
                                declared.join(", ")
                            }
                        ),
                    ));
                }
            }
        }
        si = close + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_features_and_optional_deps() {
        let manifest = r#"
[package]
name = "x"

[features]
default = []
parallel = ["dep-a/parallel"]

[dependencies]
dep-a = { path = "../a", optional = true }
dep-b = { path = "../b" }
"#;
        let fs = declared_features(manifest);
        assert!(fs.contains(&"default".to_owned()));
        assert!(fs.contains(&"parallel".to_owned()));
        assert!(fs.contains(&"dep-a".to_owned()));
        assert!(!fs.contains(&"dep-b".to_owned()));
    }

    #[test]
    fn flags_undeclared_features_only() {
        let src = br#"
#[cfg(feature = "parallel")]
fn par() {}
#[cfg(all(unix, feature = "shiny"))]
fn shiny() {}
fn probe() { if cfg!(feature = "parallel") {} }
"#;
        let scan = FileScan::new(src);
        let declared = vec!["parallel".to_owned()];
        let vs = run(&scan, "f.rs", &declared, "Cargo.toml");
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("\"shiny\""));
        assert_eq!(vs[0].line, 4);
    }

    #[test]
    fn cfg_not_feature_forms_are_checked_too() {
        let src = b"#[cfg(not(feature = \"gone\"))]\nfn f() {}";
        let scan = FileScan::new(src);
        let vs = run(&scan, "f.rs", &[], "Cargo.toml");
        assert_eq!(vs.len(), 1);
    }
}
