//! Pass 1 — panic-freedom audit.
//!
//! Flags, in library code only (test regions are exempt):
//! `.unwrap()`, `.expect(…)`, `panic!`, `todo!`, `unimplemented!`,
//! `unreachable!`, and `expr[…]` index/slice expressions (which panic
//! on out-of-bounds or invalid ranges).
//!
//! Indexing detection is a token heuristic: a `[` whose preceding
//! significant token is an identifier (non-keyword), a closing `)`/`]`,
//! a `?`, or a string literal is an index expression; array literals,
//! attribute brackets, slice patterns, and types all start `[` after
//! other token shapes. Known false negative: indexing a `.await`
//! result. Known false positive: none observed in this workspace.

use crate::lexer::TokenKind;
use crate::scan::{is_keyword, FileScan};
use crate::{Rule, Violation};

/// The macro names flagged by this pass.
const PANIC_MACROS: &[(&[u8], Rule)] = &[
    (b"panic", Rule::Panic),
    (b"todo", Rule::Todo),
    (b"unimplemented", Rule::Unimplemented),
    (b"unreachable", Rule::Unreachable),
];

/// Runs the pass over one file.
pub fn run(scan: &FileScan<'_>, file: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for si in 0..scan.sig.len() {
        if scan.in_test_region(si) {
            continue;
        }
        let (line, col) = scan.pos(si);

        // .unwrap() — the `()` requirement keeps unwrap_or / unwrap_or_else
        // (distinct identifiers anyway) and user fns named unwrap with
        // arguments out.
        if scan.is_ident(si, b"unwrap")
            && si > 0
            && scan.is_punct(si - 1, b'.')
            && scan.is_punct(si + 1, b'(')
            && scan.is_punct(si + 2, b')')
        {
            out.push(Violation::new(
                file,
                line,
                col,
                Rule::Unwrap,
                "`.unwrap()` in library code — return an error, use expect with an invariant message, or justify",
            ));
            continue;
        }

        // .expect(…)
        if scan.is_ident(si, b"expect")
            && si > 0
            && scan.is_punct(si - 1, b'.')
            && scan.is_punct(si + 1, b'(')
        {
            out.push(Violation::new(
                file,
                line,
                col,
                Rule::Expect,
                "`.expect(…)` in library code — panics on failure; justify the invariant it documents",
            ));
            continue;
        }

        // panic-family macros.
        if scan.is_punct(si + 1, b'!') {
            if let Some(&(_, rule)) = PANIC_MACROS
                .iter()
                .find(|(name, _)| scan.is_ident(si, name))
            {
                out.push(Violation::new(
                    file,
                    line,
                    col,
                    rule,
                    format!(
                        "`{}!` in library code — unconditional panic path",
                        String::from_utf8_lossy(scan.text(si))
                    ),
                ));
                continue;
            }
        }

        // expr[…] indexing.
        if scan.is_punct(si, b'[') && si > 0 && is_index_receiver(scan, si - 1) {
            out.push(Violation::new(
                file,
                line,
                col,
                Rule::Index,
                "`[…]` index/slice expression — panics out of bounds; use get()/get_mut() or justify the bound",
            ));
        }
    }
    out
}

/// Whether the token at `si` can be the receiver of an index expression.
fn is_index_receiver(scan: &FileScan<'_>, si: usize) -> bool {
    let Some(tok) = scan.tok(si) else {
        return false;
    };
    match tok.kind {
        TokenKind::Ident => !is_keyword(scan.text(si)),
        TokenKind::Str | TokenKind::RawStr => true,
        TokenKind::Punct => matches!(scan.text(si), b")" | b"]" | b"?"),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<Rule> {
        let scan = FileScan::new(src.as_bytes());
        run(&scan, "f.rs").into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_the_panic_family() {
        let src = r#"
fn f() {
    x.unwrap();
    y.expect("msg");
    panic!("boom");
    todo!();
    unimplemented!();
    unreachable!();
}
"#;
        assert_eq!(
            rules_of(src),
            vec![
                Rule::Unwrap,
                Rule::Expect,
                Rule::Panic,
                Rule::Todo,
                Rule::Unimplemented,
                Rule::Unreachable
            ]
        );
    }

    #[test]
    fn indexing_heuristics() {
        // Flagged: ident[, )[, ][, ?[ receivers.
        assert_eq!(rules_of("fn f() { a[i]; }"), vec![Rule::Index]);
        assert_eq!(rules_of("fn f() { g()[0]; }"), vec![Rule::Index]);
        assert_eq!(
            rules_of("fn f() { a[0][1]; }"),
            vec![Rule::Index, Rule::Index]
        );
        // Not flagged: array literals, types, attributes, slice patterns,
        // macro brackets.
        assert!(rules_of("fn f() { let a = [1, 2]; }").is_empty());
        assert!(rules_of("fn f(x: [u8; 4]) -> &[u8] { x }").is_empty());
        assert!(rules_of("#[derive(Debug)] struct S;").is_empty());
        assert!(rules_of("fn f() { let [a, b] = pair; }").is_empty());
        assert!(rules_of("fn f() { vec![1, 2]; }").is_empty());
        assert!(rules_of("fn f() { return [1, 2]; }").is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        assert!(rules_of("fn f() { m.lock().unwrap_or_else(|e| e.into_inner()); }").is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); a[0]; panic!("fine in tests"); }
}
"#;
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn strings_and_comments_never_flag() {
        let src = r#"fn f() { let s = "a.unwrap() b[0]"; /* c.unwrap() */ }"#;
        assert!(rules_of(src).is_empty());
    }
}
