//! `podium-lint` CLI.
//!
//! ```text
//! podium-lint --workspace --deny-all            # CI gate
//! podium-lint crates/podium-core/src            # audit a subtree
//! podium-lint --workspace --jsonl lint.jsonl    # machine-readable output
//! ```
//!
//! Exit codes: 0 clean, 1 violations, 2 usage/environment error.

use std::path::PathBuf;
use std::process::ExitCode;

use podium_lint::{report, runner};

const USAGE: &str = "\
podium-lint — workspace-native static analysis for Podium

USAGE:
    podium-lint [--workspace] [PATHS…] [OPTIONS]

OPTIONS:
    --workspace         lint every workspace crate's src/ (+ protocol pass)
    --deny-all          deny advisory rules (index, expect) too — the CI gate
    --jsonl <PATH>      also write one JSON object per finding to PATH
    --allowlist <PATH>  allowlist file (default: <root>/podium-lint.allow)
    --show-allowed      print suppressed findings with their justifications
    --help              this text

Passes: panic-freedom, lock discipline, protocol exhaustiveness
(workspace mode only), cfg/feature hygiene. See DESIGN.md 'Static
analysis' for rules and the allow-comment grammar.
";

fn main() -> ExitCode {
    let mut opts = runner::Options::default();
    let mut jsonl: Option<PathBuf> = None;
    let mut show_allowed = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--deny-all" => opts.deny_all = true,
            "--show-allowed" => show_allowed = true,
            "--jsonl" => match args.next() {
                Some(p) => jsonl = Some(PathBuf::from(p)),
                None => return usage_error("--jsonl needs a path"),
            },
            "--allowlist" => match args.next() {
                Some(p) => opts.allowlist = Some(PathBuf::from(p)),
                None => return usage_error("--allowlist needs a path"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown flag {other}"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if !opts.workspace && opts.paths.is_empty() {
        return usage_error("pass --workspace or explicit paths");
    }

    let outcome = match runner::run(&opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("podium-lint: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report::to_text(&outcome.violations, show_allowed));
    if let Some(path) = jsonl {
        if let Err(e) = std::fs::write(&path, report::to_jsonl(&outcome.violations)) {
            eprintln!("podium-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if outcome.denied(opts.deny_all) > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("podium-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
