//! `podium-lint` — workspace-native static analysis for the Podium
//! serving system.
//!
//! Five passes run over every workspace crate's library source:
//!
//! 1. **panic-freedom** ([`passes::panic`]): `.unwrap()`, `.expect(…)`,
//!    `panic!`, `todo!`, `unimplemented!`, `unreachable!`, and `[expr]`
//!    indexing are violations in library code unless carried by an
//!    inline allow comment or a checked-in allowlist entry with a
//!    reason (grammar in [`allow`]).
//! 2. **lock-discipline** ([`passes::locks`]): collects
//!    `.lock()`/`.read()`/`.write()` acquisition sites per function,
//!    infers the lock nesting-order graph per crate, flags cycles
//!    (potential deadlock) and bare `.lock().unwrap()`
//!    poison-propagation.
//! 3. **protocol exhaustiveness** ([`passes::protocol`]): cross-checks
//!    `ServiceError` / `DataErrorKind` variants against their wire
//!    codes, the failure-cause classification in `bench-serve`, the
//!    protocol module docs, and DESIGN.md.
//! 4. **cfg/feature hygiene** ([`passes::cfg_features`]): every
//!    `#[cfg(feature = "…")]` / `cfg!(feature = "…")` must name a
//!    feature declared in the owning crate's `Cargo.toml`.
//! 5. **numeric `as`-cast audit** ([`passes::casts`]): every `as` cast
//!    to a numeric primitive is flagged (advisory by default, denied in
//!    CI) — it truncates, wraps, or rounds silently, so each site must
//!    be rewritten with `From`/`TryFrom` or carry a justified
//!    suppression.
//!
//! The implementation is deliberately `syn`-free: a hand-written lexer
//! ([`lexer`]) plus token-pattern matching. That keeps the crate at
//! zero dependencies (it gates CI and must not share failure modes
//! with the code it checks) at the cost of being a heuristic, not a
//! semantic analysis — see DESIGN.md "Static analysis" for the known
//! limitations.

pub mod allow;
pub mod lexer;
pub mod passes;
pub mod report;
pub mod runner;
pub mod scan;

/// Every rule a pass can flag. Rule names are stable: they appear in
/// allow comments, allowlist entries, JSONL output, and CI logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// `.unwrap()` in library code.
    Unwrap,
    /// `.expect(…)` in library code.
    Expect,
    /// `panic!(…)`.
    Panic,
    /// `todo!(…)`.
    Todo,
    /// `unimplemented!(…)`.
    Unimplemented,
    /// `unreachable!(…)`.
    Unreachable,
    /// `expr[index]` indexing or slicing (can panic on out-of-bounds).
    Index,
    /// Bare `.lock().unwrap()` / `.read().unwrap()` / `.write().unwrap()`
    /// — propagates poison instead of applying an explicit policy.
    LockPoison,
    /// A cycle in the inferred lock nesting-order graph.
    LockOrder,
    /// An error variant with no wire mapping, or a wire code absent from
    /// the protocol surface.
    ProtocolUnmapped,
    /// A wire code or quarantine tag not documented in DESIGN.md.
    ProtocolUndocumented,
    /// A string in a wire-code classifier that matches no known code.
    ProtocolStale,
    /// `feature = "…"` naming a feature the crate does not declare.
    CfgFeature,
    /// A malformed allow comment (unknown rule or missing
    /// justification).
    BadAllow,
    /// A numeric `as` cast (`expr as u32`, `expr as f64`, …) — converts
    /// silently, truncating, wrapping, or rounding out of range.
    AsCast,
}

impl Rule {
    /// The stable name used in allow comments, the allowlist, and output.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::Expect => "expect",
            Rule::Panic => "panic",
            Rule::Todo => "todo",
            Rule::Unimplemented => "unimplemented",
            Rule::Unreachable => "unreachable",
            Rule::Index => "index",
            Rule::LockPoison => "lock-poison",
            Rule::LockOrder => "lock-order",
            Rule::ProtocolUnmapped => "protocol-unmapped",
            Rule::ProtocolUndocumented => "protocol-undocumented",
            Rule::ProtocolStale => "protocol-stale",
            Rule::CfgFeature => "cfg-feature",
            Rule::BadAllow => "bad-allow",
            Rule::AsCast => "as-cast",
        }
    }

    /// Parses a rule name (as written in allow comments / the allowlist).
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// All rules, for `--help` and allow-comment validation.
pub const ALL_RULES: [Rule; 15] = [
    Rule::Unwrap,
    Rule::Expect,
    Rule::Panic,
    Rule::Todo,
    Rule::Unimplemented,
    Rule::Unreachable,
    Rule::Index,
    Rule::LockPoison,
    Rule::LockOrder,
    Rule::ProtocolUnmapped,
    Rule::ProtocolUndocumented,
    Rule::ProtocolStale,
    Rule::CfgFeature,
    Rule::BadAllow,
    Rule::AsCast,
];

/// One finding. `allowed` carries the justification when an inline
/// allow comment or allowlist entry suppressed it; suppressed findings
/// still appear in JSONL output (flagged) so dashboards can track the
/// suppression debt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// The rule violated.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
    /// `Some(justification)` when suppressed.
    pub allowed: Option<String>,
}

impl Violation {
    /// Builds an unsuppressed violation.
    pub fn new(file: &str, line: u32, col: u32, rule: Rule, message: impl Into<String>) -> Self {
        Self {
            file: file.to_owned(),
            line,
            col,
            rule,
            message: message.into(),
            allowed: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for r in ALL_RULES {
            assert_eq!(Rule::from_name(r.name()), Some(r), "{}", r.name());
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }
}
