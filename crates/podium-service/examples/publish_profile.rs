//! One-off phase breakdown of the publish path (not checked into CI).
//! Run: cargo run --release -p podium-service --example publish_profile

use std::time::Instant;

use podium_core::bucket::BucketingConfig;
use podium_core::incremental::IncrementalGroups;
use podium_core::weights::WeightScheme;
use podium_service::bench::synthetic_repository;
use podium_service::snapshot::{ProfileUpdate, PublishMode, RepositoryWriter};

fn main() {
    let n = 10_000;
    let repo = synthetic_repository(n, 32, 6, 0x5EED_0001);
    let buckets = BucketingConfig::paper_default().bucketize(&repo);

    // Component timings.
    let inc = IncrementalGroups::build(&repo, &buckets);
    let mut groups = inc.snapshot();
    let mut csr = inc.snapshot_csr();
    let mut repo2 = repo.clone();
    let rounds = 200u32;
    let t = Instant::now();
    for _ in 0..rounds {
        inc.snapshot_into(&mut groups);
    }
    println!(
        "snapshot_into(groups): {:.1} us",
        t.elapsed().as_secs_f64() * 1e6 / f64::from(rounds)
    );
    let t = Instant::now();
    for _ in 0..rounds {
        inc.snapshot_csr_into(&mut csr);
    }
    println!(
        "snapshot_csr_into:     {:.1} us",
        t.elapsed().as_secs_f64() * 1e6 / f64::from(rounds)
    );
    let t = Instant::now();
    for _ in 0..rounds {
        repo.clone_into_repo(&mut repo2);
    }
    println!(
        "clone_into_repo:       {:.1} us",
        t.elapsed().as_secs_f64() * 1e6 / f64::from(rounds)
    );
    let t = Instant::now();
    let mut sink = 0.0f64;
    for _ in 0..rounds {
        sink += WeightScheme::LinearBySize
            .weights(&groups)
            .iter()
            .sum::<f64>();
    }
    println!(
        "lbs weights:           {:.1} us (sink {sink:.0})",
        t.elapsed().as_secs_f64() * 1e6 / f64::from(rounds)
    );
    let t = Instant::now();
    let mut clones = Vec::new();
    for _ in 0..rounds {
        clones.push(repo.clone());
        if clones.len() > 2 {
            clones.remove(0);
        }
    }
    println!(
        "repo.clone():          {:.1} us",
        t.elapsed().as_secs_f64() * 1e6 / f64::from(rounds)
    );

    for mode in [PublishMode::FullRebuild, PublishMode::Incremental] {
        let (store, mut writer) = RepositoryWriter::with_mode(repo.clone(), &buckets, mode);
        // Warm up recycle pool.
        for i in 0..4 {
            writer
                .apply(&ProfileUpdate {
                    user: format!("user-{}", i * 7 + 1),
                    property: "topic-3".to_owned(),
                    score: Some(0.41),
                })
                .unwrap();
            writer.publish();
        }
        let rounds = 200;
        let started = Instant::now();
        for i in 0..rounds {
            writer
                .apply(&ProfileUpdate {
                    user: format!("user-{}", (i * 131) % n),
                    property: format!("topic-{}", i % 32),
                    score: Some(f64::from(u32::try_from(i % 100).unwrap()) / 100.0),
                })
                .unwrap();
            writer.publish();
        }
        let total = started.elapsed();
        let snap = store.load();
        let b = snap.build_stats();
        println!(
            "{mode:?}: {:.1} us/publish (wall), last build: patch {} us, rebuild {} us, publish {} us, patched {}",
            total.as_secs_f64() * 1e6 / f64::from(u32::try_from(rounds).unwrap()),
            b.csr_patch_micros,
            b.full_rebuild_micros,
            b.publish_micros,
            b.patched
        );
    }
}
