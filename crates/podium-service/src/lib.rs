//! The Podium serving layer: long-lived, concurrent selection serving over
//! a live user repository.
//!
//! The paper positions Podium as a system that "applies to a given user
//! repository as-is and may be easily executed multiple times, e.g., to
//! incorporate data updates" (§9), with grouping computed offline and
//! selection queries arriving online (§7). This crate turns the batch
//! library into that online system:
//!
//! * [`snapshot`] — epoch-numbered, immutable [`snapshot::Snapshot`]s
//!   bundling the repository, its group set, and a prebuilt CSR graph,
//!   published via atomic `Arc` swap by a single
//!   [`snapshot::RepositoryWriter`] that applies profile updates through
//!   [`podium_core::incremental::IncrementalGroups`];
//! * [`executor`] — a fixed worker pool draining a bounded request queue
//!   with reject-on-full admission control and per-request deadlines
//!   checked between greedy rounds;
//! * [`session`] — the paper's §6 customization loop: a session pins a
//!   snapshot epoch and accumulates `G+`/`G-`/`Gd`/`Gd?` feedback across
//!   refinement requests without re-ingesting;
//! * [`protocol`] + [`server`] + [`tcp`] — a line-delimited JSON
//!   request/response protocol (`select`, `explain`, `refine`,
//!   `update-profile`, `stats`, plus session management) served over
//!   stdin/stdout, a Unix domain socket, or TCP (with connection limits,
//!   idle timeouts, and graceful drain) using only `std`;
//! * [`client`] — a resilient TCP client with reconnection, jittered
//!   exponential backoff, per-request deadlines, and a half-open circuit
//!   breaker;
//! * [`chaos`] — a deterministic in-process chaos proxy injecting write
//!   splits, mid-frame disconnects, stalls, and refusals from a seeded
//!   splitmix64 stream, for transport-resilience tests;
//! * [`wal`] + [`recovery`] — the durability subsystem: a checksummed,
//!   length-prefixed write-ahead log with a configurable fsync policy,
//!   atomic checkpoint files, and a startup recovery path that loads the
//!   newest valid checkpoint, replays the WAL suffix through the ordinary
//!   publish path, and quarantines torn tails instead of panicking;
//! * [`bench`] — a closed-loop load generator reporting sustained
//!   throughput and latency percentiles while a background writer streams
//!   profile updates, in-process or over TCP.
//!
//! The crate is embeddable: [`service::PodiumService`] is an ordinary
//! `Send + Sync` value; the binary front-end lives in the workspace's
//! `podium-cli`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod chaos;
pub mod client;
pub mod error;
pub mod executor;
pub mod poison;
pub mod protocol;
pub mod recovery;
pub mod server;
pub mod service;
pub mod session;
pub mod snapshot;
pub mod tcp;
pub mod wal;

pub use chaos::{ChaosClock, ChaosConfig, ChaosProxy};
pub use client::{BreakerState, ClientConfig, ClientError, ClientHealth, PodiumClient};
pub use error::ServiceError;
pub use recovery::{DurabilityOptions, RecoveryReport};
pub use service::{PeerHealth, PodiumService, ServiceConfig};
pub use snapshot::{ProfileUpdate, RepositoryWriter, Snapshot, SnapshotStore};
pub use tcp::{TcpServer, TcpServerConfig};
pub use wal::FsyncPolicy;
