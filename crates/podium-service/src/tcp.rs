//! TCP transport: the same line-delimited JSON protocol as
//! [`crate::server`], served over `std::net::TcpListener`.
//!
//! Design points beyond the Unix-socket path:
//!
//! * **Connection limit** — accepts beyond [`TcpServerConfig::max_connections`]
//!   receive one `{"ok":false,"error":"overloaded",...}` line and are
//!   closed, so a client can tell "server full" from "server down".
//! * **Idle timeout** — a connection that sends no complete request for
//!   [`TcpServerConfig::idle_timeout`] is closed, bounding the damage a
//!   stalled or half-open peer (or a chaos proxy stalling mid-frame) can
//!   do to the thread budget.
//! * **Graceful shutdown** — [`TcpServer::shutdown`] stops the accept
//!   loop, lets every in-flight request finish and flush its response,
//!   then joins all connection threads. No response that was being
//!   computed is dropped.
//!
//! Frames are read with an explicit byte buffer rather than
//! `BufRead::read_line` so that a read timeout mid-frame loses nothing:
//! partial bytes stay in the buffer and the next read continues the same
//! frame. That is exactly the situation the chaos proxy's byte-level
//! write splits create.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::poison;
use crate::service::PodiumService;

/// Sizing and timing knobs of the TCP transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpServerConfig {
    /// Maximum concurrently served connections; excess accepts are turned
    /// away with an `overloaded` response line.
    pub max_connections: usize,
    /// Close a connection after this long without a complete request.
    pub idle_timeout: Duration,
}

impl Default for TcpServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 256,
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// Monotonic transport counters, readable without locking.
#[derive(Debug, Default)]
pub struct TcpServerStats {
    /// Connections accepted and served.
    pub accepted: AtomicU64,
    /// Connections turned away by the connection limit.
    pub refused: AtomicU64,
    /// Connections closed by the idle timeout.
    pub idle_closed: AtomicU64,
    /// Requests served across all connections.
    pub requests: AtomicU64,
}

struct TcpShared {
    service: Arc<PodiumService>,
    config: TcpServerConfig,
    shutdown: AtomicBool,
    stats: TcpServerStats,
    /// Live connection count; the condvar signals it reaching zero so
    /// shutdown can drain.
    active: Mutex<usize>,
    drained: Condvar,
}

/// A running TCP protocol server. Dropping it without calling
/// [`TcpServer::shutdown`] performs the same graceful drain.
pub struct TcpServer {
    local_addr: SocketAddr,
    shared: Arc<TcpShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("local_addr", &self.local_addr)
            .field("config", &self.shared.config)
            .finish()
    }
}

/// Granularity at which connection threads re-check the shutdown flag,
/// the idle clock, and new bytes. Small enough that shutdown and idle
/// enforcement are prompt; large enough to stay off the profile.
const READ_TICK: Duration = Duration::from_millis(50);

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections, each served on its own thread
    /// against the shared `service`.
    pub fn bind<A: ToSocketAddrs>(
        service: Arc<PodiumService>,
        addr: A,
        config: TcpServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(TcpShared {
            service,
            config,
            shutdown: AtomicBool::new(false),
            stats: TcpServerStats::default(),
            active: Mutex::new(0),
            drained: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("podium-tcp-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Self {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (the ephemeral port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Transport counters.
    pub fn stats(&self) -> &TcpServerStats {
        &self.shared.stats
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        *poison::recover(self.shared.active.lock())
    }

    /// Stops accepting, drains in-flight requests (each connection
    /// finishes the request it is processing and flushes the response),
    /// and joins every serving thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop is blocked in `accept()`; a throwaway local
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Connection threads notice the flag within one read tick once
        // their in-flight request (if any) completes.
        let mut active = poison::recover(self.shared.active.lock());
        while *active > 0 {
            let (guard, _timeout) = poison::recover(
                self.shared
                    .drained
                    .wait_timeout(active, Duration::from_millis(100)),
            );
            active = guard;
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<TcpShared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            // Transient accept errors (EMFILE, aborted handshake) must
            // not kill the listener.
            Err(_) => continue,
        };
        let admitted = {
            let mut active = poison::recover(shared.active.lock());
            if *active >= shared.config.max_connections {
                false
            } else {
                *active += 1;
                true
            }
        };
        if !admitted {
            shared.stats.refused.fetch_add(1, Ordering::Relaxed);
            refuse(stream);
            continue;
        }
        shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("podium-tcp-conn".to_owned())
            .spawn(move || {
                serve_connection(&conn_shared, stream);
                let mut active = poison::recover(conn_shared.active.lock());
                *active -= 1;
                conn_shared.drained.notify_all();
            });
        if spawned.is_err() {
            // Thread spawn failed: undo the admission.
            let mut active = poison::recover(shared.active.lock());
            *active -= 1;
            shared.drained.notify_all();
        }
    }
}

/// Tells an over-limit client why it is being dropped. Best-effort: the
/// peer may already be gone.
fn refuse(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.write_all(
        b"{\"ok\":false,\"error\":\"overloaded\",\"message\":\"connection limit reached\"}\n",
    );
    let _ = stream.shutdown(Shutdown::Both);
}

/// Serves one connection: frames requests out of a byte buffer, answers
/// each through the shared service, enforces the idle timeout, and exits
/// on EOF, I/O error, idle expiry, or server shutdown.
fn serve_connection(shared: &TcpShared, mut stream: TcpStream) {
    // NODELAY: responses are single small lines; waiting for Nagle
    // coalescing only adds tail latency.
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "tcp-unknown".to_owned());
    let mut pending: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let mut last_request = Instant::now();
    loop {
        // Drain every complete frame already buffered before reading more.
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let frame: Vec<u8> = pending.drain(..=pos).collect();
            // podium-lint: allow(index) — drain(..=pos) always includes the newline, so the frame is non-empty
            let line = String::from_utf8_lossy(&frame[..frame.len() - 1]);
            let line = line.trim();
            last_request = Instant::now();
            if line.is_empty() {
                continue;
            }
            shared.stats.requests.fetch_add(1, Ordering::Relaxed);
            let response = shared.service.handle_line_from(&peer, line);
            if write_response(&mut stream, &response).is_err() {
                return;
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            // podium-lint: allow(index) — read never returns more than the buffer length
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if last_request.elapsed() >= shared.config.idle_timeout {
                    shared.stats.idle_closed.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn write_response(stream: &mut TcpStream, response: &str) -> io::Result<()> {
    // One write_all per line: the response is assembled in memory, so
    // there is no partial-frame window on our side even under `write`
    // short-counts (write_all loops).
    let mut framed = Vec::with_capacity(response.len() + 1);
    framed.extend_from_slice(response.as_bytes());
    framed.push(b'\n');
    stream.write_all(&framed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use podium_core::bucket::BucketingConfig;
    use podium_core::profile::UserRepository;
    use serde_json::Value;
    use std::io::{BufRead, BufReader};

    fn service() -> Arc<PodiumService> {
        let mut repo = UserRepository::new();
        let p = repo.intern_property("topic");
        for i in 0..10 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, p, (i as f64) / 10.0).unwrap();
        }
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        Arc::new(PodiumService::new(
            repo,
            &buckets,
            ServiceConfig {
                workers: 2,
                queue_capacity: 16,
                default_deadline_ms: 2000,
                ..ServiceConfig::default()
            },
        ))
    }

    fn round_trip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Value {
        writeln!(stream, "{line}").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        serde_json::from_str(response.trim()).unwrap()
    }

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn tcp_round_trip_and_concurrent_clients() {
        let server = TcpServer::bind(service(), "127.0.0.1:0", TcpServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let clients: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(move || {
                    let (mut stream, mut reader) = connect(addr);
                    for _ in 0..5 {
                        let v =
                            round_trip(&mut stream, &mut reader, r#"{"op":"select","budget":2}"#);
                        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
                        assert_eq!(v.get("users").and_then(Value::as_array).unwrap().len(), 2);
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        assert!(server.stats().accepted.load(Ordering::Relaxed) >= 3);
        assert_eq!(server.stats().requests.load(Ordering::Relaxed), 15);
        server.shutdown();
    }

    #[test]
    fn split_writes_are_reassembled_into_one_frame() {
        let server = TcpServer::bind(service(), "127.0.0.1:0", TcpServerConfig::default()).unwrap();
        let (mut stream, mut reader) = connect(server.local_addr());
        stream.set_nodelay(true).unwrap();
        // One request dripped one byte at a time across many packets.
        for b in br#"{"op":"select","budget":2}"#.iter() {
            stream.write_all(&[*b]).unwrap();
            stream.flush().unwrap();
        }
        std::thread::sleep(Duration::from_millis(120)); // let ticks pass mid-frame
        stream.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let v: Value = serde_json::from_str(response.trim()).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v:?}");
        server.shutdown();
    }

    #[test]
    fn connection_limit_refuses_with_a_typed_line() {
        let config = TcpServerConfig {
            max_connections: 1,
            ..TcpServerConfig::default()
        };
        let server = TcpServer::bind(service(), "127.0.0.1:0", config).unwrap();
        let (mut first, mut first_reader) = connect(server.local_addr());
        // Prove the first connection is established and served.
        let v = round_trip(&mut first, &mut first_reader, r#"{"op":"stats"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        // The second connection is told it is over the limit, then closed.
        let (second, mut second_reader) = connect(server.local_addr());
        let mut line = String::new();
        second_reader.read_line(&mut line).unwrap();
        let v: Value = serde_json::from_str(line.trim()).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("error").and_then(Value::as_str),
            Some("overloaded"),
            "{v:?}"
        );
        assert_eq!(server.stats().refused.load(Ordering::Relaxed), 1);
        drop(second);
        drop(first);
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_closed() {
        let config = TcpServerConfig {
            idle_timeout: Duration::from_millis(150),
            ..TcpServerConfig::default()
        };
        let server = TcpServer::bind(service(), "127.0.0.1:0", config).unwrap();
        let (_stream, mut reader) = connect(server.local_addr());
        // Say nothing; the server must hang up.
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap();
        assert_eq!(n, 0, "idle connection saw EOF, got: {line}");
        assert_eq!(server.stats().idle_closed.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_drains_the_in_flight_request() {
        let server = TcpServer::bind(service(), "127.0.0.1:0", TcpServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let (mut stream, mut reader) = connect(addr);
        // Issue the request and wait until the server has picked it up —
        // the shutdown must race the *handling*, not TCP delivery (a
        // frame still in the kernel buffer at shutdown is not in-flight).
        writeln!(stream, r#"{{"op":"select","budget":3}}"#).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().requests.load(Ordering::Relaxed) == 0 {
            assert!(
                Instant::now() < deadline,
                "request never reached the server"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let shutdown = std::thread::spawn(move || server.shutdown());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let v: Value = serde_json::from_str(response.trim()).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v:?}");
        shutdown.join().unwrap();
        // After shutdown the port no longer accepts.
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err(),
            "listener still accepting after shutdown"
        );
    }
}
