//! A resilient TCP client for the line-JSON protocol.
//!
//! [`PodiumClient`] owns one connection at a time and layers three
//! recovery mechanisms on top of it:
//!
//! * **Reconnection with backoff** — transport failures (connect refusal,
//!   broken pipe, EOF mid-response) discard the connection and retry after
//!   an exponentially growing, jittered delay, up to
//!   [`ClientConfig::max_attempts`] attempts per request.
//! * **Per-request deadlines** — every call carries an absolute deadline
//!   ([`ClientConfig::request_timeout`] from the start of the call); the
//!   retry loop, the connect, and each socket read are all bounded by it.
//!   A timed-out connection is discarded even if it later answers,
//!   because the stale response would desynchronise the framing.
//! * **A circuit breaker** — after [`ClientConfig::breaker_threshold`]
//!   consecutive transport failures the breaker *opens* and calls fail
//!   fast with [`ClientError::BreakerOpen`] (no socket work at all).
//!   After [`ClientConfig::breaker_cooldown`] it becomes *half-open*: the
//!   next call is a single probe with no retries — success closes the
//!   breaker, failure re-opens it and restarts the cooldown.
//!
//! Responses with `"ok":false` are *successes* for the breaker: the
//! server is alive and answering, the request was simply rejected. They
//! are returned to the caller without retry — retrying a `bad_request`
//! can never help, and retrying `overloaded` is the caller's policy
//! decision, not the transport's.
//!
//! Jitter is deterministic: it is drawn from a splitmix64 stream seeded
//! by [`ClientConfig::seed`], so two clients configured with the same
//! seed back off identically — which the chaos harness relies on.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use serde_json::Value;

use crate::protocol::{self, Request};

/// Timing, retry, and breaker knobs for [`PodiumClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Bound on each TCP connect attempt.
    pub connect_timeout: Duration,
    /// Per-call budget covering all attempts, backoff included.
    pub request_timeout: Duration,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Cap on the (pre-jitter) retry delay.
    pub backoff_max: Duration,
    /// Attempts per call (1 = no retries).
    pub max_attempts: u32,
    /// Consecutive transport failures that open the breaker.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before allowing a half-open probe.
    pub breaker_cooldown: Duration,
    /// Seed for the jitter stream; same seed ⇒ same backoff schedule.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(2),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            max_attempts: 4,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(250),
            seed: 0x51_C1_E5,
        }
    }
}

/// Why a call failed. `Server` is not here on purpose: an `"ok":false`
/// response is returned as a normal [`Value`], not an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The breaker is open; the call failed fast without touching the
    /// socket.
    BreakerOpen,
    /// The per-request deadline expired (possibly across several
    /// attempts).
    Timeout,
    /// Connect/read/write failed and retries were exhausted.
    Transport(String),
    /// The server answered with a line that is not a JSON object.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BreakerOpen => write!(f, "circuit breaker open"),
            ClientError::Timeout => write!(f, "request deadline exceeded"),
            ClientError::Transport(m) => write!(f, "transport error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A point-in-time view of the client's breaker/health state, as
/// surfaced in bench-serve's JSONL `peers` array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientHealth {
    /// The breaker's current state.
    pub state: BreakerState,
    /// Consecutive transport failures since the last response.
    pub consecutive_failures: u32,
    /// The client's epoch view at the most recent breaker transition
    /// (close→open or back); `0` when no transition has happened.
    pub last_transition_epoch: u64,
    /// Highest `epoch` field seen in any response (`0` before the first).
    pub last_seen_epoch: u64,
}

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow normally.
    Closed,
    /// Failing fast; no socket work until the cooldown elapses.
    Open,
    /// Cooldown elapsed; the next call is a single probe.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case name (`closed` / `open` / `half_open`).
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Counters describing everything the client has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Calls issued (including fast failures).
    pub requests: u64,
    /// Calls that returned a response line (ok or not).
    pub successes: u64,
    /// Extra attempts beyond the first, across all calls.
    pub retries: u64,
    /// Fresh TCP connections established.
    pub reconnects: u64,
    /// Calls that failed with [`ClientError::Timeout`].
    pub timeouts: u64,
    /// Transport-level attempt failures (one per failed attempt).
    pub transport_errors: u64,
    /// Closed→Open transitions.
    pub breaker_opens: u64,
    /// Calls rejected instantly by an open breaker.
    pub fast_failures: u64,
}

struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    threshold: u32,
    cooldown: Duration,
}

impl Breaker {
    fn new(threshold: u32, cooldown: Duration) -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            threshold: threshold.max(1),
            cooldown,
        }
    }

    /// Called at the top of each request; promotes Open→HalfOpen once the
    /// cooldown has elapsed and says whether the call may proceed.
    fn admit(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let expired = self
                    .opened_at
                    .is_some_and(|t| now.duration_since(t) >= self.cooldown);
                if expired {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A response line arrived (server alive). Closes from any state.
    fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.opened_at = None;
    }

    /// A transport-level failure. Returns true when this transition
    /// opened the breaker.
    fn record_failure(&mut self, now: Instant) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let should_open =
            self.state == BreakerState::HalfOpen || self.consecutive_failures >= self.threshold;
        if should_open && self.state != BreakerState::Open {
            self.state = BreakerState::Open;
            self.opened_at = Some(now);
            return true;
        }
        if should_open {
            // Already open: refresh the cooldown.
            self.opened_at = Some(now);
        }
        false
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A single-connection resilient client. Not `Sync`; give each thread its
/// own client (they can share an address and a seed base).
pub struct PodiumClient {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    breaker: Breaker,
    rng: u64,
    stats: ClientStats,
    read_buffer: Vec<u8>,
    last_seen_epoch: u64,
    last_transition_epoch: u64,
}

impl std::fmt::Debug for PodiumClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PodiumClient")
            .field("addr", &self.addr)
            .field("connected", &self.stream.is_some())
            .field("breaker", &self.breaker.state)
            .finish()
    }
}

/// Read-timeout tick while waiting for a response; each expiry re-checks
/// the request deadline.
const READ_TICK: Duration = Duration::from_millis(50);

impl PodiumClient {
    /// Creates a client for `addr`. No connection is made until the first
    /// call (lazy connect keeps construction infallible).
    pub fn new(addr: SocketAddr, config: ClientConfig) -> Self {
        Self {
            addr,
            breaker: Breaker::new(config.breaker_threshold, config.breaker_cooldown),
            rng: config.seed,
            config,
            stream: None,
            stats: ClientStats::default(),
            read_buffer: Vec::with_capacity(1024),
            last_seen_epoch: 0,
            last_transition_epoch: 0,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The client's breaker/health view, for health reporting.
    pub fn health(&self) -> ClientHealth {
        ClientHealth {
            state: self.breaker.state,
            consecutive_failures: self.breaker.consecutive_failures,
            last_transition_epoch: self.last_transition_epoch,
            last_seen_epoch: self.last_seen_epoch,
        }
    }

    /// The breaker's current state (Open is reported as such even if the
    /// cooldown has elapsed; promotion to HalfOpen happens on the next
    /// call).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state
    }

    /// Encodes `request` and performs a [`PodiumClient::call`].
    pub fn call_request(&mut self, request: &Request) -> Result<Value, ClientError> {
        let line = protocol::encode_request(request);
        self.call(&line)
    }

    /// Sends one request line and returns the parsed response object,
    /// retrying through transport failures per the configured policy.
    pub fn call(&mut self, line: &str) -> Result<Value, ClientError> {
        self.stats.requests += 1;
        let now = Instant::now();
        if !self.breaker.admit(now) {
            self.stats.fast_failures += 1;
            return Err(ClientError::BreakerOpen);
        }
        let deadline = now + self.config.request_timeout;
        // A half-open breaker allows exactly one probe attempt.
        let max_attempts = if self.breaker.state == BreakerState::HalfOpen {
            1
        } else {
            self.config.max_attempts.max(1)
        };
        let mut last_transport = String::from("no attempt made");
        for attempt in 0..max_attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                if !self.sleep_backoff(attempt, deadline) {
                    self.stats.timeouts += 1;
                    return Err(ClientError::Timeout);
                }
            }
            match self.attempt(line, deadline) {
                Ok(value) => {
                    if self.breaker.state != BreakerState::Closed {
                        // Recovery transition: stamp the epoch view.
                        self.last_transition_epoch = self.last_seen_epoch;
                    }
                    self.breaker.record_success();
                    self.stats.successes += 1;
                    if let Some(epoch) = value.get("epoch").and_then(Value::as_u64) {
                        self.last_seen_epoch = self.last_seen_epoch.max(epoch);
                    }
                    return Ok(value);
                }
                Err(AttemptError::Timeout) => {
                    // A timeout is not a breaker failure: the server may
                    // simply be slower than our deadline. But the stream
                    // is now desynchronised, so drop it.
                    self.disconnect();
                    self.stats.timeouts += 1;
                    return Err(ClientError::Timeout);
                }
                Err(AttemptError::Protocol(m)) => {
                    // The server spoke, but not JSON: framing is gone.
                    self.disconnect();
                    self.breaker.record_success();
                    return Err(ClientError::Protocol(m));
                }
                Err(AttemptError::Transport(m)) => {
                    self.disconnect();
                    self.stats.transport_errors += 1;
                    if self.breaker.record_failure(Instant::now()) {
                        self.stats.breaker_opens += 1;
                        self.last_transition_epoch = self.last_seen_epoch;
                    }
                    if self.breaker.state == BreakerState::Open {
                        // Opened (or re-opened from half-open) mid-call:
                        // stop retrying immediately.
                        return Err(ClientError::Transport(m));
                    }
                    last_transport = m;
                }
            }
        }
        Err(ClientError::Transport(last_transport))
    }

    /// Sleeps the jittered exponential delay for `attempt` (1-based for
    /// retries), or returns false if it would cross the deadline.
    fn sleep_backoff(&mut self, attempt: u32, deadline: Instant) -> bool {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = exp.min(self.config.backoff_max);
        // Jitter uniformly in [0.5, 1.0] × capped.
        let unit = (splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64;
        let delay = capped.mul_f64(0.5 + 0.5 * unit);
        let now = Instant::now();
        if now + delay >= deadline {
            return false;
        }
        std::thread::sleep(delay);
        true
    }

    fn disconnect(&mut self) {
        if let Some(stream) = self.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        self.read_buffer.clear();
    }

    fn ensure_connected(&mut self, deadline: Instant) -> Result<(), AttemptError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(AttemptError::Timeout);
        }
        let budget = self.config.connect_timeout.min(deadline - now);
        let stream = TcpStream::connect_timeout(&self.addr, budget)
            .map_err(|e| connect_error(e, budget, deadline))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(READ_TICK))
            .map_err(|e| AttemptError::Transport(format!("set_read_timeout: {e}")))?;
        let _ = stream.set_write_timeout(Some(self.config.connect_timeout));
        self.stream = Some(stream);
        self.read_buffer.clear();
        self.stats.reconnects += 1;
        Ok(())
    }

    /// One attempt: connect if needed, write the line, read one response
    /// line, parse it.
    fn attempt(&mut self, line: &str, deadline: Instant) -> Result<Value, AttemptError> {
        self.ensure_connected(deadline)?;
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        {
            // podium-lint: allow(expect) — attempt() establishes the connection before send_request runs
            let stream = self.stream.as_mut().expect("connected above");
            stream
                .write_all(&framed)
                .map_err(|e| AttemptError::Transport(format!("write: {e}")))?;
        }
        let raw = self.read_frame(deadline)?;
        let text = String::from_utf8_lossy(&raw);
        let value: Value = serde_json::from_str(text.trim())
            .map_err(|e| AttemptError::Protocol(format!("unparseable response: {e}")))?;
        if !matches!(value, Value::Object(_)) {
            return Err(AttemptError::Protocol(format!(
                "response is not an object: {}",
                text.trim()
            )));
        }
        Ok(value)
    }

    /// Reads up to the next `\n`, honouring the deadline via read-timeout
    /// ticks. Leftover bytes past the newline stay buffered for the next
    /// call (the server never pipelines unsolicited lines, but a chaos
    /// proxy can merge chunk boundaries arbitrarily).
    fn read_frame(&mut self, deadline: Instant) -> Result<Vec<u8>, AttemptError> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.read_buffer.iter().position(|&b| b == b'\n') {
                let frame: Vec<u8> = self.read_buffer.drain(..=pos).collect();
                // podium-lint: allow(index) — drain(..=pos) always includes the newline, so the frame is non-empty
                return Ok(frame[..frame.len() - 1].to_vec());
            }
            if Instant::now() >= deadline {
                return Err(AttemptError::Timeout);
            }
            // podium-lint: allow(expect) — attempt() establishes the connection before read_frame runs
            let stream = self.stream.as_mut().expect("connected in attempt");
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(AttemptError::Transport(
                        "connection closed mid-response".to_owned(),
                    ))
                }
                // podium-lint: allow(index) — read never returns more than the buffer length
                Ok(n) => self.read_buffer.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(AttemptError::Transport(format!("read: {e}"))),
            }
        }
    }
}

enum AttemptError {
    Timeout,
    Transport(String),
    Protocol(String),
}

fn connect_error(e: io::Error, budget: Duration, deadline: Instant) -> AttemptError {
    // connect_timeout reports its own expiry as TimedOut; only treat it
    // as a request timeout when the overall deadline is actually spent,
    // otherwise it is a transport failure worth retrying.
    if e.kind() == io::ErrorKind::TimedOut && Instant::now() + Duration::from_millis(1) >= deadline
    {
        return AttemptError::Timeout;
    }
    AttemptError::Transport(format!("connect (budget {budget:?}): {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{PodiumService, ServiceConfig};
    use crate::tcp::{TcpServer, TcpServerConfig};
    use podium_core::bucket::BucketingConfig;
    use podium_core::profile::UserRepository;
    use std::sync::Arc;

    fn service() -> Arc<PodiumService> {
        let mut repo = UserRepository::new();
        let p = repo.intern_property("topic");
        for i in 0..10 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, p, (i as f64) / 10.0).unwrap();
        }
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        Arc::new(PodiumService::new(
            repo,
            &buckets,
            ServiceConfig {
                workers: 2,
                queue_capacity: 16,
                default_deadline_ms: 2000,
                ..ServiceConfig::default()
            },
        ))
    }

    fn quick_config() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(250),
            request_timeout: Duration::from_millis(500),
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(10),
            max_attempts: 3,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(100),
            seed: 7,
        }
    }

    #[test]
    fn call_round_trips_and_counts() {
        let server = TcpServer::bind(service(), "127.0.0.1:0", TcpServerConfig::default()).unwrap();
        let mut client = PodiumClient::new(server.local_addr(), quick_config());
        let v = client.call(r#"{"op":"select","budget":2}"#).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let v = client.call(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let s = client.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.successes, 2);
        assert_eq!(s.reconnects, 1, "second call reused the connection");
        assert_eq!(client.breaker_state(), BreakerState::Closed);
        server.shutdown();
    }

    #[test]
    fn server_side_errors_do_not_trip_the_breaker() {
        let server = TcpServer::bind(service(), "127.0.0.1:0", TcpServerConfig::default()).unwrap();
        let mut client = PodiumClient::new(server.local_addr(), quick_config());
        for _ in 0..10 {
            let v = client.call(r#"{"op":"select","budget":0}"#).unwrap();
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        }
        assert_eq!(client.breaker_state(), BreakerState::Closed);
        assert_eq!(client.stats().successes, 10);
        assert_eq!(client.stats().retries, 0, "server errors are not retried");
        server.shutdown();
    }

    #[test]
    fn breaker_opens_against_a_dead_address_then_recovers() {
        // Reserve a port, then drop the listener so connects are refused.
        let dead_addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let config = quick_config();
        let mut client = PodiumClient::new(dead_addr, config);
        // Drive enough failures to open the breaker (threshold 3 counts
        // individual attempts, so one call with 3 attempts suffices).
        let err = client.call(r#"{"op":"stats"}"#).unwrap_err();
        assert!(matches!(err, ClientError::Transport(_)), "{err:?}");
        assert_eq!(client.breaker_state(), BreakerState::Open);
        assert_eq!(client.stats().breaker_opens, 1);
        let health = client.health();
        assert_eq!(health.state, BreakerState::Open);
        assert!(health.consecutive_failures >= 3, "{health:?}");
        // While open (cooldown not elapsed) calls fail fast.
        let err = client.call(r#"{"op":"stats"}"#).unwrap_err();
        assert_eq!(err, ClientError::BreakerOpen);
        assert_eq!(client.stats().fast_failures, 1);
        // After the cooldown, a live server lets the half-open probe
        // close the breaker.
        std::thread::sleep(config.breaker_cooldown + Duration::from_millis(20));
        let server = TcpServer::bind(service(), dead_addr, TcpServerConfig::default()).unwrap();
        let v = client.call(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(client.breaker_state(), BreakerState::Closed);
        server.shutdown();
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let dead_addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let config = quick_config();
        let mut client = PodiumClient::new(dead_addr, config);
        let _ = client.call(r#"{"op":"stats"}"#);
        assert_eq!(client.breaker_state(), BreakerState::Open);
        std::thread::sleep(config.breaker_cooldown + Duration::from_millis(20));
        // Server still down: the single half-open probe fails and the
        // breaker re-opens without further retries.
        let retries_before = client.stats().retries;
        let err = client.call(r#"{"op":"stats"}"#).unwrap_err();
        assert!(matches!(err, ClientError::Transport(_)), "{err:?}");
        assert_eq!(client.breaker_state(), BreakerState::Open);
        assert_eq!(
            client.stats().retries,
            retries_before,
            "half-open probe must not retry"
        );
    }

    #[test]
    fn deadline_bounds_a_stalled_server() {
        // A listener that accepts but never responds.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let mut held = Vec::new();
            // Keep sockets open until the test ends.
            listener.set_nonblocking(true).unwrap();
            let start = Instant::now();
            while start.elapsed() < Duration::from_secs(3) {
                if let Ok((s, _)) = listener.accept() {
                    held.push(s);
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        let mut client = PodiumClient::new(addr, quick_config());
        let start = Instant::now();
        let err = client.call(r#"{"op":"stats"}"#).unwrap_err();
        assert_eq!(err, ClientError::Timeout);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "timeout took {:?}",
            start.elapsed()
        );
        assert_eq!(client.stats().timeouts, 1);
        // A timeout is not a breaker failure.
        assert_eq!(client.breaker_state(), BreakerState::Closed);
        hold.join().unwrap();
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..100 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
        let mut c = 43u64;
        assert_ne!(splitmix64(&mut a), splitmix64(&mut c));
    }

    #[test]
    fn call_request_encodes_and_round_trips() {
        let server = TcpServer::bind(service(), "127.0.0.1:0", TcpServerConfig::default()).unwrap();
        let mut client = PodiumClient::new(server.local_addr(), quick_config());
        let request = Request::Stats;
        let v = client.call_request(&request).unwrap();
        assert!(v.get("epoch").is_some(), "{v:?}");
        server.shutdown();
    }
}
