//! The concurrent query executor: a fixed worker pool draining a bounded
//! request queue.
//!
//! Admission control is reject-on-full: [`QueryExecutor::submit`] returns
//! [`ServiceError::Overloaded`] instead of queuing unboundedly, so a
//! saturated service sheds load at the front door with an O(1) check.
//! Each worker captures the *current* snapshot at dequeue time and runs
//! the whole request against it — a concurrently published epoch never
//! shifts data under a running selection, and the response reports which
//! epoch it saw.
//!
//! Deadlines are absolute [`Instant`]s fixed at submission, so time spent
//! waiting in the queue counts against the budget; the selection loop
//! polls the deadline between greedy rounds (see
//! [`podium_core::engine::lazy_select_deadline`]).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::error::ServiceError;
use crate::poison;
use crate::snapshot::{SelectOutcome, SelectParams, Snapshot, SnapshotStore};

/// Sizing and timing knobs of the executor.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Maximum queued (not yet running) requests before admission control
    /// rejects.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2),
            queue_capacity: 256,
            default_deadline: Duration::from_secs(5),
        }
    }
}

/// A queued unit of work: runs against the snapshot captured at dequeue.
type Job = Box<dyn FnOnce(Arc<Snapshot>) + Send + 'static>;

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    available: Condvar,
}

/// Monotonic serving counters, readable without locking.
#[derive(Debug, Default)]
pub struct ExecutorStats {
    /// Requests accepted into the queue.
    pub submitted: AtomicU64,
    /// Requests rejected by admission control.
    pub rejected: AtomicU64,
    /// Requests whose job ran to completion (successfully or not).
    pub completed: AtomicU64,
}

/// The worker pool. Dropping it drains and joins the workers.
pub struct QueryExecutor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    config: ExecutorConfig,
    stats: Arc<ExecutorStats>,
}

impl std::fmt::Debug for QueryExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryExecutor")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.config.queue_capacity)
            .finish()
    }
}

impl QueryExecutor {
    /// Spawns the worker pool against `store`.
    pub fn new(store: Arc<SnapshotStore>, config: ExecutorConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState::default()),
            available: Condvar::new(),
        });
        let stats = Arc::new(ExecutorStats::default());
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let store = Arc::clone(&store);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || worker_loop(&shared, &store, &stats))
            })
            .collect();
        Self {
            shared,
            workers,
            config,
            stats,
        }
    }

    /// The executor's configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Serving counters.
    pub fn stats(&self) -> &ExecutorStats {
        &self.stats
    }

    /// Requests currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        poison::recover(self.shared.state.lock()).jobs.len()
    }

    /// Enqueues `job`, rejecting with [`ServiceError::Overloaded`] when the
    /// queue is at capacity and with [`ServiceError::ShuttingDown`] after
    /// shutdown began.
    pub fn submit(
        &self,
        job: impl FnOnce(Arc<Snapshot>) + Send + 'static,
    ) -> Result<(), ServiceError> {
        {
            let mut state = poison::recover(self.shared.state.lock());
            if state.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
            if state.jobs.len() >= self.config.queue_capacity {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::Overloaded);
            }
            state.jobs.push_back(Box::new(job));
        }
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Runs a `select` through the pool, blocking the calling thread until
    /// the response arrives. `deadline` defaults to
    /// [`ExecutorConfig::default_deadline`] from *now*; queue wait counts
    /// against it. `stale_ok` opts into the bounded-staleness read mode
    /// (see [`Snapshot::select_with`]); pass `false` for the default
    /// always-fresh behavior.
    pub fn run_select(
        &self,
        params: SelectParams,
        deadline: Option<Duration>,
        stale_ok: bool,
    ) -> Result<SelectOutcome, ServiceError> {
        let absolute = Instant::now() + deadline.unwrap_or(self.config.default_deadline);
        let (tx, rx) = mpsc::channel();
        self.submit(move |snapshot| {
            let _ = tx.send(snapshot.select_with(&params, Some(absolute), stale_ok));
        })?;
        rx.recv()
            .map_err(|_| ServiceError::BadRequest("worker dropped the response channel".into()))?
    }

    /// Runs an arbitrary closure against the snapshot captured at dequeue,
    /// blocking until it returns. This is the generic path for `explain`
    /// and other snapshot-bound reads.
    pub fn run<T: Send + 'static>(
        &self,
        f: impl FnOnce(Arc<Snapshot>) -> T + Send + 'static,
    ) -> Result<T, ServiceError> {
        let (tx, rx) = mpsc::channel();
        self.submit(move |snapshot| {
            let _ = tx.send(f(snapshot));
        })?;
        rx.recv()
            .map_err(|_| ServiceError::BadRequest("worker dropped the response channel".into()))
    }
}

impl Drop for QueryExecutor {
    fn drop(&mut self) {
        {
            let mut state = poison::recover(self.shared.state.lock());
            state.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, store: &SnapshotStore, stats: &ExecutorStats) {
    loop {
        let job = {
            let mut state = poison::recover(shared.state.lock());
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = poison::recover(shared.available.wait(state));
            }
        };
        // Capture the snapshot *after* dequeue: the request runs against
        // the newest published epoch, and only that epoch.
        let snapshot = store.load();
        job(snapshot);
        stats.completed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{ProfileUpdate, RepositoryWriter};
    use podium_core::bucket::BucketingConfig;
    use podium_core::profile::UserRepository;
    use podium_core::weights::{CovScheme, WeightScheme};

    fn service_parts() -> (Arc<SnapshotStore>, RepositoryWriter) {
        let mut repo = UserRepository::new();
        let p = repo.intern_property("topic");
        for i in 0..20 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, p, (i as f64) / 20.0).unwrap();
        }
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        RepositoryWriter::new(repo, &buckets)
    }

    fn params() -> SelectParams {
        SelectParams {
            budget: 4,
            weight: WeightScheme::LinearBySize,
            cov: CovScheme::Single,
        }
    }

    #[test]
    fn select_round_trips_through_the_pool() {
        let (store, _w) = service_parts();
        let exec = QueryExecutor::new(
            store,
            ExecutorConfig {
                workers: 2,
                queue_capacity: 8,
                default_deadline: Duration::from_secs(2),
            },
        );
        let outcome = exec.run_select(params(), None, false).unwrap();
        assert_eq!(outcome.selection.users.len(), 4);
        assert_eq!(outcome.epoch, 0);
        // The worker bumps `completed` after delivering the response, so
        // give it a beat.
        let deadline = Instant::now() + Duration::from_secs(2);
        while exec.stats().completed.load(Ordering::Relaxed) == 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(exec.stats().completed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn admission_control_rejects_when_full() {
        let (store, _w) = service_parts();
        let exec = QueryExecutor::new(
            store,
            ExecutorConfig {
                workers: 1,
                queue_capacity: 1,
                default_deadline: Duration::from_secs(2),
            },
        );
        // Park the single worker on a slow job, fill the queue, then
        // overflow it.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g2 = Arc::clone(&gate);
        exec.submit(move |_snap| {
            let (lock, cv) = &*g2;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        // Give the worker a moment to pick up the parked job.
        std::thread::sleep(Duration::from_millis(50));
        exec.submit(|_snap| {}).unwrap();
        let err = exec.submit(|_snap| {}).unwrap_err();
        assert_eq!(err, ServiceError::Overloaded);
        assert_eq!(exec.stats().rejected.load(Ordering::Relaxed), 1);
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    #[test]
    fn snapshot_captured_at_dequeue_sees_latest_epoch() {
        let (store, mut w) = service_parts();
        w.apply(&ProfileUpdate {
            user: "u0".into(),
            property: "topic".into(),
            score: Some(0.99),
        })
        .unwrap();
        w.publish();
        let exec = QueryExecutor::new(Arc::clone(&store), ExecutorConfig::default());
        let outcome = exec.run_select(params(), None, false).unwrap();
        assert_eq!(outcome.epoch, 1, "request sees the published epoch");
    }

    #[test]
    fn expired_deadline_is_reported() {
        let (store, _w) = service_parts();
        let exec = QueryExecutor::new(store, ExecutorConfig::default());
        let err = exec
            .run_select(params(), Some(Duration::from_nanos(0)), false)
            .unwrap_err();
        assert_eq!(err, ServiceError::DeadlineExceeded);
    }

    #[test]
    fn shutdown_rejects_new_work_and_joins() {
        let (store, _w) = service_parts();
        let exec = QueryExecutor::new(store, ExecutorConfig::default());
        exec.run_select(params(), None, false).unwrap();
        drop(exec); // must not hang
    }
}
