//! Closed-loop serving benchmark: measures sustained `select` throughput
//! and latency percentiles while a background writer publishes profile
//! updates at a fixed rate.
//!
//! The benchmark is fully in-process (clients call
//! [`PodiumService::handle_line`] directly), so it measures the serving
//! subsystem — snapshot capture, queueing, selection — without socket
//! noise. Every response is checked for consistency: it must be `ok`,
//! return exactly `budget` users, and report an epoch no older than the
//! last one that client observed (epochs are monotone per client).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use podium_core::bucket::BucketingConfig;
use podium_core::profile::UserRepository;
use serde_json::Value;

use crate::service::{PodiumService, ServiceConfig};

/// Load-generator knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Synthetic repository size (number of users).
    pub users: usize,
    /// Number of distinct properties in the synthetic repository.
    pub properties: usize,
    /// Scores per user (properties each user has an opinion on).
    pub scores_per_user: usize,
    /// Selection budget `b` per request.
    pub budget: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Executor worker threads.
    pub workers: usize,
    /// Executor queue capacity.
    pub queue_capacity: usize,
    /// Measurement window.
    pub duration: Duration,
    /// Background profile-update rate (updates per second); 0 disables
    /// the writer.
    pub update_hz: u64,
    /// Per-request deadline in milliseconds.
    pub deadline_ms: u64,
    /// Seed of the synthetic repository and the update stream.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            users: 10_000,
            properties: 32,
            scores_per_user: 6,
            budget: 64,
            clients: 4,
            workers: 4,
            queue_capacity: 512,
            duration: Duration::from_secs(5),
            update_hz: 10,
            deadline_ms: 2_000,
            seed: 0x5EED_0001,
        }
    }
}

/// Benchmark outcome, one JSONL row via [`BenchReport::to_json`].
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Synthetic repository size.
    pub users: usize,
    /// Selection budget per request.
    pub budget: usize,
    /// Client threads.
    pub clients: usize,
    /// Executor workers.
    pub workers: usize,
    /// Configured background update rate (Hz).
    pub update_hz: u64,
    /// Wall-clock the measurement actually took.
    pub duration_s: f64,
    /// Successful, consistent select responses.
    pub served: u64,
    /// `ok:false` responses other than `overloaded`.
    pub failed: u64,
    /// Admission-control rejections observed by clients.
    pub overloaded: u64,
    /// `ok:true` responses violating a consistency check (wrong user
    /// count or non-monotone epoch).
    pub inconsistent: u64,
    /// Profile updates the background writer applied.
    pub updates_applied: u64,
    /// Final published epoch.
    pub final_epoch: u64,
    /// Served requests per second.
    pub throughput_rps: f64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 90th percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

impl BenchReport {
    /// Serializes the report as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        use crate::protocol::{num_f64, num_u64};
        let pairs = vec![
            ("bench".to_owned(), Value::String("serve".to_owned())),
            ("users".to_owned(), num_u64(self.users as u64)),
            ("budget".to_owned(), num_u64(self.budget as u64)),
            ("clients".to_owned(), num_u64(self.clients as u64)),
            ("workers".to_owned(), num_u64(self.workers as u64)),
            ("update_hz".to_owned(), num_u64(self.update_hz)),
            ("duration_s".to_owned(), num_f64(self.duration_s)),
            ("served".to_owned(), num_u64(self.served)),
            ("failed".to_owned(), num_u64(self.failed)),
            ("overloaded".to_owned(), num_u64(self.overloaded)),
            ("inconsistent".to_owned(), num_u64(self.inconsistent)),
            ("updates_applied".to_owned(), num_u64(self.updates_applied)),
            ("final_epoch".to_owned(), num_u64(self.final_epoch)),
            ("throughput_rps".to_owned(), num_f64(self.throughput_rps)),
            ("p50_us".to_owned(), num_u64(self.p50_us)),
            ("p90_us".to_owned(), num_u64(self.p90_us)),
            ("p99_us".to_owned(), num_u64(self.p99_us)),
            ("max_us".to_owned(), num_u64(self.max_us)),
        ];
        serde_json::to_string(&Value::Object(pairs)).expect("report serialization is infallible")
    }
}

/// splitmix64: deterministic, dependency-free stream for synthetic data.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_float(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Builds the synthetic benchmark repository: `users` users, each with
/// `scores_per_user` scores over `properties` properties, uniform in
/// `[0, 1)`.
pub fn synthetic_repository(
    users: usize,
    properties: usize,
    scores_per_user: usize,
    seed: u64,
) -> UserRepository {
    let mut repo = UserRepository::new();
    let props: Vec<_> = (0..properties)
        .map(|p| repo.intern_property(format!("topic-{p}")))
        .collect();
    let mut rng = seed;
    for i in 0..users {
        let u = repo.add_user(format!("user-{i}"));
        for s in 0..scores_per_user.min(properties) {
            // Rotate the property window per user so every property ends
            // up populated.
            let p = props[(i + s * (properties / scores_per_user.max(1)).max(1)) % properties];
            repo.set_score(u, p, unit_float(&mut rng))
                .expect("synthetic scores are in range");
        }
    }
    repo
}

struct ClientTally {
    served: u64,
    failed: u64,
    overloaded: u64,
    inconsistent: u64,
    latencies_us: Vec<u64>,
}

fn client_loop(
    service: &PodiumService,
    budget: usize,
    deadline_ms: u64,
    stop: &AtomicBool,
) -> ClientTally {
    let request = format!(r#"{{"op":"select","budget":{budget},"deadline_ms":{deadline_ms}}}"#);
    let mut tally = ClientTally {
        served: 0,
        failed: 0,
        overloaded: 0,
        inconsistent: 0,
        latencies_us: Vec::new(),
    };
    let mut last_epoch = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let started = Instant::now();
        let response = service.handle_line(&request);
        let latency = started.elapsed().as_micros() as u64;
        let value: Value = match serde_json::from_str(&response) {
            Ok(v) => v,
            Err(_) => {
                tally.inconsistent += 1;
                continue;
            }
        };
        match value.get("ok").and_then(Value::as_bool) {
            Some(true) => {
                let epoch = value.get("epoch").and_then(Value::as_u64).unwrap_or(0);
                let n_users = value
                    .get("users")
                    .and_then(Value::as_array)
                    .map(Vec::len)
                    .unwrap_or(0);
                if n_users != budget || epoch < last_epoch {
                    tally.inconsistent += 1;
                } else {
                    last_epoch = epoch;
                    tally.served += 1;
                    tally.latencies_us.push(latency);
                }
            }
            _ => {
                if value.get("error").and_then(Value::as_str) == Some("overloaded") {
                    tally.overloaded += 1;
                } else {
                    tally.failed += 1;
                }
            }
        }
    }
    tally
}

fn updater_loop(
    service: &PodiumService,
    config: &BenchConfig,
    stop: &AtomicBool,
    applied: &AtomicU64,
) {
    if config.update_hz == 0 {
        return;
    }
    let tick = Duration::from_nanos(1_000_000_000 / config.update_hz);
    let mut rng = config.seed ^ 0xDEAD_BEEF;
    while !stop.load(Ordering::Relaxed) {
        let user = (splitmix64(&mut rng) as usize) % config.users;
        let prop = (splitmix64(&mut rng) as usize) % config.properties;
        let score = unit_float(&mut rng);
        let line = format!(
            r#"{{"op":"update-profile","user":"user-{user}","property":"topic-{prop}","score":{score}}}"#
        );
        let response = service.handle_line(&line);
        if response.contains("\"ok\":true") {
            applied.fetch_add(1, Ordering::Relaxed);
        }
        std::thread::sleep(tick);
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Runs the closed-loop benchmark and returns the merged report.
pub fn run_bench(config: &BenchConfig) -> BenchReport {
    let repo = synthetic_repository(
        config.users,
        config.properties,
        config.scores_per_user,
        config.seed,
    );
    let buckets = BucketingConfig::paper_default().bucketize(&repo);
    let service = Arc::new(PodiumService::new(
        repo,
        &buckets,
        ServiceConfig {
            workers: config.workers,
            queue_capacity: config.queue_capacity,
            default_deadline_ms: config.deadline_ms,
        },
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let applied = Arc::new(AtomicU64::new(0));

    let updater = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let applied = Arc::clone(&applied);
        let config = *config;
        std::thread::spawn(move || updater_loop(&service, &config, &stop, &applied))
    };

    let started = Instant::now();
    let clients: Vec<_> = (0..config.clients.max(1))
        .map(|_| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let budget = config.budget;
            let deadline_ms = config.deadline_ms;
            std::thread::spawn(move || client_loop(&service, budget, deadline_ms, &stop))
        })
        .collect();

    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);

    let mut served = 0;
    let mut failed = 0;
    let mut overloaded = 0;
    let mut inconsistent = 0;
    let mut latencies = Vec::new();
    for client in clients {
        let tally = client.join().expect("client thread panicked");
        served += tally.served;
        failed += tally.failed;
        overloaded += tally.overloaded;
        inconsistent += tally.inconsistent;
        latencies.extend(tally.latencies_us);
    }
    let elapsed = started.elapsed();
    updater.join().expect("updater thread panicked");
    latencies.sort_unstable();

    BenchReport {
        users: config.users,
        budget: config.budget,
        clients: config.clients,
        workers: config.workers,
        update_hz: config.update_hz,
        duration_s: elapsed.as_secs_f64(),
        served,
        failed,
        overloaded,
        inconsistent,
        updates_applied: applied.load(Ordering::Relaxed),
        final_epoch: service.store().epoch(),
        throughput_rps: served as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(&latencies, 0.50),
        p90_us: percentile(&latencies, 0.90),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_repository_is_deterministic() {
        let a = synthetic_repository(50, 8, 3, 42);
        let b = synthetic_repository(50, 8, 3, 42);
        assert_eq!(a.user_count(), 50);
        assert_eq!(a.property_count(), 8);
        for u in a.users() {
            assert_eq!(a.profile(u).unwrap(), b.profile(u).unwrap());
        }
    }

    #[test]
    fn short_bench_run_is_clean() {
        let config = BenchConfig {
            users: 200,
            properties: 8,
            scores_per_user: 3,
            budget: 5,
            clients: 2,
            workers: 2,
            queue_capacity: 64,
            duration: Duration::from_millis(300),
            update_hz: 20,
            deadline_ms: 2_000,
            seed: 7,
        };
        let report = run_bench(&config);
        assert!(report.served > 0, "no requests served: {report:?}");
        assert_eq!(report.failed, 0, "{report:?}");
        assert_eq!(report.inconsistent, 0, "{report:?}");
        assert!(report.updates_applied > 0, "{report:?}");
        assert!(report.final_epoch > 0, "{report:?}");
        assert!(report.p50_us <= report.p99_us);
        let row = report.to_json();
        let value: Value = serde_json::from_str(&row).unwrap();
        assert_eq!(value.get("bench").and_then(Value::as_str), Some("serve"));
        assert_eq!(value.get("inconsistent").and_then(Value::as_u64), Some(0));
    }
}
