//! Closed-loop serving benchmark: measures sustained `select` throughput
//! and latency percentiles while a background writer publishes profile
//! updates at a fixed rate.
//!
//! Two transports are supported. In-process clients call
//! [`PodiumService::handle_line`] directly, measuring the serving
//! subsystem — snapshot capture, queueing, selection — without socket
//! noise. TCP clients go through a real [`crate::tcp::TcpServer`] using
//! the resilient [`crate::client::PodiumClient`], measuring the whole
//! stack including framing and the client's retry machinery.
//!
//! Every response is checked for consistency: it must be `ok`, return
//! exactly `budget` users, and report an epoch no older than the last one
//! that client observed (epochs are monotone per client). Failures are
//! recorded per cause — deadline, admission control, transport, other —
//! so a regression in one layer is visible as such instead of vanishing
//! into a single counter.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use podium_core::bucket::BucketingConfig;
use podium_core::profile::UserRepository;
use serde_json::Value;

use crate::client::{ClientConfig, ClientError, ClientHealth, PodiumClient};
use crate::recovery::{self, DurabilityOptions};
use crate::service::{PodiumService, ServiceConfig};
use crate::snapshot::PublishMode;
use crate::tcp::{TcpServer, TcpServerConfig};

/// Which path benchmark clients use to reach the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchTransport {
    /// Clients call [`PodiumService::handle_line`] directly.
    InProcess,
    /// Clients use [`PodiumClient`] against a loopback [`TcpServer`].
    Tcp,
}

impl BenchTransport {
    /// Stable name used in reports and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            BenchTransport::InProcess => "inproc",
            BenchTransport::Tcp => "tcp",
        }
    }
}

/// Load-generator knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Synthetic repository size (number of users).
    pub users: usize,
    /// Number of distinct properties in the synthetic repository.
    pub properties: usize,
    /// Scores per user (properties each user has an opinion on).
    pub scores_per_user: usize,
    /// Selection budget `b` per request.
    pub budget: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Executor worker threads.
    pub workers: usize,
    /// Executor queue capacity.
    pub queue_capacity: usize,
    /// Measurement window.
    pub duration: Duration,
    /// Background profile-update rate (updates per second); 0 disables
    /// the writer.
    pub update_hz: u64,
    /// Per-request deadline in milliseconds.
    pub deadline_ms: u64,
    /// Seed of the synthetic repository and the update stream.
    pub seed: u64,
    /// Transport clients use to reach the service.
    pub transport: BenchTransport,
    /// How the writer materializes epochs (incremental CSR patching vs
    /// full rebuild) — the axis the drift benchmark compares.
    pub publish_mode: PublishMode,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            users: 10_000,
            properties: 32,
            scores_per_user: 6,
            budget: 64,
            clients: 4,
            workers: 4,
            queue_capacity: 512,
            duration: Duration::from_secs(5),
            update_hz: 10,
            deadline_ms: 2_000,
            seed: 0x5EED_0001,
            transport: BenchTransport::InProcess,
            publish_mode: PublishMode::default(),
        }
    }
}

/// Schema tag of bench-serve JSONL rows (see `podium-sim`'s stream
/// validation: the dashboard rejects rows whose tag it does not read).
pub const BENCH_SERVE_SCHEMA: &str = "podium.bench-serve/1";

/// Next monotone `seq` for appending a row to an existing JSONL file:
/// one past the largest `seq` already present. Rows without a `seq`
/// (pre-schema emitters) still advance the floor by line count, so a
/// mixed legacy file keeps monotone numbering.
pub fn next_row_seq(existing: &str) -> u64 {
    let mut next = 0u64;
    for line in existing.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let from_seq = serde_json::from_str::<Value>(trimmed)
            .ok()
            .and_then(|v| v.get("seq").and_then(Value::as_u64))
            .map(|s| s.saturating_add(1));
        next = next.max(from_seq.unwrap_or(next.saturating_add(1)));
    }
    next
}

/// Benchmark outcome, one JSONL row via [`BenchReport::to_json`].
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Monotone row number within the JSONL file the row is appended
    /// to (see [`next_row_seq`]); `run_bench` leaves it 0 and appenders
    /// set it.
    pub seq: u64,
    /// Transport the clients used (`inproc` or `tcp`).
    pub transport: &'static str,
    /// Synthetic repository size.
    pub users: usize,
    /// Selection budget per request.
    pub budget: usize,
    /// Client threads.
    pub clients: usize,
    /// Executor workers.
    pub workers: usize,
    /// Configured background update rate (Hz).
    pub update_hz: u64,
    /// Wall-clock the measurement actually took.
    pub duration_s: f64,
    /// Successful, consistent select responses.
    pub served: u64,
    /// Failed requests across all causes except admission control:
    /// always equals `failed_deadline + failed_transport + failed_other`.
    pub failed: u64,
    /// Requests that missed their deadline (server `deadline_exceeded`
    /// or client-side timeout).
    pub failed_deadline: u64,
    /// Requests lost to the transport (connect/read/write failures,
    /// breaker fast-failures). Always zero in-process.
    pub failed_transport: u64,
    /// Failures not attributable to deadline, admission, or transport
    /// (e.g. unexpected server error codes, unparseable responses).
    pub failed_other: u64,
    /// Admission-control rejections observed by clients. Tracked apart
    /// from `failed`: shedding load under saturation is the configured
    /// behaviour, not a fault.
    pub overloaded: u64,
    /// `ok:true` responses violating a consistency check (wrong user
    /// count or non-monotone epoch).
    pub inconsistent: u64,
    /// Profile updates the background writer applied.
    pub updates_applied: u64,
    /// Final published epoch.
    pub final_epoch: u64,
    /// Select-cache hits across the run (service-level cumulative).
    pub cache_hits: u64,
    /// Select-cache misses across the run (service-level cumulative).
    pub cache_misses: u64,
    /// Deepest executor queue observed by the sampler.
    pub queue_depth_max: usize,
    /// Publish mode the writer ran under (`incremental` or
    /// `full_rebuild`).
    pub publish_mode: &'static str,
    /// Epochs published during the run.
    pub publishes: u64,
    /// Publishes that took the CSR patch path.
    pub patched_publishes: u64,
    /// Median publish latency over the recent-latency ring, microseconds.
    pub publish_p50_us: u64,
    /// 99th-percentile publish latency, microseconds.
    pub publish_p99_us: u64,
    /// Memoized selects carried across epochs, cumulative.
    pub memos_carried: u64,
    /// Memoized selects invalidated by deltas, cumulative.
    pub memos_invalidated: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when no selects ran.
    pub memo_hit_rate: f64,
    /// WAL bytes on disk at the end of the run (0 when not durable).
    pub wal_bytes: u64,
    /// Epoch captured by the newest checkpoint (0 when not durable or no
    /// checkpoint was cut).
    pub last_checkpoint_epoch: u64,
    /// Wall-clock milliseconds a cold recovery of the run's data
    /// directory took, measured after the run (0 when not durable).
    pub recovery_ms: f64,
    /// Epoch the post-run recovery landed on (0 when not durable).
    pub recovered_epoch: u64,
    /// Final breaker/health state of each TCP client, in client order
    /// (empty in-process).
    pub client_health: Vec<ClientHealth>,
    /// Served requests per second.
    pub throughput_rps: f64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 90th percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

impl BenchReport {
    /// Serializes the report as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        use crate::protocol::{num_f64, num_u64};
        let pairs = vec![
            (
                "schema".to_owned(),
                Value::String(BENCH_SERVE_SCHEMA.to_owned()),
            ),
            ("seq".to_owned(), num_u64(self.seq)),
            ("bench".to_owned(), Value::String("serve".to_owned())),
            (
                "transport".to_owned(),
                Value::String(self.transport.to_owned()),
            ),
            ("users".to_owned(), num_u64(self.users as u64)),
            ("budget".to_owned(), num_u64(self.budget as u64)),
            ("clients".to_owned(), num_u64(self.clients as u64)),
            ("workers".to_owned(), num_u64(self.workers as u64)),
            ("update_hz".to_owned(), num_u64(self.update_hz)),
            ("duration_s".to_owned(), num_f64(self.duration_s)),
            ("served".to_owned(), num_u64(self.served)),
            ("failed".to_owned(), num_u64(self.failed)),
            ("failed_deadline".to_owned(), num_u64(self.failed_deadline)),
            (
                "failed_transport".to_owned(),
                num_u64(self.failed_transport),
            ),
            ("failed_other".to_owned(), num_u64(self.failed_other)),
            ("overloaded".to_owned(), num_u64(self.overloaded)),
            ("inconsistent".to_owned(), num_u64(self.inconsistent)),
            ("updates_applied".to_owned(), num_u64(self.updates_applied)),
            ("final_epoch".to_owned(), num_u64(self.final_epoch)),
            ("cache_hits".to_owned(), num_u64(self.cache_hits)),
            ("cache_misses".to_owned(), num_u64(self.cache_misses)),
            (
                "queue_depth_max".to_owned(),
                num_u64(self.queue_depth_max as u64),
            ),
            (
                "publish_mode".to_owned(),
                Value::String(self.publish_mode.to_owned()),
            ),
            ("publishes".to_owned(), num_u64(self.publishes)),
            (
                "patched_publishes".to_owned(),
                num_u64(self.patched_publishes),
            ),
            ("publish_p50_us".to_owned(), num_u64(self.publish_p50_us)),
            ("publish_p99_us".to_owned(), num_u64(self.publish_p99_us)),
            ("memos_carried".to_owned(), num_u64(self.memos_carried)),
            (
                "memos_invalidated".to_owned(),
                num_u64(self.memos_invalidated),
            ),
            ("memo_hit_rate".to_owned(), num_f64(self.memo_hit_rate)),
            ("wal_bytes".to_owned(), num_u64(self.wal_bytes)),
            (
                "last_checkpoint_epoch".to_owned(),
                num_u64(self.last_checkpoint_epoch),
            ),
            ("recovery_ms".to_owned(), num_f64(self.recovery_ms)),
            ("recovered_epoch".to_owned(), num_u64(self.recovered_epoch)),
            (
                "client_health".to_owned(),
                Value::Array(
                    self.client_health
                        .iter()
                        .enumerate()
                        .map(|(i, h)| {
                            Value::Object(vec![
                                ("client".to_owned(), num_u64(i as u64)),
                                (
                                    "state".to_owned(),
                                    Value::String(h.state.as_str().to_owned()),
                                ),
                                (
                                    "consecutive_failures".to_owned(),
                                    num_u64(u64::from(h.consecutive_failures)),
                                ),
                                (
                                    "last_transition_epoch".to_owned(),
                                    num_u64(h.last_transition_epoch),
                                ),
                                ("last_seen_epoch".to_owned(), num_u64(h.last_seen_epoch)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("throughput_rps".to_owned(), num_f64(self.throughput_rps)),
            ("p50_us".to_owned(), num_u64(self.p50_us)),
            ("p90_us".to_owned(), num_u64(self.p90_us)),
            ("p99_us".to_owned(), num_u64(self.p99_us)),
            ("max_us".to_owned(), num_u64(self.max_us)),
        ];
        serde_json::to_string(&Value::Object(pairs)).expect("report serialization is infallible")
    }
}

/// splitmix64: deterministic, dependency-free stream for synthetic data.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_float(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Builds the synthetic benchmark repository: `users` users, each with
/// `scores_per_user` scores over `properties` properties, uniform in
/// `[0, 1)`.
pub fn synthetic_repository(
    users: usize,
    properties: usize,
    scores_per_user: usize,
    seed: u64,
) -> UserRepository {
    let mut repo = UserRepository::new();
    let props: Vec<_> = (0..properties)
        .map(|p| repo.intern_property(format!("topic-{p}")))
        .collect();
    let mut rng = seed;
    for i in 0..users {
        let u = repo.add_user(format!("user-{i}"));
        for s in 0..scores_per_user.min(properties) {
            // Rotate the property window per user so every property ends
            // up populated.
            let p = props[(i + s * (properties / scores_per_user.max(1)).max(1)) % properties];
            repo.set_score(u, p, unit_float(&mut rng))
                .expect("synthetic scores are in range");
        }
    }
    repo
}

/// Where a failed request went wrong. Admission-control rejections get
/// their own tally outside this enum (they are policy, not faults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailCause {
    /// The executor (or the client's own clock) gave up on the deadline.
    Deadline,
    /// Admission control rejected the request before queuing it.
    Admission,
    /// Bytes did not make it to or from the server.
    Transport,
    /// Anything else: unexpected error codes, unparseable lines.
    Other,
}

/// Maps a server error code to its failure cause.
fn classify_error_code(code: &str) -> FailCause {
    match code {
        "deadline_exceeded" => FailCause::Deadline,
        "overloaded" => FailCause::Admission,
        _ => FailCause::Other,
    }
}

/// Maps a client-side error to its failure cause.
fn classify_client_error(error: &ClientError) -> FailCause {
    match error {
        ClientError::Timeout => FailCause::Deadline,
        ClientError::Transport(_) | ClientError::BreakerOpen => FailCause::Transport,
        ClientError::Protocol(_) => FailCause::Other,
    }
}

#[derive(Default)]
struct ClientTally {
    served: u64,
    failed_deadline: u64,
    failed_transport: u64,
    failed_other: u64,
    overloaded: u64,
    inconsistent: u64,
    latencies_us: Vec<u64>,
    /// Final breaker/health snapshot, TCP clients only.
    health: Option<ClientHealth>,
}

impl ClientTally {
    fn record_failure(&mut self, cause: FailCause) {
        match cause {
            FailCause::Deadline => self.failed_deadline += 1,
            FailCause::Admission => self.overloaded += 1,
            FailCause::Transport => self.failed_transport += 1,
            FailCause::Other => self.failed_other += 1,
        }
    }

    /// All non-admission failures.
    fn failed(&self) -> u64 {
        self.failed_deadline + self.failed_transport + self.failed_other
    }

    /// Checks one `ok` response for budget and epoch consistency.
    fn record_response(
        &mut self,
        value: &Value,
        budget: usize,
        last_epoch: &mut u64,
        latency: u64,
    ) {
        match value.get("ok").and_then(Value::as_bool) {
            Some(true) => {
                let epoch = value.get("epoch").and_then(Value::as_u64).unwrap_or(0);
                let n_users = value
                    .get("users")
                    .and_then(Value::as_array)
                    .map(Vec::len)
                    .unwrap_or(0);
                if n_users != budget || epoch < *last_epoch {
                    self.inconsistent += 1;
                } else {
                    *last_epoch = epoch;
                    self.served += 1;
                    self.latencies_us.push(latency);
                }
            }
            _ => {
                let cause = value
                    .get("error")
                    .and_then(Value::as_str)
                    .map(classify_error_code)
                    .unwrap_or(FailCause::Other);
                self.record_failure(cause);
            }
        }
    }
}

fn client_loop(
    service: &PodiumService,
    budget: usize,
    deadline_ms: u64,
    stop: &AtomicBool,
) -> ClientTally {
    let request = format!(r#"{{"op":"select","budget":{budget},"deadline_ms":{deadline_ms}}}"#);
    let mut tally = ClientTally::default();
    let mut last_epoch = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let started = Instant::now();
        let response = service.handle_line(&request);
        let latency = started.elapsed().as_micros() as u64;
        match serde_json::from_str::<Value>(&response) {
            Ok(value) => tally.record_response(&value, budget, &mut last_epoch, latency),
            Err(_) => tally.record_failure(FailCause::Other),
        }
    }
    tally
}

fn tcp_client_loop(
    addr: std::net::SocketAddr,
    budget: usize,
    deadline_ms: u64,
    seed: u64,
    stop: &AtomicBool,
) -> ClientTally {
    let request = format!(r#"{{"op":"select","budget":{budget},"deadline_ms":{deadline_ms}}}"#);
    let mut client = PodiumClient::new(
        addr,
        ClientConfig {
            request_timeout: Duration::from_millis(deadline_ms.max(100)),
            seed,
            ..ClientConfig::default()
        },
    );
    let mut tally = ClientTally::default();
    let mut last_epoch = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let started = Instant::now();
        match client.call(&request) {
            Ok(value) => {
                let latency = started.elapsed().as_micros() as u64;
                tally.record_response(&value, budget, &mut last_epoch, latency);
            }
            Err(error) => tally.record_failure(classify_client_error(&error)),
        }
    }
    tally.health = Some(client.health());
    tally
}

fn updater_loop(
    service: &PodiumService,
    config: &BenchConfig,
    stop: &AtomicBool,
    applied: &AtomicU64,
) {
    if config.update_hz == 0 {
        return;
    }
    let tick = Duration::from_nanos(1_000_000_000 / config.update_hz);
    let mut rng = config.seed ^ 0xDEAD_BEEF;
    while !stop.load(Ordering::Relaxed) {
        let user = (splitmix64(&mut rng) as usize) % config.users;
        let prop = (splitmix64(&mut rng) as usize) % config.properties;
        let score = unit_float(&mut rng);
        let line = format!(
            r#"{{"op":"update-profile","user":"user-{user}","property":"topic-{prop}","score":{score}}}"#
        );
        let response = service.handle_line(&line);
        if response.contains("\"ok\":true") {
            applied.fetch_add(1, Ordering::Relaxed);
        }
        std::thread::sleep(tick);
    }
}

/// Polls the executor queue depth until stopped, remembering the max.
fn queue_sampler(service: &PodiumService, stop: &AtomicBool, max_depth: &AtomicU64) {
    while !stop.load(Ordering::Relaxed) {
        let depth = service.executor().queue_depth() as u64;
        max_depth.fetch_max(depth, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Runs the closed-loop benchmark and returns the merged report.
pub fn run_bench(config: &BenchConfig) -> BenchReport {
    run_bench_with(config, None)
}

/// [`run_bench`] with optional durability: when `durability` is set, the
/// service writes its WAL and checkpoints into the given data directory,
/// and after the measurement window the report additionally records how
/// long a cold recovery of that directory takes (`recovery_ms`) and which
/// epoch it lands on (`recovered_epoch`).
pub fn run_bench_with(config: &BenchConfig, durability: Option<&DurabilityOptions>) -> BenchReport {
    let repo = synthetic_repository(
        config.users,
        config.properties,
        config.scores_per_user,
        config.seed,
    );
    let buckets = BucketingConfig::paper_default().bucketize(&repo);
    let service_config = ServiceConfig {
        workers: config.workers,
        queue_capacity: config.queue_capacity,
        default_deadline_ms: config.deadline_ms,
        publish_mode: config.publish_mode,
        ..ServiceConfig::default()
    };
    let service = Arc::new(match durability {
        None => PodiumService::new(repo, &buckets, service_config),
        Some(opts) => {
            let (service, _report) =
                PodiumService::with_durability(repo, &buckets, service_config, opts.clone())
                    .expect("durable bench service");
            service
        }
    });
    let stop = Arc::new(AtomicBool::new(false));
    let applied = Arc::new(AtomicU64::new(0));
    let max_depth = Arc::new(AtomicU64::new(0));

    // A TCP bench stands up a real loopback server; clients get its
    // address. The server must outlive the clients, hence the binding.
    let tcp_server = match config.transport {
        BenchTransport::InProcess => None,
        BenchTransport::Tcp => Some(
            TcpServer::bind(
                Arc::clone(&service),
                "127.0.0.1:0",
                TcpServerConfig::default(),
            )
            .expect("loopback bind for bench"),
        ),
    };

    let updater = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let applied = Arc::clone(&applied);
        let config = *config;
        std::thread::spawn(move || updater_loop(&service, &config, &stop, &applied))
    };
    let sampler = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let max_depth = Arc::clone(&max_depth);
        std::thread::spawn(move || queue_sampler(&service, &stop, &max_depth))
    };

    let started = Instant::now();
    let clients: Vec<_> = (0..config.clients.max(1))
        .map(|i| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let budget = config.budget;
            let deadline_ms = config.deadline_ms;
            let seed = config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9);
            let addr = tcp_server.as_ref().map(TcpServer::local_addr);
            std::thread::spawn(move || match addr {
                None => client_loop(&service, budget, deadline_ms, &stop),
                Some(addr) => tcp_client_loop(addr, budget, deadline_ms, seed, &stop),
            })
        })
        .collect();

    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);

    let mut total = ClientTally::default();
    let mut client_health = Vec::new();
    for client in clients {
        let tally = client.join().expect("client thread panicked");
        total.served += tally.served;
        total.failed_deadline += tally.failed_deadline;
        total.failed_transport += tally.failed_transport;
        total.failed_other += tally.failed_other;
        total.overloaded += tally.overloaded;
        total.inconsistent += tally.inconsistent;
        total.latencies_us.extend(tally.latencies_us);
        client_health.extend(tally.health);
    }
    let elapsed = started.elapsed();
    updater.join().expect("updater thread panicked");
    sampler.join().expect("sampler thread panicked");
    if let Some(server) = tcp_server {
        server.shutdown();
    }
    total.latencies_us.sort_unstable();
    let (cache_hits, cache_misses) = service.cache_counters().totals();
    // The epoch-build breakdown rides the `stats` op, same as clients see.
    let stats_value: Value =
        serde_json::from_str(&service.handle_line(r#"{"op":"stats"}"#)).unwrap_or(Value::Null);
    let stat = |field: &str| stats_value.get(field).and_then(Value::as_u64).unwrap_or(0);

    // With durability on, measure what a cold restart of this data
    // directory would cost: rebuild the genesis repository and time the
    // full checkpoint-load + WAL-replay path.
    let (recovery_ms, recovered_epoch) = match durability {
        None => (0.0, 0),
        Some(opts) => {
            let genesis = synthetic_repository(
                config.users,
                config.properties,
                config.scores_per_user,
                config.seed,
            );
            let recovery_started = Instant::now();
            match recovery::recover(&opts.data_dir, genesis, &buckets, config.publish_mode) {
                Ok((_, _, report)) => (
                    recovery_started.elapsed().as_secs_f64() * 1_000.0,
                    report.recovered_epoch,
                ),
                Err(_) => (0.0, 0),
            }
        }
    };

    BenchReport {
        seq: 0,
        transport: config.transport.as_str(),
        users: config.users,
        budget: config.budget,
        clients: config.clients,
        workers: config.workers,
        update_hz: config.update_hz,
        duration_s: elapsed.as_secs_f64(),
        served: total.served,
        failed: total.failed(),
        failed_deadline: total.failed_deadline,
        failed_transport: total.failed_transport,
        failed_other: total.failed_other,
        overloaded: total.overloaded,
        inconsistent: total.inconsistent,
        updates_applied: applied.load(Ordering::Relaxed),
        final_epoch: service.store().epoch(),
        cache_hits,
        cache_misses,
        queue_depth_max: max_depth.load(Ordering::Relaxed) as usize,
        publish_mode: match config.publish_mode {
            PublishMode::Incremental => "incremental",
            PublishMode::FullRebuild => "full_rebuild",
        },
        publishes: stat("publishes"),
        patched_publishes: stat("patched_publishes"),
        publish_p50_us: stat("publish_p50_micros"),
        publish_p99_us: stat("publish_p99_micros"),
        memos_carried: stat("memos_carried"),
        memos_invalidated: stat("memos_invalidated"),
        memo_hit_rate: if cache_hits + cache_misses > 0 {
            cache_hits as f64 / (cache_hits + cache_misses) as f64
        } else {
            0.0
        },
        wal_bytes: stat("wal_bytes"),
        last_checkpoint_epoch: stat("last_checkpoint_epoch"),
        recovery_ms,
        recovered_epoch,
        client_health,
        throughput_rps: total.served as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(&total.latencies_us, 0.50),
        p90_us: percentile(&total.latencies_us, 0.90),
        p99_us: percentile(&total.latencies_us, 0.99),
        max_us: total.latencies_us.last().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_repository_is_deterministic() {
        let a = synthetic_repository(50, 8, 3, 42);
        let b = synthetic_repository(50, 8, 3, 42);
        assert_eq!(a.user_count(), 50);
        assert_eq!(a.property_count(), 8);
        for u in a.users() {
            assert_eq!(a.profile(u).unwrap(), b.profile(u).unwrap());
        }
    }

    fn short_config() -> BenchConfig {
        BenchConfig {
            users: 200,
            properties: 8,
            scores_per_user: 3,
            budget: 5,
            clients: 2,
            workers: 2,
            queue_capacity: 64,
            duration: Duration::from_millis(300),
            update_hz: 20,
            deadline_ms: 2_000,
            seed: 7,
            transport: BenchTransport::InProcess,
            publish_mode: PublishMode::Incremental,
        }
    }

    #[test]
    fn short_bench_run_is_clean() {
        let report = run_bench(&short_config());
        assert!(report.served > 0, "no requests served: {report:?}");
        assert_eq!(report.failed, 0, "{report:?}");
        assert_eq!(report.inconsistent, 0, "{report:?}");
        assert!(report.updates_applied > 0, "{report:?}");
        assert!(report.final_epoch > 0, "{report:?}");
        assert!(report.p50_us <= report.p99_us);
        assert!(
            report.cache_hits + report.cache_misses >= report.served,
            "every served select passed through the cache: {report:?}"
        );
        let row = report.to_json();
        let value: Value = serde_json::from_str(&row).unwrap();
        assert_eq!(value.get("bench").and_then(Value::as_str), Some("serve"));
        assert_eq!(
            value.get("transport").and_then(Value::as_str),
            Some("inproc")
        );
        assert_eq!(value.get("inconsistent").and_then(Value::as_u64), Some(0));
        for field in [
            "failed_deadline",
            "failed_transport",
            "failed_other",
            "cache_hits",
            "cache_misses",
            "queue_depth_max",
        ] {
            assert!(value.get(field).is_some(), "missing {field}: {row}");
        }
    }

    #[test]
    fn short_tcp_bench_run_is_clean() {
        let config = BenchConfig {
            transport: BenchTransport::Tcp,
            ..short_config()
        };
        let report = run_bench(&config);
        assert!(report.served > 0, "no requests served: {report:?}");
        assert_eq!(report.failed, 0, "{report:?}");
        assert_eq!(report.inconsistent, 0, "{report:?}");
        assert_eq!(report.transport, "tcp");
    }

    #[test]
    fn short_durable_tcp_bench_records_recovery_and_client_health() {
        use crate::client::BreakerState;
        let dir = std::env::temp_dir().join(format!(
            "podium-bench-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = BenchConfig {
            transport: BenchTransport::Tcp,
            ..short_config()
        };
        let opts = DurabilityOptions::new(&dir);
        let report = run_bench_with(&config, Some(&opts));
        assert_eq!(report.failed, 0, "{report:?}");
        assert!(report.updates_applied > 0, "{report:?}");
        assert!(report.wal_bytes > 0, "{report:?}");
        assert!(report.recovery_ms > 0.0, "{report:?}");
        assert_eq!(
            report.recovered_epoch, report.final_epoch,
            "an always-fsync run recovers to its final epoch: {report:?}"
        );
        assert_eq!(report.client_health.len(), config.clients);
        assert!(
            report
                .client_health
                .iter()
                .all(|h| h.state == BreakerState::Closed),
            "{report:?}"
        );
        // Clients learn the epoch from response payloads, so they only
        // see a non-zero epoch if an update published *before* their last
        // response was generated. On a loaded machine the sole update of
        // a short window can land after every client response — tolerate
        // exactly that race, and nothing else.
        assert!(
            report.client_health.iter().all(|h| h.last_seen_epoch > 0)
                || report.updates_applied == 1,
            "{report:?}"
        );
        let row = report.to_json();
        let value: Value = serde_json::from_str(&row).unwrap();
        assert!(value.get("recovery_ms").is_some(), "{row}");
        assert_eq!(
            value.get("recovered_epoch").and_then(Value::as_u64),
            Some(report.recovered_epoch)
        );
        let health = value
            .get("client_health")
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(health.len(), config.clients);
        assert_eq!(
            health[0].get("state").and_then(Value::as_str),
            Some("closed")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failure_breakdown_sums_to_failed() {
        // Drive every cause through the tally and check the arithmetic
        // invariant `failed == deadline + transport + other` with
        // admission kept separate.
        let mut tally = ClientTally::default();
        for (cause, times) in [
            (FailCause::Deadline, 3),
            (FailCause::Admission, 5),
            (FailCause::Transport, 2),
            (FailCause::Other, 4),
        ] {
            for _ in 0..times {
                tally.record_failure(cause);
            }
        }
        assert_eq!(tally.failed_deadline, 3);
        assert_eq!(tally.overloaded, 5);
        assert_eq!(tally.failed_transport, 2);
        assert_eq!(tally.failed_other, 4);
        assert_eq!(
            tally.failed(),
            tally.failed_deadline + tally.failed_transport + tally.failed_other
        );
        assert_eq!(tally.failed(), 9, "admission is not a failure");
    }

    #[test]
    fn error_codes_classify_by_cause() {
        assert_eq!(
            classify_error_code("deadline_exceeded"),
            FailCause::Deadline
        );
        assert_eq!(classify_error_code("overloaded"), FailCause::Admission);
        assert_eq!(classify_error_code("bad_request"), FailCause::Other);
        assert_eq!(classify_error_code("core"), FailCause::Other);
        assert_eq!(
            classify_client_error(&ClientError::Timeout),
            FailCause::Deadline
        );
        assert_eq!(
            classify_client_error(&ClientError::BreakerOpen),
            FailCause::Transport
        );
        assert_eq!(
            classify_client_error(&ClientError::Transport("x".into())),
            FailCause::Transport
        );
        assert_eq!(
            classify_client_error(&ClientError::Protocol("x".into())),
            FailCause::Other
        );
    }
}
