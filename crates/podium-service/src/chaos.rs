//! A deterministic in-process chaos proxy for TCP testing.
//!
//! [`ChaosProxy`] sits between a client and an upstream TCP server and
//! forwards bytes in both directions while injecting faults drawn from a
//! seeded splitmix64 stream:
//!
//! * **Write splits** — forwarded chunks are re-sliced into 1–7 byte
//!   writes, exercising every partial-frame path in server and client.
//! * **Mid-frame disconnects** — with probability
//!   [`ChaosConfig::disconnect_per_chunk`], a chunk is truncated at a
//!   random byte, forwarded, and then both directions are torn down —
//!   the peer sees a broken frame followed by EOF.
//! * **Stalls** — with probability [`ChaosConfig::stall_per_chunk`], the
//!   pump delays [`ChaosConfig::stall`] before forwarding. Under the
//!   default [`ChaosClock::Real`] the delay is a wall-clock sleep, long
//!   enough (when configured past the client deadline) to force
//!   timeouts; under [`ChaosClock::Virtual`] the delay is *bookkept* on
//!   a shared virtual-nanosecond counter instead of slept, so
//!   stall-heavy tests and simulator runs finish at full speed while
//!   still exercising the seeded fault schedule.
//! * **Connection refusals** — with probability
//!   [`ChaosConfig::refuse_per_conn`], an accepted connection is dropped
//!   immediately without contacting upstream.
//! * **Blackout** — [`ChaosProxy::set_blackout`] refuses all new
//!   connections and severs existing ones until cleared; this is how the
//!   harness drives the client's circuit breaker open and then lets it
//!   recover.
//!
//! Determinism scope: each connection's fault stream comes from an RNG
//! seeded `seed ^ connection_index`, and each direction's byte stream is
//! partitioned into *scripted chunks* whose lengths (1–512 bytes) are
//! drawn from that RNG — so both the chunk boundaries (as byte offsets
//! into the stream) and the per-chunk fault decisions are a pure function
//! of the seed and connection order, independent of read timing. The only
//! residual timing dependence: a disconnect whose scripted cut lies past
//! the bytes that ever arrive severs at the next idle tick instead, and
//! the low-level write slicing (1–7 byte writes) uses a derived cosmetic
//! RNG that does not perturb the fault schedule. Harnesses may therefore
//! assert per-seed fault schedules, not just aggregate invariants.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::poison;

/// How injected fault *timing* (stalls, idle ticks) is accounted.
///
/// The fault *schedule* — which chunks stall, where disconnects cut —
/// is always a pure function of the seed; the clock only decides
/// whether the scheduled delays consume wall time or a virtual
/// counter. Routing timing through the virtual clock removes the last
/// wall-time dependence from stall-heavy chaos tests and keeps
/// simulator runs with chaos deterministic and fast.
#[derive(Debug, Clone, Default)]
pub enum ChaosClock {
    /// Delays are real `thread::sleep`s (the historical behavior).
    #[default]
    Real,
    /// Delays advance a shared virtual-nanosecond counter instead of
    /// sleeping. Readable via [`ChaosClock::virtual_ns`].
    Virtual(Arc<AtomicU64>),
}

impl ChaosClock {
    /// A fresh virtual clock starting at zero.
    pub fn virtual_clock() -> Self {
        Self::Virtual(Arc::new(AtomicU64::new(0)))
    }

    /// Nanoseconds accumulated on the virtual counter; `None` for the
    /// real clock.
    pub fn virtual_ns(&self) -> Option<u64> {
        match self {
            Self::Real => None,
            Self::Virtual(t) => Some(t.load(Ordering::Relaxed)),
        }
    }

    /// Spends `d` on this clock: a sleep under [`ChaosClock::Real`], a
    /// counter bump under [`ChaosClock::Virtual`].
    fn spend(&self, d: Duration) {
        match self {
            Self::Real => std::thread::sleep(d),
            Self::Virtual(t) => {
                let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
                t.fetch_add(ns, Ordering::Relaxed);
            }
        }
    }

    /// Accounts one idle read tick (no bytes arrived within the read
    /// timeout). The wall wait already happened inside the blocking
    /// read; the virtual clock records it so idle-driven faults are
    /// visible in virtual time too.
    fn idle_tick(&self, d: Duration) {
        if let Self::Virtual(t) = self {
            let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
            t.fetch_add(ns, Ordering::Relaxed);
        }
    }
}

impl PartialEq for ChaosClock {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Self::Real, Self::Real) => true,
            (Self::Virtual(a), Self::Virtual(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Fault probabilities and timings. All probabilities are per-chunk (or
/// per-connection for refusals) in `[0.0, 1.0]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the fault stream; same seed ⇒ same per-connection fault
    /// decisions.
    pub seed: u64,
    /// Re-slice forwarded chunks into tiny writes.
    pub split_writes: bool,
    /// Probability a chunk is truncated and the connection killed.
    pub disconnect_per_chunk: f64,
    /// Probability a chunk is delayed by [`ChaosConfig::stall`].
    pub stall_per_chunk: f64,
    /// Injected delay for stalled chunks.
    pub stall: Duration,
    /// Probability an accepted connection is dropped before contacting
    /// upstream.
    pub refuse_per_conn: f64,
    /// Whether stall/idle timing sleeps ([`ChaosClock::Real`]) or is
    /// bookkept on a virtual counter ([`ChaosClock::Virtual`]).
    pub clock: ChaosClock,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0xC4A05,
            split_writes: true,
            disconnect_per_chunk: 0.0,
            stall_per_chunk: 0.0,
            stall: Duration::from_millis(0),
            refuse_per_conn: 0.0,
            clock: ChaosClock::Real,
        }
    }
}

/// Counts of injected faults, for asserting the chaos actually happened.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Connections accepted (including refused ones).
    pub connections: AtomicU64,
    /// Connections dropped on accept (refusal fault or blackout).
    pub refused: AtomicU64,
    /// Mid-frame disconnects injected.
    pub disconnects: AtomicU64,
    /// Stalls injected.
    pub stalls: AtomicU64,
    /// Total injected stall time in nanoseconds (wall or virtual,
    /// depending on [`ChaosConfig::clock`]).
    pub stalled_ns: AtomicU64,
    /// Chunks forwarded as split writes.
    pub splits: AtomicU64,
}

struct ChaosShared {
    upstream: SocketAddr,
    config: ChaosConfig,
    shutdown: AtomicBool,
    blackout: AtomicBool,
    stats: ChaosStats,
    /// Streams of live connections (client and upstream sides), kept so a
    /// blackout can sever them.
    live: Mutex<Vec<TcpStream>>,
}

/// The proxy handle. Dropping it shuts the proxy down.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    shared: Arc<ChaosShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("local_addr", &self.local_addr)
            .field("upstream", &self.shared.upstream)
            .finish()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_float(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

const READ_TICK: Duration = Duration::from_millis(50);

/// Upper bound on a scripted chunk length, in bytes.
const MAX_SCRIPT_CHUNK: u64 = 512;

/// Draws the next scripted chunk length (1–[`MAX_SCRIPT_CHUNK`] bytes)
/// from the schedule RNG. The sequence of lengths — and therefore the
/// byte offsets of every chunk boundary — is a pure function of the seed.
fn scripted_chunk_len(rng: &mut u64) -> usize {
    1 + (splitmix64(rng) % MAX_SCRIPT_CHUNK) as usize
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts proxying to `upstream`.
    pub fn bind(upstream: SocketAddr, config: ChaosConfig) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ChaosShared {
            upstream,
            config,
            shutdown: AtomicBool::new(false),
            blackout: AtomicBool::new(false),
            stats: ChaosStats::default(),
            live: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("chaos-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Self {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// Address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Fault counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.shared.stats
    }

    /// Enables or disables blackout mode. Enabling severs every live
    /// connection and refuses all new ones until disabled.
    pub fn set_blackout(&self, on: bool) {
        self.shared.blackout.store(on, Ordering::SeqCst);
        if on {
            let mut live = poison::recover(self.shared.live.lock());
            for stream in live.drain(..) {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }

    /// Stops the proxy, severing all connections.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let mut live = poison::recover(self.shared.live.lock());
        for stream in live.drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ChaosShared>) {
    let mut index: u64 = 0;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let client = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        let conn_seed = shared.config.seed ^ index;
        index += 1;
        let mut rng = conn_seed;
        // Warm the stream so the first decision isn't the raw seed.
        let _ = splitmix64(&mut rng);
        let refuse = shared.blackout.load(Ordering::SeqCst)
            || unit_float(&mut rng) < shared.config.refuse_per_conn;
        if refuse {
            shared.stats.refused.fetch_add(1, Ordering::Relaxed);
            let _ = client.shutdown(Shutdown::Both);
            continue;
        }
        let upstream = match TcpStream::connect_timeout(&shared.upstream, Duration::from_secs(2)) {
            Ok(s) => s,
            Err(_) => {
                shared.stats.refused.fetch_add(1, Ordering::Relaxed);
                let _ = client.shutdown(Shutdown::Both);
                continue;
            }
        };
        let _ = client.set_nodelay(true);
        let _ = upstream.set_nodelay(true);
        {
            let mut live = poison::recover(shared.live.lock());
            if let (Ok(c), Ok(u)) = (client.try_clone(), upstream.try_clone()) {
                live.push(c);
                live.push(u);
            }
        }
        // Two pump threads per connection: client→upstream faults use the
        // connection RNG directly; upstream→client gets an independent
        // stream derived from it so the two directions don't interleave
        // nondeterministically over one generator.
        let mut down_rng = splitmix64(&mut rng);
        let _ = splitmix64(&mut down_rng);
        spawn_pump(shared, &client, &upstream, rng, "chaos-up");
        spawn_pump(shared, &upstream, &client, down_rng, "chaos-down");
    }
}

fn spawn_pump(shared: &Arc<ChaosShared>, from: &TcpStream, to: &TcpStream, rng: u64, name: &str) {
    let (Ok(from), Ok(to)) = (from.try_clone(), to.try_clone()) else {
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
        return;
    };
    let shared = Arc::clone(shared);
    let _ = std::thread::Builder::new()
        .name(name.to_owned())
        .spawn(move || pump(&shared, from, to, rng));
}

/// Copies bytes `from` → `to`, injecting faults per the config. Exits on
/// EOF, error, injected disconnect, or proxy shutdown; always severs both
/// streams on the way out so the opposite pump exits too.
///
/// The stream is partitioned into scripted chunks drawn from the schedule
/// RNG: fault decisions (stall, disconnect + cut offset) roll once when
/// each scripted chunk *starts*, and bytes are forwarded as they arrive,
/// so the fault schedule is deterministic without adding latency or
/// holding bytes back from request/response traffic. A disconnect sets
/// the chunk's effective length to the scripted cut and kills once that
/// many bytes have been forwarded — or at the next idle tick if the
/// sender stalls before reaching the cut.
fn pump(shared: &ChaosShared, mut from: TcpStream, mut to: TcpStream, mut rng: u64) {
    let config = &shared.config;
    if from.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    // Cosmetic RNG for 1–7 byte write re-slicing. Derived up front so the
    // schedule RNG's draw sequence is independent of how reads and writes
    // happen to interleave.
    let mut slice_rng = splitmix64(&mut rng);
    let _ = splitmix64(&mut slice_rng);
    let mut buf = [0u8; 2048];
    // Bytes left in the current scripted chunk; 0 means the next byte
    // starts a new chunk (and rolls its fault decisions).
    let mut remaining: usize = 0;
    // A disconnect was rolled for the current chunk: sever once
    // `remaining` reaches zero (or at the next idle tick).
    let mut kill_after = false;
    let mut dead = false;
    while !dead {
        if shared.shutdown.load(Ordering::SeqCst) || shared.blackout.load(Ordering::SeqCst) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                config.clock.idle_tick(READ_TICK);
                if kill_after {
                    // The scripted cut lies past the bytes that ever
                    // arrived; sever at the idle tick instead.
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let mut payload = &buf[..n];
        while !payload.is_empty() {
            if remaining == 0 {
                if kill_after {
                    dead = true;
                    break;
                }
                remaining = scripted_chunk_len(&mut rng);
                if config.stall_per_chunk > 0.0 && unit_float(&mut rng) < config.stall_per_chunk {
                    shared.stats.stalls.fetch_add(1, Ordering::Relaxed);
                    shared.stats.stalled_ns.fetch_add(
                        u64::try_from(config.stall.as_nanos()).unwrap_or(u64::MAX),
                        Ordering::Relaxed,
                    );
                    config.clock.spend(config.stall);
                }
                if config.disconnect_per_chunk > 0.0
                    && unit_float(&mut rng) < config.disconnect_per_chunk
                {
                    // Truncate the chunk at a scripted byte (possibly
                    // zero) and kill once it is forwarded — the peer
                    // sees a broken frame then EOF.
                    remaining = (splitmix64(&mut rng) % (remaining as u64 + 1)) as usize;
                    kill_after = true;
                    shared.stats.disconnects.fetch_add(1, Ordering::Relaxed);
                    if remaining == 0 {
                        dead = true;
                        break;
                    }
                }
                if config.split_writes {
                    shared.stats.splits.fetch_add(1, Ordering::Relaxed);
                }
            }
            let take = payload.len().min(remaining);
            let (now, rest) = payload.split_at(take);
            let write_ok = if config.split_writes {
                write_split(&mut to, now, &mut slice_rng)
            } else {
                to.write_all(now).is_ok()
            };
            if !write_ok {
                dead = true;
                break;
            }
            remaining -= take;
            payload = rest;
            if remaining == 0 && kill_after {
                dead = true;
                break;
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Writes `payload` in random 1–7 byte slices, flushing each.
fn write_split(to: &mut TcpStream, payload: &[u8], rng: &mut u64) -> bool {
    let mut offset = 0;
    while offset < payload.len() {
        let len = 1 + (splitmix64(rng) % 7) as usize;
        let end = (offset + len).min(payload.len());
        if to.write_all(&payload[offset..end]).is_err() || to.flush().is_err() {
            return false;
        }
        offset = end;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial upstream echo-line server for proxy tests.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Serve a bounded number of connections then exit.
            for stream in listener.incoming().take(8) {
                let Ok(stream) = stream else { continue };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                        if writer.write_all(line.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn proxy_forwards_lines_with_split_writes() {
        let (upstream, _handle) = echo_server();
        let proxy = ChaosProxy::bind(upstream, ChaosConfig::default()).unwrap();
        let stream = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for i in 0..20 {
            let msg = format!("hello-{i}-{}\n", "x".repeat(i * 3));
            writer.write_all(msg.as_bytes()).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line, msg);
        }
        assert!(proxy.stats().splits.load(Ordering::Relaxed) > 0);
        assert_eq!(proxy.stats().disconnects.load(Ordering::Relaxed), 0);
        proxy.shutdown();
    }

    #[test]
    fn refusal_probability_one_drops_every_connection() {
        let (upstream, _handle) = echo_server();
        let config = ChaosConfig {
            refuse_per_conn: 1.0,
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::bind(upstream, config).unwrap();
        for _ in 0..3 {
            let stream = TcpStream::connect(proxy.local_addr()).unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            let n = reader.read_line(&mut line).unwrap_or(0);
            assert_eq!(n, 0, "refused connection still delivered: {line}");
        }
        assert_eq!(proxy.stats().refused.load(Ordering::Relaxed), 3);
        proxy.shutdown();
    }

    #[test]
    fn blackout_severs_and_refuses_then_recovers() {
        let (upstream, _handle) = echo_server();
        let proxy = ChaosProxy::bind(upstream, ChaosConfig::default()).unwrap();
        let stream = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"ping\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ping\n");
        proxy.set_blackout(true);
        // The live connection is severed...
        line.clear();
        let n = reader.read_line(&mut line).unwrap_or(0);
        assert_eq!(n, 0, "blackout did not sever: {line}");
        // ...and new connections die immediately.
        let stream = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut reader2 = BufReader::new(stream);
        let mut line2 = String::new();
        assert_eq!(reader2.read_line(&mut line2).unwrap_or(0), 0);
        // Clearing the blackout restores service for fresh connections.
        proxy.set_blackout(false);
        let stream = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut reader3 = BufReader::new(stream.try_clone().unwrap());
        let mut writer3 = stream;
        writer3.write_all(b"pong\n").unwrap();
        let mut line3 = String::new();
        reader3.read_line(&mut line3).unwrap();
        assert_eq!(line3, "pong\n");
        proxy.shutdown();
    }

    #[test]
    fn disconnect_probability_one_kills_the_first_exchange() {
        let (upstream, _handle) = echo_server();
        let config = ChaosConfig {
            disconnect_per_chunk: 1.0,
            split_writes: false,
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::bind(upstream, config).unwrap();
        let stream = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // The write may survive (truncation point can be the full chunk),
        // but the connection must die afterwards.
        let _ = writer.write_all(b"doomed\n");
        let mut line = String::new();
        // Either we get EOF directly, or a possibly-truncated echo then
        // EOF; in all cases the connection ends.
        let _first = reader.read_line(&mut line);
        line.clear();
        let n = reader.read_line(&mut line).unwrap_or(0);
        assert_eq!(n, 0, "connection survived an injected disconnect");
        assert!(proxy.stats().disconnects.load(Ordering::Relaxed) >= 1);
        proxy.shutdown();
    }

    #[test]
    fn scripted_chunk_schedule_is_deterministic_and_bounded() {
        let schedule = |seed: u64| -> Vec<usize> {
            let mut rng = seed;
            (0..64).map(|_| scripted_chunk_len(&mut rng)).collect()
        };
        let a = schedule(0xC4A0_0001);
        assert_eq!(a, schedule(0xC4A0_0001));
        assert_ne!(a, schedule(0xC4A0_0002));
        assert!(a
            .iter()
            .all(|&len| (1..=MAX_SCRIPT_CHUNK as usize).contains(&len)));
        // The schedule actually varies — it is not a constant chunk size.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn scripted_chunks_preserve_large_payloads() {
        // A payload spanning many scripted chunks must arrive intact.
        let (upstream, _handle) = echo_server();
        let proxy = ChaosProxy::bind(upstream, ChaosConfig::default()).unwrap();
        let stream = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let msg = format!("{}\n", "payload".repeat(1200));
        writer.write_all(msg.as_bytes()).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, msg);
        assert!(proxy.stats().splits.load(Ordering::Relaxed) > 1);
        proxy.shutdown();
    }

    #[test]
    fn virtual_clock_stalls_do_not_sleep() {
        // Every chunk stalls for 10 virtual seconds — under the real
        // clock this exchange would take minutes; under the virtual
        // clock it must finish promptly while the stall schedule is
        // still drawn, counted, and bookkept in virtual nanoseconds.
        let (upstream, _handle) = echo_server();
        let clock = ChaosClock::virtual_clock();
        let config = ChaosConfig {
            stall_per_chunk: 1.0,
            stall: Duration::from_secs(10),
            clock: clock.clone(),
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::bind(upstream, config).unwrap();
        let started = std::time::Instant::now();
        let stream = TcpStream::connect(proxy.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for i in 0..5 {
            let msg = format!("virtual-{i}\n");
            writer.write_all(msg.as_bytes()).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line, msg);
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "virtual stalls must not consume wall time: {:?}",
            started.elapsed()
        );
        let stalls = proxy.stats().stalls.load(Ordering::Relaxed);
        assert!(stalls >= 1, "no stalls injected");
        let virtual_ns = clock.virtual_ns().unwrap();
        assert!(
            virtual_ns >= stalls * 10_000_000_000,
            "virtual clock under-counted: {virtual_ns} ns for {stalls} stalls"
        );
        assert_eq!(
            proxy.stats().stalled_ns.load(Ordering::Relaxed),
            stalls * 10_000_000_000
        );
        proxy.shutdown();
    }

    #[test]
    fn real_clock_reports_no_virtual_time() {
        assert_eq!(ChaosClock::Real.virtual_ns(), None);
        let v = ChaosClock::virtual_clock();
        assert_eq!(v.virtual_ns(), Some(0));
        assert_eq!(v, v.clone(), "a virtual clock equals its own handle");
        assert_ne!(v, ChaosClock::virtual_clock(), "distinct counters differ");
        assert_eq!(ChaosClock::Real, ChaosClock::Real);
    }

    #[test]
    fn fault_decisions_are_deterministic_per_seed() {
        // Two proxies with the same seed must refuse the same connection
        // indices when refuse_per_conn is between 0 and 1.
        let decisions = |seed: u64| -> Vec<bool> {
            (0..32u64)
                .map(|index| {
                    let mut rng = seed ^ index;
                    let _ = splitmix64(&mut rng);
                    unit_float(&mut rng) < 0.3
                })
                .collect()
        };
        assert_eq!(decisions(99), decisions(99));
        assert_ne!(decisions(99), decisions(100));
    }
}
