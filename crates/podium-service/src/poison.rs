//! Explicit lock-poison policy for the serving layer.
//!
//! `std` mutexes poison when a holder panics, and every subsequent
//! `.lock().unwrap()` then propagates that panic — one crashed worker
//! takes the whole service down thread by thread. Podium's locks all
//! guard state whose invariants are re-established on every operation,
//! so the service-wide policy is *recover and continue*:
//!
//! * **Queues and registries** (executor job queue, session table,
//!   connection sets): entries are self-contained; a panic mid-push at
//!   worst loses the panicking request's own entry.
//! * **Caches** (snapshot select cache): contents are advisory; a
//!   half-written entry is at worst a wasted recomputation.
//! * **Epoch counters and connection stats**: plain scalar updates.
//!
//! The one exception is the [`RepositoryWriter`] mutex: a panic inside
//! `apply` can leave the incremental grouping state half-updated, and
//! silently publishing from it would serve wrong groups forever. That
//! path uses [`checked`], which maps poisoning to
//! [`ServiceError::ShuttingDown`] so writes fail loudly while the
//! (immutable, last-published) snapshots keep serving reads.
//!
//! Call sites go through [`recover`] / [`checked`] rather than inlining
//! `unwrap_or_else(|e| e.into_inner())` so the policy has one home, one
//! justification, and one place to change — and so `podium-lint`'s
//! `lock-poison` rule can flag any bare `.lock().unwrap()` that
//! bypasses it.
//!
//! [`RepositoryWriter`]: crate::snapshot::RepositoryWriter

use std::sync::{LockResult, PoisonError};

use crate::error::ServiceError;

/// Recovers the guard from a possibly-poisoned lock acquisition.
///
/// Use for locks whose protected state stays valid across a holder's
/// panic (see the module docs for the per-lock inventory).
pub fn recover<T>(result: LockResult<T>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Converts a poisoned acquisition into a typed
/// [`ServiceError::ShuttingDown`] instead of recovering.
///
/// Use for locks where a holder's panic may leave the protected state
/// inconsistent and continuing would corrupt published data.
pub fn checked<T>(result: LockResult<T>) -> Result<T, ServiceError> {
    result.map_err(|_| ServiceError::ShuttingDown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn poisoned(value: i32) -> Arc<Mutex<i32>> {
        let m = Arc::new(Mutex::new(value));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(m.is_poisoned());
        m
    }

    #[test]
    fn recover_returns_the_guard_after_poison() {
        let m = poisoned(7);
        assert_eq!(*recover(m.lock()), 7);
    }

    #[test]
    fn checked_maps_poison_to_shutting_down() {
        let m = poisoned(7);
        let outcome = checked(m.lock());
        match outcome {
            Err(ServiceError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        };
    }

    #[test]
    fn both_are_transparent_on_healthy_locks() {
        let m = Mutex::new(3);
        assert_eq!(*recover(m.lock()), 3);
        let guard = checked(m.lock()).unwrap();
        assert_eq!(*guard, 3);
    }
}
