//! Customization sessions: the paper's §6 refine-and-reselect loop as a
//! server-side object.
//!
//! A session pins the snapshot that was current when it was opened and
//! accumulates feedback — `G+` (must have), `G-` (must not), `Gd`
//! (priority coverage), `Gd?` (standard coverage) — across any number of
//! `refine` requests. Every refinement re-runs CUSTOM-DIVERSITY against
//! the *pinned* epoch, so group ids stay stable for the whole
//! conversation and a concurrent writer can keep publishing without
//! invalidating the client's mental model. Closing the session (or
//! dropping the manager) releases the pinned snapshot.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use podium_core::customize::{custom_select_weighted, CustomSelection, Feedback};
use podium_core::ids::GroupId;
use podium_core::weights::{CovScheme, WeightScheme};

use crate::error::ServiceError;
use crate::poison;
use crate::snapshot::{Snapshot, SnapshotStore};

/// A feedback delta carried by one `refine` request; merged into the
/// session's accumulated state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeedbackDelta {
    /// Group ids to add to `G+`.
    pub must_have: Vec<u32>,
    /// Group ids to add to `G-`.
    pub must_not: Vec<u32>,
    /// Group ids to add to `Gd`.
    pub priority: Vec<u32>,
    /// Group ids to set as the explicit `Gd?`; `None` leaves the current
    /// choice (default: every non-priority group).
    pub standard: Option<Vec<u32>>,
    /// When true, clears all accumulated feedback before merging.
    pub reset: bool,
}

/// One pinned-epoch customization session.
#[derive(Debug)]
pub struct Session {
    snapshot: Arc<Snapshot>,
    feedback: Feedback,
}

impl Session {
    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snapshot
    }

    /// The accumulated feedback.
    pub fn feedback(&self) -> &Feedback {
        &self.feedback
    }

    fn check_group(&self, raw: u32) -> Result<GroupId, ServiceError> {
        let g = GroupId(raw);
        if (raw as usize) < self.snapshot.groups().len() {
            Ok(g)
        } else {
            Err(ServiceError::BadRequest(format!(
                "group {raw} out of range for epoch {} ({} groups)",
                self.snapshot.epoch(),
                self.snapshot.groups().len()
            )))
        }
    }

    fn merge(&mut self, delta: &FeedbackDelta) -> Result<(), ServiceError> {
        if delta.reset {
            self.feedback = Feedback::default();
        }
        let mut merged = self.feedback.clone();
        for &g in &delta.must_have {
            merged.must_have.push(self.check_group(g)?);
        }
        for &g in &delta.must_not {
            merged.must_not.push(self.check_group(g)?);
        }
        for &g in &delta.priority {
            merged.priority.push(self.check_group(g)?);
        }
        if let Some(std_set) = &delta.standard {
            let mut resolved = Vec::with_capacity(std_set.len());
            for &g in std_set {
                resolved.push(self.check_group(g)?);
            }
            merged.standard = Some(resolved);
        }
        for list in [
            &mut merged.must_have,
            &mut merged.must_not,
            &mut merged.priority,
        ] {
            list.sort();
            list.dedup();
        }
        // Contradictions (a group both required and forbidden) fail the
        // merge atomically: the session keeps its previous feedback.
        merged.validate().map_err(ServiceError::Core)?;
        self.feedback = merged;
        Ok(())
    }

    /// Merges `delta` and re-runs CUSTOM-DIVERSITY on the pinned snapshot.
    pub fn refine(
        &mut self,
        delta: &FeedbackDelta,
        weight: WeightScheme,
        cov: CovScheme,
        budget: usize,
    ) -> Result<CustomSelection, ServiceError> {
        self.merge(delta)?;
        let groups = self.snapshot.groups();
        let base = weight.weights(groups);
        let covs = cov.cov(groups, budget);
        let (selection, pool_size, feedback_group_coverage) =
            custom_select_weighted(groups, &base, &covs, budget, &self.feedback)
                .map_err(ServiceError::Core)?;
        Ok(CustomSelection {
            selection,
            pool_size,
            feedback_group_coverage,
        })
    }
}

/// Owner of all live sessions.
#[derive(Debug, Default)]
pub struct SessionManager {
    inner: Mutex<SessionTable>,
}

#[derive(Debug, Default)]
struct SessionTable {
    next_id: u64,
    sessions: HashMap<u64, Session>,
}

impl SessionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a session pinned to the store's current snapshot; returns
    /// `(session id, pinned epoch)`.
    pub fn open(&self, store: &SnapshotStore) -> (u64, u64) {
        let snapshot = store.load();
        let epoch = snapshot.epoch();
        let mut table = poison::recover(self.inner.lock());
        let id = table.next_id;
        table.next_id += 1;
        table.sessions.insert(
            id,
            Session {
                snapshot,
                feedback: Feedback::default(),
            },
        );
        (id, epoch)
    }

    /// Closes a session, releasing its pinned snapshot.
    pub fn close(&self, id: u64) -> Result<(), ServiceError> {
        let mut table = poison::recover(self.inner.lock());
        table
            .sessions
            .remove(&id)
            .map(|_| ())
            .ok_or(ServiceError::UnknownSession(id))
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        poison::recover(self.inner.lock()).sessions.len()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` against the session, holding the table lock for the
    /// duration (refinements are interactive-rate, not the serving hot
    /// path).
    pub fn with_session<T>(
        &self,
        id: u64,
        f: impl FnOnce(&mut Session) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        let mut table = poison::recover(self.inner.lock());
        let session = table
            .sessions
            .get_mut(&id)
            .ok_or(ServiceError::UnknownSession(id))?;
        f(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{ProfileUpdate, RepositoryWriter};
    use podium_core::bucket::BucketingConfig;
    use podium_core::profile::UserRepository;

    fn store_and_writer() -> (Arc<SnapshotStore>, RepositoryWriter) {
        let mut repo = UserRepository::new();
        let mex = repo.intern_property("avgRating Mexican");
        let thai = repo.intern_property("avgRating Thai");
        for i in 0..12 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, mex, (i as f64) / 12.0).unwrap();
            if i % 3 == 0 {
                repo.set_score(u, thai, 0.9).unwrap();
            }
        }
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        RepositoryWriter::new(repo, &buckets)
    }

    #[test]
    fn sessions_pin_their_opening_epoch() {
        let (store, mut w) = store_and_writer();
        let mgr = SessionManager::new();
        let (id, epoch) = mgr.open(&store);
        assert_eq!(epoch, 0);
        w.apply(&ProfileUpdate {
            user: "u1".into(),
            property: "avgRating Mexican".into(),
            score: Some(0.99),
        })
        .unwrap();
        w.publish();
        assert_eq!(store.epoch(), 1);
        mgr.with_session(id, |s| {
            assert_eq!(s.snapshot().epoch(), 0, "session still sees epoch 0");
            Ok(())
        })
        .unwrap();
        mgr.close(id).unwrap();
        assert!(mgr.is_empty());
        assert!(matches!(
            mgr.close(id),
            Err(ServiceError::UnknownSession(_))
        ));
    }

    #[test]
    fn feedback_accumulates_across_refinements() {
        let (store, _w) = store_and_writer();
        let mgr = SessionManager::new();
        let (id, _) = mgr.open(&store);
        let weight = WeightScheme::LinearBySize;
        let cov = CovScheme::Single;
        // Round 1: forbid group 0.
        mgr.with_session(id, |s| {
            let delta = FeedbackDelta {
                must_not: vec![0],
                ..FeedbackDelta::default()
            };
            let sel = s.refine(&delta, weight, cov, 3)?;
            let g0 = s.snapshot().groups().group(GroupId(0)).unwrap();
            for u in sel.users() {
                assert!(!g0.members.contains(u), "must_not violated");
            }
            Ok(())
        })
        .unwrap();
        // Round 2: prioritize group 1; the earlier must_not persists.
        mgr.with_session(id, |s| {
            let delta = FeedbackDelta {
                priority: vec![1],
                ..FeedbackDelta::default()
            };
            let _ = s.refine(&delta, weight, cov, 3)?;
            assert_eq!(s.feedback().must_not, vec![GroupId(0)]);
            assert_eq!(s.feedback().priority, vec![GroupId(1)]);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn contradictory_delta_fails_atomically() {
        let (store, _w) = store_and_writer();
        let mgr = SessionManager::new();
        let (id, _) = mgr.open(&store);
        mgr.with_session(id, |s| {
            let delta = FeedbackDelta {
                must_have: vec![2],
                ..FeedbackDelta::default()
            };
            s.refine(&delta, WeightScheme::LinearBySize, CovScheme::Single, 3)
                .map(|_| ())
        })
        .unwrap();
        let err = mgr
            .with_session(id, |s| {
                let delta = FeedbackDelta {
                    must_not: vec![2],
                    ..FeedbackDelta::default()
                };
                s.refine(&delta, WeightScheme::LinearBySize, CovScheme::Single, 3)
                    .map(|_| ())
            })
            .unwrap_err();
        assert_eq!(err.code(), "core");
        // The failed merge left the previous feedback intact.
        mgr.with_session(id, |s| {
            assert_eq!(s.feedback().must_have, vec![GroupId(2)]);
            assert!(s.feedback().must_not.is_empty());
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn out_of_range_group_rejected() {
        let (store, _w) = store_and_writer();
        let mgr = SessionManager::new();
        let (id, _) = mgr.open(&store);
        let err = mgr
            .with_session(id, |s| {
                let delta = FeedbackDelta {
                    priority: vec![9999],
                    ..FeedbackDelta::default()
                };
                s.refine(&delta, WeightScheme::LinearBySize, CovScheme::Single, 3)
                    .map(|_| ())
            })
            .unwrap_err();
        assert_eq!(err.code(), "bad_request");
    }

    #[test]
    fn reset_clears_accumulated_feedback() {
        let (store, _w) = store_and_writer();
        let mgr = SessionManager::new();
        let (id, _) = mgr.open(&store);
        mgr.with_session(id, |s| {
            s.refine(
                &FeedbackDelta {
                    must_not: vec![0],
                    ..FeedbackDelta::default()
                },
                WeightScheme::LinearBySize,
                CovScheme::Single,
                3,
            )
            .map(|_| ())
        })
        .unwrap();
        mgr.with_session(id, |s| {
            s.refine(
                &FeedbackDelta {
                    reset: true,
                    ..FeedbackDelta::default()
                },
                WeightScheme::LinearBySize,
                CovScheme::Single,
                3,
            )
            .map(|_| ())
        })
        .unwrap();
        mgr.with_session(id, |s| {
            assert_eq!(s.feedback(), &Feedback::default());
            Ok(())
        })
        .unwrap();
    }
}
