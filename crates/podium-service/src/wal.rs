//! Write-ahead log for durable epochs.
//!
//! Every accepted `update-profile` batch is appended to `wal.log` as one
//! **frame** before it becomes visible to readers:
//!
//! ```text
//! [u32 payload_len LE][u64 checksum LE][payload bytes]
//! ```
//!
//! The payload is one line-JSON object mirroring the wire protocol's
//! vocabulary:
//!
//! ```text
//! {"seq":N,"epoch":E,"updates":[{"user":"u","property":"p","score":0.5}]}
//! ```
//!
//! `seq` increases by exactly one per frame across the log's lifetime
//! (checkpoints record the last `seq` they contain, so recovery replays
//! only the suffix). `epoch` is the epoch the batch was published at —
//! `0` means *unassigned*: the batch was accepted under the batched
//! publish policy and recovery assigns the next epoch itself. A `null`
//! score is a retraction, exactly as on the wire.
//!
//! The checksum is a splitmix64-folded CRC: the payload length seeds a
//! splitmix64 state, each little-endian 8-byte chunk (zero-padded tail)
//! is XOR-folded in, and the generator is stepped between chunks. It is
//! not cryptographic; it exists to detect torn writes and bit rot, and a
//! single flipped bit anywhere in the frame changes it.
//!
//! [`scan_frames`] walks a byte buffer frame by frame and stops at the
//! first length, checksum, or payload violation — everything before the
//! stop point is the **valid prefix**, everything after is the torn tail
//! recovery quarantines and truncates. The scanner never panics on any
//! input (see `tests/wal_robustness.rs`).
//!
//! Durability is governed by [`FsyncPolicy`]: `always` fsyncs after every
//! frame (acknowledged updates survive `SIGKILL`), `batch` fsyncs every
//! [`BATCH_SYNC_EVERY`] frames and before each checkpoint (a crash may
//! lose the most recent window), `off` leaves flushing to the OS.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use serde_json::Value;

use crate::error::ServiceError;
use crate::protocol::{num_u64, string};
use crate::snapshot::ProfileUpdate;

/// The log file name inside a `--data-dir`.
pub const WAL_FILE: &str = "wal.log";

/// Where recovery appends torn tails it truncated off [`WAL_FILE`].
pub const QUARANTINE_FILE: &str = "wal.quarantine";

/// Frames between fsyncs under [`FsyncPolicy::Batch`].
pub const BATCH_SYNC_EVERY: u64 = 32;

/// Upper bound on a single frame's payload; a declared length beyond this
/// is treated as corruption instead of an allocation request.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Bytes of frame header (length + checksum) preceding each payload.
pub const FRAME_HEADER_BYTES: usize = 12;

/// When appended frames are fsynced to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Fsync after every frame: an acknowledged update is durable.
    #[default]
    Always,
    /// Fsync every [`BATCH_SYNC_EVERY`] frames and before checkpoints: a
    /// crash can lose at most the last unsynced window.
    Batch,
    /// Never fsync explicitly; the OS flushes when it pleases.
    Off,
}

impl FsyncPolicy {
    /// Stable lower-case name (`always` / `batch` / `off`).
    pub fn as_str(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Off => "off",
        }
    }

    /// Parses the stable name back; `None` for anything else.
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::Batch),
            "off" => Some(FsyncPolicy::Off),
            _ => None,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The splitmix64-folded CRC of a frame payload (see module docs).
pub fn frame_checksum(payload: &[u8]) -> u64 {
    let mut state = 0x05EE_DF4A_3D00_B1E5_u64 ^ u64::try_from(payload.len()).unwrap_or(u64::MAX);
    let mut folded = splitmix64(&mut state);
    for chunk in payload.chunks(8) {
        let mut word = [0u8; 8];
        if let Some(slot) = word.get_mut(..chunk.len()) {
            slot.copy_from_slice(chunk);
        }
        folded ^= u64::from_le_bytes(word);
        folded ^= splitmix64(&mut state);
        state ^= folded;
    }
    folded
}

/// One durable update batch: what the WAL stores and recovery replays.
#[derive(Debug, Clone, PartialEq)]
pub struct WalFrame {
    /// Log-lifetime sequence number, contiguous from 1.
    pub seq: u64,
    /// Epoch the batch was published at; `0` = unassigned (batched
    /// policy), recovery numbers it when it republishes.
    pub epoch: u64,
    /// The accepted updates, in application order.
    pub updates: Vec<ProfileUpdate>,
}

impl WalFrame {
    /// Serializes the frame payload as one line-JSON object.
    pub fn encode_payload(&self) -> String {
        let updates: Vec<Value> = self
            .updates
            .iter()
            .map(|u| {
                Value::Object(vec![
                    ("user".to_owned(), string(u.user.clone())),
                    ("property".to_owned(), string(u.property.clone())),
                    (
                        "score".to_owned(),
                        match u.score {
                            Some(s) => Value::Number(serde_json::Number::Float(s)),
                            None => Value::Null,
                        },
                    ),
                ])
            })
            .collect();
        let object = Value::Object(vec![
            ("seq".to_owned(), num_u64(self.seq)),
            ("epoch".to_owned(), num_u64(self.epoch)),
            ("updates".to_owned(), Value::Array(updates)),
        ]);
        // podium-lint: allow(expect) — Value trees of strings/numbers always serialize
        serde_json::to_string(&object).expect("frame payload serialization is infallible")
    }

    /// Parses a frame payload; any structural violation is an error
    /// message (never a panic) so the scanner can classify torn tails.
    pub fn decode_payload(payload: &[u8]) -> Result<WalFrame, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("payload not utf-8: {e}"))?;
        let value: Value =
            serde_json::from_str(text).map_err(|e| format!("payload not json: {e}"))?;
        let seq = value
            .get("seq")
            .and_then(Value::as_u64)
            .ok_or("payload missing 'seq'")?;
        let epoch = value
            .get("epoch")
            .and_then(Value::as_u64)
            .ok_or("payload missing 'epoch'")?;
        let raw_updates = value
            .get("updates")
            .and_then(Value::as_array)
            .ok_or("payload missing 'updates'")?;
        let mut updates = Vec::with_capacity(raw_updates.len());
        for entry in raw_updates {
            let user = entry
                .get("user")
                .and_then(Value::as_str)
                .ok_or("update missing 'user'")?;
            let property = entry
                .get("property")
                .and_then(Value::as_str)
                .ok_or("update missing 'property'")?;
            let score = match entry.get("score") {
                Some(Value::Null) => None,
                Some(v) => Some(v.as_f64().ok_or("update score not a number")?),
                None => return Err("update missing 'score'".to_owned()),
            };
            updates.push(ProfileUpdate {
                user: user.to_owned(),
                property: property.to_owned(),
                score,
            });
        }
        Ok(WalFrame {
            seq,
            epoch,
            updates,
        })
    }

    /// Encodes the full on-disk frame: header + payload.
    pub fn encode(&self) -> Result<Vec<u8>, ServiceError> {
        let payload = self.encode_payload();
        let payload = payload.as_bytes();
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|_| payload.len() <= MAX_FRAME_BYTES)
            .ok_or_else(|| {
                ServiceError::Durability(format!(
                    "frame payload too large: {} bytes",
                    payload.len()
                ))
            })?;
        let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&frame_checksum(payload).to_le_bytes());
        out.extend_from_slice(payload);
        Ok(out)
    }
}

/// What [`scan_frames`] found in a WAL byte buffer.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Frames of the valid prefix, in log order.
    pub frames: Vec<WalFrame>,
    /// `frame_ends[i]` is the byte offset just past frame `i` — recovery
    /// uses it to truncate at a *semantic* violation (a frame that is
    /// bytewise intact but cannot be replayed).
    pub frame_ends: Vec<usize>,
    /// Byte length of the valid prefix; everything past it is torn.
    pub valid_len: usize,
    /// Why scanning stopped early, when it did — the quarantine reason.
    pub torn: Option<String>,
}

/// Walks `bytes` frame by frame, stopping at the first violation: a
/// truncated header, an implausible length, a checksum mismatch, an
/// unparseable payload, or a non-contiguous sequence number. The first
/// frame fixes the starting sequence (a log rotated after a checkpoint
/// starts past 1, see `recovery`); zero is never a valid sequence. Total
/// on arbitrary input; never panics.
pub fn scan_frames(bytes: &[u8]) -> WalScan {
    let mut scan = WalScan::default();
    let mut offset = 0usize;
    let mut expected_seq: Option<u64> = None;
    while let Some(remaining) = bytes.get(offset..) {
        if remaining.is_empty() {
            break;
        }
        let Some(header) = remaining.get(..FRAME_HEADER_BYTES) else {
            scan.torn = Some(format!(
                "truncated frame header ({} of {FRAME_HEADER_BYTES} bytes)",
                remaining.len()
            ));
            break;
        };
        let mut len_bytes = [0u8; 4];
        let mut crc_bytes = [0u8; 8];
        if let Some(s) = header.get(..4) {
            len_bytes.copy_from_slice(s);
        }
        if let Some(s) = header.get(4..FRAME_HEADER_BYTES) {
            crc_bytes.copy_from_slice(s);
        }
        let declared = usize::try_from(u32::from_le_bytes(len_bytes)).unwrap_or(usize::MAX);
        if declared > MAX_FRAME_BYTES {
            scan.torn = Some(format!("implausible frame length {declared}"));
            break;
        }
        let Some(payload) = remaining.get(FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + declared) else {
            scan.torn = Some(format!(
                "truncated frame payload ({} of {declared} bytes)",
                remaining.len().saturating_sub(FRAME_HEADER_BYTES)
            ));
            break;
        };
        let expected_crc = u64::from_le_bytes(crc_bytes);
        let actual_crc = frame_checksum(payload);
        if expected_crc != actual_crc {
            scan.torn = Some(format!(
                "checksum mismatch (stored {expected_crc:#x}, computed {actual_crc:#x})"
            ));
            break;
        }
        let frame = match WalFrame::decode_payload(payload) {
            Ok(f) => f,
            Err(reason) => {
                scan.torn = Some(reason);
                break;
            }
        };
        let expected = expected_seq.unwrap_or(frame.seq.max(1));
        if frame.seq != expected {
            scan.torn = Some(format!(
                "sequence gap (expected {expected}, found {})",
                frame.seq
            ));
            break;
        }
        expected_seq = Some(expected.saturating_add(1));
        offset += FRAME_HEADER_BYTES + declared;
        scan.valid_len = offset;
        scan.frame_ends.push(offset);
        scan.frames.push(frame);
    }
    scan
}

/// Append-side handle on `wal.log`. Single-writer by construction — the
/// service guards it with the same discipline as the repository writer.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    bytes_written: u64,
    frames_since_sync: u64,
    next_seq: u64,
}

impl WalWriter {
    /// Opens (creating if absent) the log at `dir/wal.log` for appending.
    /// `next_seq` and `existing_bytes` come from recovery's scan of the
    /// valid prefix; a fresh log starts at `(1, 0)`.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        next_seq: u64,
        existing_bytes: u64,
    ) -> Result<Self, ServiceError> {
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| ServiceError::Durability(format!("open {}: {e}", path.display())))?;
        Ok(Self {
            file,
            path,
            policy,
            bytes_written: existing_bytes,
            frames_since_sync: 0,
            next_seq: next_seq.max(1),
        })
    }

    /// The sequence number the next appended frame will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Total valid bytes in the log (recovered prefix + appends).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Appends one update batch as the next frame and applies the fsync
    /// policy. Returns the frame's assigned sequence number.
    pub fn append(&mut self, epoch: u64, updates: Vec<ProfileUpdate>) -> Result<u64, ServiceError> {
        let frame = WalFrame {
            seq: self.next_seq,
            epoch,
            updates,
        };
        let encoded = frame.encode()?;
        self.file.write_all(&encoded).map_err(|e| {
            ServiceError::Durability(format!("append {}: {e}", self.path.display()))
        })?;
        self.next_seq = self.next_seq.saturating_add(1);
        self.bytes_written = self
            .bytes_written
            .saturating_add(u64::try_from(encoded.len()).unwrap_or(u64::MAX));
        self.frames_since_sync += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Batch if self.frames_since_sync >= BATCH_SYNC_EVERY => self.sync()?,
            FsyncPolicy::Batch | FsyncPolicy::Off => {}
        }
        Ok(frame.seq)
    }

    /// Forces the log to stable storage, regardless of policy.
    pub fn sync(&mut self) -> Result<(), ServiceError> {
        self.file
            .sync_data()
            .map_err(|e| ServiceError::Durability(format!("fsync {}: {e}", self.path.display())))?;
        self.frames_since_sync = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame(seq: u64) -> WalFrame {
        WalFrame {
            seq,
            epoch: seq,
            updates: vec![
                ProfileUpdate {
                    user: format!("user-{seq}"),
                    property: "topic-0".to_owned(),
                    score: Some(0.25),
                },
                ProfileUpdate {
                    user: "user-x".to_owned(),
                    property: "topic-1".to_owned(),
                    score: None,
                },
            ],
        }
    }

    #[test]
    fn payload_round_trips_including_retractions() {
        let frame = sample_frame(3);
        let payload = frame.encode_payload();
        let back = WalFrame::decode_payload(payload.as_bytes()).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn checksum_detects_any_single_bit_flip() {
        let frame = sample_frame(1);
        let payload = frame.encode_payload().into_bytes();
        let clean = frame_checksum(&payload);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut mutated = payload.clone();
                mutated[byte] ^= 1 << bit;
                assert_ne!(
                    frame_checksum(&mutated),
                    clean,
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn scan_accepts_a_clean_log_and_stops_at_garbage() {
        let mut log = Vec::new();
        for seq in 1..=4 {
            log.extend_from_slice(&sample_frame(seq).encode().unwrap());
        }
        let clean_len = log.len();
        log.extend_from_slice(b"torn tail garbage");
        let scan = scan_frames(&log);
        assert_eq!(scan.frames.len(), 4);
        assert_eq!(scan.valid_len, clean_len);
        assert!(scan.torn.is_some(), "garbage tail must be reported");
    }

    #[test]
    fn scan_rejects_sequence_gaps() {
        let mut log = Vec::new();
        log.extend_from_slice(&sample_frame(1).encode().unwrap());
        log.extend_from_slice(&sample_frame(3).encode().unwrap());
        let scan = scan_frames(&log);
        assert_eq!(scan.frames.len(), 1, "the gap frame is torn");
        assert!(scan.torn.unwrap().contains("sequence gap"));
    }

    #[test]
    fn scan_of_truncations_never_panics_and_keeps_the_prefix() {
        let mut log = Vec::new();
        for seq in 1..=3 {
            log.extend_from_slice(&sample_frame(seq).encode().unwrap());
        }
        let full = scan_frames(&log);
        assert_eq!(full.frames.len(), 3);
        assert!(full.torn.is_none());
        for cut in 0..log.len() {
            let scan = scan_frames(&log[..cut]);
            assert!(scan.frames.len() <= 3);
            assert!(scan.valid_len <= cut);
            // The valid prefix is exactly the whole frames that fit.
            let rescan = scan_frames(&log[..scan.valid_len]);
            assert_eq!(rescan.frames.len(), scan.frames.len());
            assert!(rescan.torn.is_none());
        }
    }

    #[test]
    fn writer_appends_and_scan_reads_back() {
        let dir = std::env::temp_dir().join(format!("podium-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut writer = WalWriter::open(&dir, FsyncPolicy::Always, 1, 0).unwrap();
        for i in 0..3u64 {
            let seq = writer
                .append(
                    i + 1,
                    vec![ProfileUpdate {
                        user: format!("u{i}"),
                        property: "p".to_owned(),
                        score: Some(0.5),
                    }],
                )
                .unwrap();
            assert_eq!(seq, i + 1);
        }
        assert_eq!(writer.next_seq(), 4);
        let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        assert_eq!(writer.bytes_written(), bytes.len() as u64);
        let scan = scan_frames(&bytes);
        assert_eq!(scan.frames.len(), 3);
        assert!(scan.torn.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_tags_round_trip() {
        for policy in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Off] {
            assert_eq!(FsyncPolicy::from_tag(policy.as_str()), Some(policy));
        }
        assert_eq!(FsyncPolicy::from_tag("sometimes"), None);
    }
}
