//! [`PodiumService`]: the embeddable facade tying the snapshot store,
//! writer, executor, and session layer together behind the JSONL protocol.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use podium_core::bucket::PropertyBuckets;
use podium_core::explain::SelectionReport;
use podium_core::instance::DiversificationInstance;
use podium_core::profile::UserRepository;
use podium_core::weights::{CovScheme, WeightScheme};
use serde_json::Value;

use crate::error::ServiceError;
use crate::executor::{ExecutorConfig, QueryExecutor};
use crate::poison;
use crate::protocol::{
    self, error_response, num_f64, num_u64, ok_response, parse_request, string, string_array,
    Request,
};
use crate::recovery::{self, DurabilityOptions, RecoveryReport};
use crate::session::SessionManager;
use crate::snapshot::{ProfileUpdate, PublishMode, RepositoryWriter, SelectParams, SnapshotStore};
use crate::wal::WalWriter;

/// When each applied update becomes visible to readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PublishPolicy {
    /// Publish a new epoch on every `update-profile` — one epoch per
    /// update, the original (and default) behavior.
    #[default]
    Immediate,
    /// Queue updates and let a background flusher publish the batch as
    /// one epoch every `interval_ms` milliseconds. `update-profile`
    /// responses carry `queued: true` and the last *published* epoch.
    /// After each batched publish the flusher warms the new epoch's memo
    /// cache with the configured warm select.
    Batched {
        /// Flush interval in milliseconds.
        interval_ms: u64,
    },
}

/// Budget of the publish-time cache-warming select (scheme defaults:
/// LBS weights, Single coverage — the serving defaults).
pub const DEFAULT_WARM_BUDGET: usize = 10;

/// Service sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads in the query executor.
    pub workers: usize,
    /// Bounded queue capacity (admission control threshold).
    pub queue_capacity: usize,
    /// Default per-request deadline in milliseconds, for requests that do
    /// not carry a `deadline_ms`.
    pub default_deadline_ms: u64,
    /// How many epochs a session's pinned snapshot may lag the current
    /// epoch before `refine` rejects with `session_retired`. Keeping a
    /// long-abandoned session's snapshot alive pins its whole repository
    /// copy in memory; this bounds that. `u64::MAX` disables retirement.
    pub max_session_lag: u64,
    /// How published epochs are materialized (incremental delta patching
    /// vs full rebuild).
    pub publish_mode: PublishMode,
    /// When applied updates become visible.
    pub publish_policy: PublishPolicy,
    /// Budget of the warming select run after each *batched* publish
    /// (`None` disables warming). Ignored under
    /// [`PublishPolicy::Immediate`], whose publish latency stays
    /// warming-free.
    pub warm_budget: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let exec = ExecutorConfig::default();
        Self {
            workers: exec.workers,
            queue_capacity: exec.queue_capacity,
            default_deadline_ms: exec.default_deadline.as_millis() as u64,
            max_session_lag: 1024,
            publish_mode: PublishMode::default(),
            publish_policy: PublishPolicy::default(),
            warm_budget: Some(DEFAULT_WARM_BUDGET),
        }
    }
}

/// Cumulative (monotone across epochs) memo-cache counters for the
/// `select` path. Per-epoch counters live on each [`Snapshot`]; these
/// accumulate over the service's lifetime so dashboards see totals that
/// never reset when an epoch is published.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    stale_served: AtomicU64,
}

impl CacheCounters {
    /// `(hits, misses)` so far.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Selects served from a carried-forward (stale) memo so far.
    pub fn stale_served(&self) -> u64 {
        self.stale_served.load(Ordering::Relaxed)
    }

    fn record(&self, hit: bool, stale: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        if stale {
            self.stale_served.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The mutable half of the durability subsystem: the WAL appender and the
/// checkpoint cadence. Guarded by one mutex; every holder already holds
/// the writer lock (lock order: writer → durability), so WAL appends are
/// serialized in the same order updates are applied.
#[derive(Debug)]
struct DurabilityState {
    wal: WalWriter,
    dir: PathBuf,
    /// Frames between checkpoints; `0` disables periodic checkpoints.
    checkpoint_every: u64,
    frames_since_checkpoint: u64,
}

/// Shared durability handle: WAL + checkpoints behind a mutex, and the
/// lock-free counters the `stats` op reads.
#[derive(Debug)]
pub struct DurabilityHandle {
    inner: Mutex<DurabilityState>,
    wal_bytes: AtomicU64,
    last_checkpoint_epoch: AtomicU64,
    recovery_replayed: AtomicU64,
    checkpoint_failures: AtomicU64,
    last_checkpoint_error: Mutex<Option<String>>,
}

impl DurabilityHandle {
    /// Valid WAL bytes (recovered prefix + this run's appends).
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes.load(Ordering::Relaxed)
    }

    /// Epoch of the most recent checkpoint (this run's, else the one
    /// recovery loaded).
    pub fn last_checkpoint_epoch(&self) -> u64 {
        self.last_checkpoint_epoch.load(Ordering::Relaxed)
    }

    /// WAL frames recovery replayed at startup.
    pub fn recovery_replayed(&self) -> u64 {
        self.recovery_replayed.load(Ordering::Relaxed)
    }

    /// Checkpoint attempts that failed (serialization or I/O). A value
    /// that keeps growing while `last_checkpoint_epoch` stands still
    /// means the WAL — and with it replay time — is growing unboundedly.
    pub fn checkpoint_failures(&self) -> u64 {
        self.checkpoint_failures.load(Ordering::Relaxed)
    }

    /// The most recent checkpoint failure, for operators chasing a
    /// non-zero [`DurabilityHandle::checkpoint_failures`].
    pub fn last_checkpoint_error(&self) -> Option<String> {
        poison::recover(self.last_checkpoint_error.lock()).clone()
    }

    /// [`DurabilityHandle::maybe_checkpoint`] with failures recorded
    /// instead of propagated: a failed checkpoint costs recovery time,
    /// never durability (the WAL has everything), so the live path keeps
    /// serving and surfaces the stall through the `stats` op.
    fn checkpoint_if_due(&self, writer: &RepositoryWriter) {
        if let Err(e) = self.maybe_checkpoint(writer) {
            self.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
            *poison::recover(self.last_checkpoint_error.lock()) = Some(e.to_string());
        }
    }

    /// Appends one accepted update as a WAL frame and fsyncs per policy.
    /// `epoch` is the epoch the batch will publish at (`0` = unassigned,
    /// batched policy). An error here means the update must NOT be
    /// acknowledged.
    fn log_update(&self, epoch: u64, update: &ProfileUpdate) -> Result<(), ServiceError> {
        let mut state = poison::checked(self.inner.lock())?;
        state.wal.append(epoch, vec![update.clone()])?;
        state.frames_since_checkpoint += 1;
        self.wal_bytes
            .store(state.wal.bytes_written(), Ordering::Relaxed);
        Ok(())
    }

    /// Writes a checkpoint when the cadence says so. The caller holds the
    /// writer lock, so the serialized repository is exactly the state at
    /// the WAL's current sequence. Syncs the WAL first so a checkpoint
    /// never claims coverage of frames that were still in page cache.
    fn maybe_checkpoint(&self, writer: &RepositoryWriter) -> Result<(), ServiceError> {
        let mut state = poison::checked(self.inner.lock())?;
        if state.checkpoint_every == 0 || state.frames_since_checkpoint < state.checkpoint_every {
            return Ok(());
        }
        state.wal.sync()?;
        let profiles = podium_data::json::profiles_to_json(writer.repo())
            .map_err(|e| ServiceError::Durability(format!("serialize checkpoint: {e}")))?;
        let seq = state.wal.next_seq().saturating_sub(1);
        recovery::write_checkpoint(&state.dir, seq, writer.epoch(), &profiles)?;
        state.frames_since_checkpoint = 0;
        self.last_checkpoint_epoch
            .store(writer.epoch(), Ordering::Relaxed);
        Ok(())
    }
}

/// Health of one peer (connection label) as tracked by the server side:
/// consecutive failed responses flip it to `degraded`, one success flips
/// it back. Transitions are stamped with the epoch current at the flip.
#[derive(Debug, Clone, Default)]
pub struct PeerHealth {
    /// `true` after [`PEER_DEGRADE_AFTER`] consecutive failures.
    pub degraded: bool,
    /// Failed responses since the last success.
    pub consecutive_failures: u32,
    /// Epoch at the most recent ok↔degraded transition (0 = never).
    pub last_transition_epoch: u64,
    /// Total requests from this peer.
    pub requests: u64,
    /// Total failed responses to this peer.
    pub errors: u64,
}

/// Consecutive failures before a peer is reported `degraded`.
pub const PEER_DEGRADE_AFTER: u32 = 3;

/// Peers tracked at once; the least-recently-active entry is evicted
/// beyond this.
const PEER_REGISTRY_CAP: usize = 64;

/// Shutdown signal + join handle of the batched-publish flusher thread.
#[derive(Debug)]
struct Flusher {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for Flusher {
    fn drop(&mut self) {
        {
            let (lock, cv) = &*self.stop;
            *poison::recover(lock.lock()) = true;
            cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The serving facade. `Send + Sync`; share it behind an `Arc` between
/// connection handler threads.
#[derive(Debug)]
pub struct PodiumService {
    store: Arc<SnapshotStore>,
    writer: Arc<Mutex<RepositoryWriter>>,
    executor: QueryExecutor,
    sessions: SessionManager,
    max_session_lag: u64,
    publish_policy: PublishPolicy,
    warm_budget: Option<usize>,
    cache_counters: CacheCounters,
    /// WAL + checkpoints; `None` when running volatile (no `--data-dir`).
    durability: Option<Arc<DurabilityHandle>>,
    /// Per-peer health, keyed by the connection label the transport
    /// passes to [`PodiumService::handle_line_from`].
    peers: Mutex<Vec<(String, PeerHealth)>>,
    /// Joined (and thereby stopped) on drop; `None` under
    /// [`PublishPolicy::Immediate`].
    _flusher: Option<Flusher>,
}

/// The select parameters the publish-time warming pass pre-computes.
fn warm_params(budget: usize) -> SelectParams {
    SelectParams {
        budget,
        weight: WeightScheme::LinearBySize,
        cov: CovScheme::Single,
    }
}

impl PodiumService {
    /// Builds the service: epoch-0 snapshot from `repo` under `buckets`,
    /// then the worker pool, and — under [`PublishPolicy::Batched`] — the
    /// background flusher that publishes one epoch per batch and warms
    /// the new epoch's memo cache.
    pub fn new(repo: UserRepository, buckets: &PropertyBuckets, config: ServiceConfig) -> Self {
        let (store, writer) = RepositoryWriter::with_mode(repo, buckets, config.publish_mode);
        Self::assemble(store, writer, config, None)
    }

    /// [`PodiumService::new`] with durability: recovers the data
    /// directory's state (newest valid checkpoint + WAL suffix replay,
    /// torn tails quarantined), opens the WAL for appending, and from
    /// then on logs every accepted `update-profile` before it is
    /// acknowledged. Returns the service and what recovery found.
    ///
    /// `repo` is the genesis repository (the `--profiles` load); it only
    /// matters on the first start or when every checkpoint is rejected,
    /// since the WAL replays the full update history on top of it.
    pub fn with_durability(
        repo: UserRepository,
        buckets: &PropertyBuckets,
        config: ServiceConfig,
        opts: DurabilityOptions,
    ) -> Result<(Self, RecoveryReport), ServiceError> {
        let (store, writer, report) =
            recovery::recover(&opts.data_dir, repo, buckets, config.publish_mode)?;
        let wal = WalWriter::open(
            &opts.data_dir,
            opts.fsync,
            report.next_seq,
            report.wal_bytes,
        )?;
        let handle = Arc::new(DurabilityHandle {
            inner: Mutex::new(DurabilityState {
                wal,
                dir: opts.data_dir,
                checkpoint_every: opts.checkpoint_every,
                frames_since_checkpoint: 0,
            }),
            wal_bytes: AtomicU64::new(report.wal_bytes),
            last_checkpoint_epoch: AtomicU64::new(report.checkpoint_epoch),
            recovery_replayed: AtomicU64::new(report.replayed_frames),
            checkpoint_failures: AtomicU64::new(0),
            last_checkpoint_error: Mutex::new(None),
        });
        Ok((Self::assemble(store, writer, config, Some(handle)), report))
    }

    fn assemble(
        store: Arc<SnapshotStore>,
        writer: RepositoryWriter,
        config: ServiceConfig,
        durability: Option<Arc<DurabilityHandle>>,
    ) -> Self {
        let writer = Arc::new(Mutex::new(writer));
        let executor = QueryExecutor::new(
            Arc::clone(&store),
            ExecutorConfig {
                workers: config.workers,
                queue_capacity: config.queue_capacity,
                default_deadline: Duration::from_millis(config.default_deadline_ms),
            },
        );
        let flusher = match config.publish_policy {
            PublishPolicy::Immediate => None,
            PublishPolicy::Batched { interval_ms } => Some(spawn_flusher(
                Arc::clone(&writer),
                Arc::clone(&store),
                Duration::from_millis(interval_ms.max(1)),
                config.warm_budget,
                durability.clone(),
            )),
        };
        Self {
            store,
            writer,
            executor,
            sessions: SessionManager::new(),
            max_session_lag: config.max_session_lag,
            publish_policy: config.publish_policy,
            warm_budget: config.warm_budget,
            cache_counters: CacheCounters::default(),
            durability,
            peers: Mutex::new(Vec::new()),
            _flusher: flusher,
        }
    }

    /// The durability handle, when the service runs with a data dir.
    pub fn durability(&self) -> Option<&Arc<DurabilityHandle>> {
        self.durability.as_ref()
    }

    /// Publishes any queued updates right now (one epoch for the whole
    /// batch) and runs the warming select, regardless of policy. Returns
    /// the published epoch, or `None` when nothing was pending.
    pub fn flush(&self) -> Result<Option<u64>, ServiceError> {
        let published = {
            let mut writer = poison::checked(self.writer.lock())?;
            let published = writer.publish_if_dirty();
            if published.is_some() {
                if let Some(d) = &self.durability {
                    // Checkpoints are accelerators: a failed one costs
                    // recovery time, never durability (the WAL has it all).
                    d.checkpoint_if_due(&writer);
                }
            }
            published
        };
        if published.is_some() {
            if let Some(budget) = self.warm_budget {
                let _ = self.store.load().select(&warm_params(budget), None);
            }
        }
        Ok(published)
    }

    /// Cumulative memo-cache counters (monotone across epochs).
    pub fn cache_counters(&self) -> &CacheCounters {
        &self.cache_counters
    }

    /// The snapshot store (for embedding callers that read directly).
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// The query executor.
    pub fn executor(&self) -> &QueryExecutor {
        &self.executor
    }

    /// Handles one raw request line, returning the response line (without
    /// trailing newline). Never panics on malformed input — parse and
    /// execution errors map to `{"ok":false,...}` responses.
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_classified(line).0
    }

    /// [`PodiumService::handle_line`] plus a structural success flag, so
    /// peer-health classification never re-parses (or prefix-matches) the
    /// serialized wire string.
    fn handle_line_classified(&self, line: &str) -> (String, bool) {
        match parse_request(line) {
            Ok(req) => match self.handle(req) {
                Ok(response) => (response, true),
                Err(e) => (error_response(&e), false),
            },
            Err(e) => (error_response(&e), false),
        }
    }

    /// [`PodiumService::handle_line`] with a peer label (a remote address
    /// or transport name) for per-peer health tracking: consecutive
    /// failure responses degrade the peer, a success recovers it, and the
    /// `stats` op reports the registry.
    pub fn handle_line_from(&self, peer: &str, line: &str) -> String {
        let (response, ok) = self.handle_line_classified(line);
        self.record_peer(peer, ok);
        response
    }

    /// A snapshot of the per-peer health registry.
    pub fn peer_health(&self) -> Vec<(String, PeerHealth)> {
        poison::recover(self.peers.lock()).clone()
    }

    fn record_peer(&self, peer: &str, success: bool) {
        let epoch = self.store.epoch();
        let mut peers = poison::recover(self.peers.lock());
        // The registry stays ordered least- → most-recently-active, so
        // eviction at cap drops the stalest peer — not a long-lived active
        // one that merely connected first.
        let mut entry = match peers.iter().position(|(name, _)| name == peer) {
            Some(pos) => peers.remove(pos),
            None => {
                if peers.len() >= PEER_REGISTRY_CAP {
                    peers.remove(0);
                }
                (peer.to_owned(), PeerHealth::default())
            }
        };
        let health = &mut entry.1;
        health.requests += 1;
        if success {
            health.consecutive_failures = 0;
            if health.degraded {
                health.degraded = false;
                health.last_transition_epoch = epoch;
            }
        } else {
            health.errors += 1;
            health.consecutive_failures = health.consecutive_failures.saturating_add(1);
            if !health.degraded && health.consecutive_failures >= PEER_DEGRADE_AFTER {
                health.degraded = true;
                health.last_transition_epoch = epoch;
            }
        }
        peers.push(entry);
    }

    /// Handles a parsed request.
    pub fn handle(&self, request: Request) -> Result<String, ServiceError> {
        match request {
            Request::Select {
                params,
                deadline_ms,
                stale_ok,
            } => {
                let started = Instant::now();
                let outcome = self.executor.run_select(
                    params,
                    deadline_ms.map(Duration::from_millis),
                    stale_ok,
                )?;
                self.cache_counters.record(outcome.cache_hit, outcome.stale);
                let elapsed_us = started.elapsed().as_micros() as u64;
                let mut fields = vec![
                    ("epoch", num_u64(outcome.epoch)),
                    ("users", string_array(&outcome.names)),
                    ("score", num_f64(outcome.selection.score)),
                    ("elapsed_us", num_u64(elapsed_us)),
                ];
                if stale_ok {
                    // Only opted-in clients see the staleness contract
                    // fields; the default response shape is unchanged.
                    fields.push(("stale", Value::Bool(outcome.stale)));
                    fields.push(("certified_score_lb", num_f64(outcome.certified_score_lb)));
                }
                Ok(ok_response(fields))
            }
            Request::Explain { params, top_k } => {
                let report: Result<(u64, Value), ServiceError> =
                    self.executor.run(move |snapshot| {
                        let outcome = snapshot.select(&params, None)?;
                        let weights = params.weight.weights(snapshot.groups());
                        let covs = params.cov.cov(snapshot.groups(), params.budget);
                        let inst = DiversificationInstance::new(snapshot.groups(), weights, covs);
                        let report = SelectionReport::build(
                            &inst,
                            snapshot.repo(),
                            &outcome.selection,
                            top_k,
                        );
                        let value = serde_json::to_value(&report).map_err(|e| {
                            ServiceError::BadRequest(format!("report serialization: {e}"))
                        })?;
                        Ok((outcome.epoch, value))
                    })?;
                let (epoch, report) = report?;
                Ok(ok_response(vec![
                    ("epoch", num_u64(epoch)),
                    ("report", report),
                ]))
            }
            Request::OpenSession => {
                let (id, epoch) = self.sessions.open(&self.store);
                Ok(ok_response(vec![
                    ("session", num_u64(id)),
                    ("epoch", num_u64(epoch)),
                ]))
            }
            Request::CloseSession { session } => {
                self.sessions.close(session)?;
                Ok(ok_response(vec![("closed", num_u64(session))]))
            }
            Request::Refine {
                session,
                delta,
                params,
            } => {
                // Retire sessions whose pinned epoch has fallen too far
                // behind: the pinned snapshot holds a full repository copy
                // alive, and after enough churn the client's group ids no
                // longer describe the live data anyway.
                let current = self.store.epoch();
                if let Some(retired) = self.sessions.with_session(session, |s| {
                    let pinned = s.snapshot().epoch();
                    Ok(current.saturating_sub(pinned) > self.max_session_lag)
                        .map(|r| r.then_some(pinned))
                })? {
                    self.sessions.close(session)?;
                    return Err(ServiceError::SessionRetired {
                        session,
                        pinned: retired,
                        current,
                    });
                }
                self.sessions.with_session(session, |s| {
                    let custom = s.refine(&delta, params.weight, params.cov, params.budget)?;
                    let names = s.snapshot().user_names(custom.users());
                    Ok(ok_response(vec![
                        ("epoch", num_u64(s.snapshot().epoch())),
                        ("session", num_u64(session)),
                        ("users", string_array(&names)),
                        ("priority_score", num_f64(custom.priority_score())),
                        ("standard_score", num_f64(custom.standard_score())),
                        ("pool_size", num_u64(custom.pool_size as u64)),
                        (
                            "feedback_group_coverage",
                            num_f64(custom.feedback_group_coverage),
                        ),
                    ]))
                })
            }
            Request::UpdateProfile { update } => {
                // A panic mid-`apply` can leave the writer's incremental
                // state inconsistent; refuse further writes rather than
                // publish from it (reads keep serving the last snapshot).
                let mut writer = poison::checked(self.writer.lock())?;
                if let Some(d) = &self.durability {
                    // Write-ahead order: validate against the exact state
                    // the frame will replay against, make it durable, then
                    // apply. Validating first keeps rejected updates out
                    // of the log (replay would quarantine them and every
                    // acked frame behind them); logging before applying
                    // means an append failure leaves the writer untouched,
                    // so a non-durable update can never be published or
                    // checkpointed. A crash between append and ack is
                    // resolved in the client's disfavor, exactly like a
                    // crash between send and ack.
                    writer.validate(&update)?;
                    let epoch_hint = match self.publish_policy {
                        PublishPolicy::Immediate => writer.epoch().saturating_add(1),
                        PublishPolicy::Batched { .. } => 0,
                    };
                    d.log_update(epoch_hint, &update)?;
                }
                let outcome = writer.apply(&update)?;
                let (epoch, queued) = match self.publish_policy {
                    // One epoch per update: the original behavior.
                    PublishPolicy::Immediate => (writer.publish(), false),
                    // The flusher publishes the whole batch as one epoch;
                    // report the last *published* epoch so clients can
                    // poll for visibility.
                    PublishPolicy::Batched { .. } => (self.store.epoch(), true),
                };
                if let Some(d) = &self.durability {
                    if matches!(self.publish_policy, PublishPolicy::Immediate) {
                        // Checkpoints are accelerators: a failed one costs
                        // recovery time, never durability. Batched-policy
                        // checkpoints run in the flusher, after publish.
                        d.checkpoint_if_due(&writer);
                    }
                }
                let mut fields = vec![
                    ("epoch", num_u64(epoch)),
                    ("user", string(update.user)),
                    ("created_user", Value::Bool(outcome.created_user)),
                    ("regrouped", Value::Bool(outcome.regrouped)),
                ];
                if queued {
                    fields.push(("queued", Value::Bool(true)));
                }
                Ok(ok_response(fields))
            }
            Request::Stats => {
                let snapshot = self.store.load();
                let stats = self.executor.stats();
                let (epoch_hits, epoch_misses) = snapshot.cache_stats();
                let (hits, misses) = self.cache_counters.totals();
                // The epoch-build breakdown lives on the writer; a
                // poisoned writer degrades stats rather than failing them.
                let (publish, mode) = match self.writer.lock() {
                    Ok(w) => (w.publish_stats().clone(), w.mode()),
                    Err(e) => {
                        let w = e.into_inner();
                        (w.publish_stats().clone(), w.mode())
                    }
                };
                let (publish_p50, publish_p99) = publish.latency_percentiles();
                let mode_name = match mode {
                    PublishMode::Incremental => "incremental",
                    PublishMode::FullRebuild => "full_rebuild",
                };
                let peers = Value::Array(
                    self.peer_health()
                        .into_iter()
                        .map(|(name, h)| {
                            Value::Object(vec![
                                ("peer".to_owned(), string(name)),
                                (
                                    "state".to_owned(),
                                    string(if h.degraded { "degraded" } else { "ok" }),
                                ),
                                (
                                    "consecutive_failures".to_owned(),
                                    num_u64(u64::from(h.consecutive_failures)),
                                ),
                                (
                                    "last_transition_epoch".to_owned(),
                                    num_u64(h.last_transition_epoch),
                                ),
                                ("requests".to_owned(), num_u64(h.requests)),
                                ("errors".to_owned(), num_u64(h.errors)),
                            ])
                        })
                        .collect(),
                );
                let (wal_bytes, last_checkpoint_epoch, recovery_replayed, checkpoint_failures) =
                    self.durability
                        .as_ref()
                        .map(|d| {
                            (
                                d.wal_bytes(),
                                d.last_checkpoint_epoch(),
                                d.recovery_replayed(),
                                d.checkpoint_failures(),
                            )
                        })
                        .unwrap_or_default();
                let checkpoint_error = self
                    .durability
                    .as_ref()
                    .and_then(|d| d.last_checkpoint_error());
                let mut fields = vec![
                    ("epoch", num_u64(snapshot.epoch())),
                    ("users", num_u64(snapshot.repo().user_count() as u64)),
                    ("groups", num_u64(snapshot.groups().len() as u64)),
                    ("sessions", num_u64(self.sessions.len() as u64)),
                    ("queue_depth", num_u64(self.executor.queue_depth() as u64)),
                    (
                        "submitted",
                        num_u64(stats.submitted.load(Ordering::Relaxed)),
                    ),
                    ("rejected", num_u64(stats.rejected.load(Ordering::Relaxed))),
                    (
                        "completed",
                        num_u64(stats.completed.load(Ordering::Relaxed)),
                    ),
                    ("cache_hits", num_u64(hits)),
                    ("cache_misses", num_u64(misses)),
                    ("epoch_cache_hits", num_u64(epoch_hits)),
                    ("epoch_cache_misses", num_u64(epoch_misses)),
                    ("stale_served", num_u64(self.cache_counters.stale_served())),
                    ("publish_mode", string(mode_name.to_owned())),
                    ("publishes", num_u64(publish.publishes)),
                    ("patched_publishes", num_u64(publish.patched_publishes)),
                    ("rebuilt_publishes", num_u64(publish.rebuilt_publishes)),
                    ("memos_carried", num_u64(publish.memos_carried)),
                    ("memos_invalidated", num_u64(publish.memos_invalidated)),
                    (
                        "publish_batch_size",
                        num_u64(publish.last.publish_batch_size),
                    ),
                    ("csr_patch_micros", num_u64(publish.last.csr_patch_micros)),
                    (
                        "full_rebuild_micros",
                        num_u64(publish.last.full_rebuild_micros),
                    ),
                    ("publish_p50_micros", num_u64(publish_p50)),
                    ("publish_p99_micros", num_u64(publish_p99)),
                    ("wal_bytes", num_u64(wal_bytes)),
                    ("last_checkpoint_epoch", num_u64(last_checkpoint_epoch)),
                    ("recovery_replayed", num_u64(recovery_replayed)),
                    ("checkpoint_failures", num_u64(checkpoint_failures)),
                    ("peers", peers),
                ];
                if let Some(e) = checkpoint_error {
                    // Present only once a checkpoint has failed, so the
                    // healthy-path response shape is unchanged.
                    fields.push(("checkpoint_last_error", string(e)));
                }
                Ok(ok_response(fields))
            }
        }
    }
}

/// Spawns the batched-publish flusher: every `interval` it publishes the
/// queued batch as one epoch and pre-computes the warming select so the
/// first reader on the new epoch gets a memo hit.
fn spawn_flusher(
    writer: Arc<Mutex<RepositoryWriter>>,
    store: Arc<SnapshotStore>,
    interval: Duration,
    warm_budget: Option<usize>,
    durability: Option<Arc<DurabilityHandle>>,
) -> Flusher {
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let signal = Arc::clone(&stop);
    let handle = std::thread::spawn(move || loop {
        {
            let (lock, cv) = &*signal;
            let mut stopped = poison::recover(lock.lock());
            while !*stopped {
                let (next, timeout) = poison::recover(cv.wait_timeout(stopped, interval));
                stopped = next;
                if timeout.timed_out() {
                    break;
                }
            }
            if *stopped {
                return;
            }
        }
        let published = match writer.lock() {
            Ok(mut w) => {
                let published = w.publish_if_dirty();
                if published.is_some() {
                    if let Some(d) = &durability {
                        // After publish, under the writer lock: the repo
                        // has no pending updates, so the checkpoint's
                        // epoch matches its contents exactly. Failures
                        // cost recovery time, never durability.
                        d.checkpoint_if_due(&w);
                    }
                }
                published
            }
            // A poisoned writer refuses further publishes; readers keep
            // serving the last snapshot and the service surfaces the
            // poisoning on the next update-profile.
            Err(_) => return,
        };
        if published.is_some() {
            if let Some(budget) = warm_budget {
                let _ = store.load().select(&warm_params(budget), None);
            }
        }
    });
    Flusher {
        stop,
        handle: Some(handle),
    }
}

// Re-exported for front-ends that pretty-print protocol documentation.
pub use protocol::Request as ProtocolRequest;

#[cfg(test)]
mod tests {
    use super::*;
    use podium_core::bucket::BucketingConfig;

    fn service() -> PodiumService {
        let mut repo = UserRepository::new();
        let mex = repo.intern_property("avgRating Mexican");
        let thai = repo.intern_property("avgRating Thai");
        for i in 0..16 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, mex, (i as f64) / 16.0).unwrap();
            if i % 4 == 0 {
                repo.set_score(u, thai, 0.85).unwrap();
            }
        }
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        PodiumService::new(
            repo,
            &buckets,
            ServiceConfig {
                workers: 2,
                queue_capacity: 32,
                default_deadline_ms: 2000,
                ..ServiceConfig::default()
            },
        )
    }

    fn parse(line: &str) -> Value {
        serde_json::from_str(line).unwrap()
    }

    #[test]
    fn select_round_trip() {
        let svc = service();
        let resp = parse(&svc.handle_line(r#"{"op":"select","budget":3}"#));
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(resp.get("epoch").and_then(Value::as_u64), Some(0));
        assert_eq!(
            resp.get("users").and_then(Value::as_array).unwrap().len(),
            3
        );
        assert!(resp.get("score").and_then(Value::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn update_bumps_epoch_and_next_select_sees_it() {
        let svc = service();
        let resp = parse(&svc.handle_line(
            r#"{"op":"update-profile","user":"u1","property":"avgRating Mexican","score":0.97}"#,
        ));
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(resp.get("epoch").and_then(Value::as_u64), Some(1));
        let resp = parse(&svc.handle_line(r#"{"op":"select","budget":3}"#));
        assert_eq!(resp.get("epoch").and_then(Value::as_u64), Some(1));
        // Creating a brand-new user works too.
        let resp = parse(&svc.handle_line(
            r#"{"op":"update-profile","user":"newcomer","property":"avgRating Thai","score":0.5}"#,
        ));
        assert_eq!(
            resp.get("created_user").and_then(Value::as_bool),
            Some(true)
        );
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(stats.get("users").and_then(Value::as_u64), Some(17));
        assert_eq!(stats.get("epoch").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn session_refine_round_trip_is_pinned() {
        let svc = service();
        let open = parse(&svc.handle_line(r#"{"op":"open-session"}"#));
        let session = open.get("session").and_then(Value::as_u64).unwrap();
        assert_eq!(open.get("epoch").and_then(Value::as_u64), Some(0));
        // Updates land while the session is open…
        svc.handle_line(
            r#"{"op":"update-profile","user":"u2","property":"avgRating Thai","score":0.9}"#,
        );
        // …but the session still refines against epoch 0.
        let refine = parse(&svc.handle_line(&format!(
            r#"{{"op":"refine","session":{session},"budget":3,"must_not":[0]}}"#
        )));
        assert_eq!(
            refine.get("ok").and_then(Value::as_bool),
            Some(true),
            "{refine:?}"
        );
        assert_eq!(refine.get("epoch").and_then(Value::as_u64), Some(0));
        assert_eq!(
            refine.get("users").and_then(Value::as_array).unwrap().len(),
            3
        );
        let close =
            parse(&svc.handle_line(&format!(r#"{{"op":"close-session","session":{session}}}"#)));
        assert_eq!(close.get("ok").and_then(Value::as_bool), Some(true));
        let gone = parse(&svc.handle_line(&format!(
            r#"{{"op":"refine","session":{session},"budget":3}}"#
        )));
        assert_eq!(
            gone.get("error").and_then(Value::as_str),
            Some("unknown_session")
        );
    }

    #[test]
    fn explain_reports_top_weight_coverage() {
        let svc = service();
        let resp = parse(&svc.handle_line(r#"{"op":"explain","budget":3,"top_k":5}"#));
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "{resp:?}"
        );
        let report = resp.get("report").unwrap();
        assert!(report
            .get("top_weight_coverage")
            .and_then(Value::as_f64)
            .is_some());
        assert_eq!(
            report.get("users").and_then(Value::as_array).unwrap().len(),
            3
        );
    }

    #[test]
    fn stats_expose_monotone_cache_counters_and_queue_depth() {
        let svc = service();
        let read = |svc: &PodiumService, field: &str| {
            parse(&svc.handle_line(r#"{"op":"stats"}"#))
                .get(field)
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("stats field '{field}' missing"))
        };
        // Presence, before any select ran.
        for field in [
            "cache_hits",
            "cache_misses",
            "epoch_cache_hits",
            "epoch_cache_misses",
            "queue_depth",
        ] {
            read(&svc, field);
        }
        let mut last_hits = 0;
        let mut last_misses = 0;
        for round in 0..4 {
            svc.handle_line(r#"{"op":"select","budget":3}"#);
            let hits = read(&svc, "cache_hits");
            let misses = read(&svc, "cache_misses");
            assert!(hits >= last_hits, "round {round}: hits went backwards");
            assert!(
                misses >= last_misses,
                "round {round}: misses went backwards"
            );
            last_hits = hits;
            last_misses = misses;
        }
        // Four identical selects against one epoch: one miss, three hits.
        assert_eq!(last_misses, 1);
        assert_eq!(last_hits, 3);
        assert_eq!(read(&svc, "epoch_cache_hits"), 3);
        assert_eq!(read(&svc, "epoch_cache_misses"), 1);
        // Publishing resets the per-epoch counters but never the totals.
        svc.handle_line(
            r#"{"op":"update-profile","user":"u1","property":"avgRating Thai","score":0.4}"#,
        );
        assert_eq!(read(&svc, "epoch_cache_hits"), 0);
        assert_eq!(read(&svc, "epoch_cache_misses"), 0);
        assert_eq!(read(&svc, "cache_hits"), last_hits);
        assert_eq!(read(&svc, "cache_misses"), last_misses);
    }

    #[test]
    fn refine_on_a_retired_epoch_is_a_typed_error() {
        let mut repo = UserRepository::new();
        let mex = repo.intern_property("avgRating Mexican");
        for i in 0..16 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, mex, (i as f64) / 16.0).unwrap();
        }
        let buckets = podium_core::bucket::BucketingConfig::paper_default().bucketize(&repo);
        let svc = PodiumService::new(
            repo,
            &buckets,
            ServiceConfig {
                workers: 1,
                queue_capacity: 8,
                default_deadline_ms: 2000,
                max_session_lag: 2,
                ..ServiceConfig::default()
            },
        );
        let open = parse(&svc.handle_line(r#"{"op":"open-session"}"#));
        let session = open.get("session").and_then(Value::as_u64).unwrap();
        // Two epochs of lag: still within the allowance.
        for _ in 0..2 {
            svc.handle_line(
                r#"{"op":"update-profile","user":"u1","property":"avgRating Mexican","score":0.5}"#,
            );
        }
        let ok = parse(&svc.handle_line(&format!(
            r#"{{"op":"refine","session":{session},"budget":3}}"#
        )));
        assert_eq!(ok.get("ok").and_then(Value::as_bool), Some(true), "{ok:?}");
        // A third publish pushes the pin past the allowance.
        svc.handle_line(
            r#"{"op":"update-profile","user":"u2","property":"avgRating Mexican","score":0.6}"#,
        );
        let retired = parse(&svc.handle_line(&format!(
            r#"{{"op":"refine","session":{session},"budget":3}}"#
        )));
        assert_eq!(
            retired.get("error").and_then(Value::as_str),
            Some("session_retired"),
            "{retired:?}"
        );
        // The retirement closed the session server-side.
        let gone =
            parse(&svc.handle_line(&format!(r#"{{"op":"close-session","session":{session}}}"#)));
        assert_eq!(
            gone.get("error").and_then(Value::as_str),
            Some("unknown_session"),
            "{gone:?}"
        );
    }

    #[test]
    fn batched_policy_queues_updates_until_flush() {
        let mut repo = UserRepository::new();
        let mex = repo.intern_property("avgRating Mexican");
        for i in 0..16 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, mex, (i as f64) / 16.0).unwrap();
        }
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let svc = PodiumService::new(
            repo,
            &buckets,
            ServiceConfig {
                workers: 1,
                queue_capacity: 8,
                default_deadline_ms: 2000,
                // An interval the test never reaches: only the explicit
                // flush below publishes.
                publish_policy: PublishPolicy::Batched {
                    interval_ms: 3_600_000,
                },
                warm_budget: Some(3),
                ..ServiceConfig::default()
            },
        );
        for user in ["u1", "u2", "u3"] {
            let resp = parse(&svc.handle_line(&format!(
                r#"{{"op":"update-profile","user":"{user}","property":"avgRating Mexican","score":0.9}}"#
            )));
            assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
            assert_eq!(resp.get("queued").and_then(Value::as_bool), Some(true));
            assert_eq!(
                resp.get("epoch").and_then(Value::as_u64),
                Some(0),
                "reports the last *published* epoch while queued"
            );
        }
        // Readers still see epoch 0 until the batch publishes.
        let resp = parse(&svc.handle_line(r#"{"op":"select","budget":3}"#));
        assert_eq!(resp.get("epoch").and_then(Value::as_u64), Some(0));
        assert_eq!(svc.flush().unwrap(), Some(1), "one epoch for the batch");
        assert_eq!(svc.flush().unwrap(), None, "nothing left to publish");
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(stats.get("epoch").and_then(Value::as_u64), Some(1));
        assert_eq!(
            stats.get("publish_batch_size").and_then(Value::as_u64),
            Some(3)
        );
        assert_eq!(stats.get("publishes").and_then(Value::as_u64), Some(1));
        // The flush pre-warmed the budget-3 memo: the first reader on the
        // new epoch hits it.
        let resp = parse(&svc.handle_line(r#"{"op":"select","budget":3}"#));
        assert_eq!(resp.get("epoch").and_then(Value::as_u64), Some(1));
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(
            stats.get("epoch_cache_hits").and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn flusher_thread_publishes_batches_on_its_own() {
        let mut repo = UserRepository::new();
        let mex = repo.intern_property("avgRating Mexican");
        for i in 0..8 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, mex, (i as f64) / 8.0).unwrap();
        }
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let svc = PodiumService::new(
            repo,
            &buckets,
            ServiceConfig {
                workers: 1,
                queue_capacity: 8,
                default_deadline_ms: 2000,
                publish_policy: PublishPolicy::Batched { interval_ms: 5 },
                ..ServiceConfig::default()
            },
        );
        svc.handle_line(
            r#"{"op":"update-profile","user":"u1","property":"avgRating Mexican","score":0.9}"#,
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while svc.store().epoch() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(svc.store().epoch(), 1, "flusher published the batch");
    }

    #[test]
    fn stale_ok_select_serves_carried_memo_over_the_wire() {
        let svc = service();
        // Epoch 0: memoize the budget-1 selection (u0 — covers the
        // low-Mexican bucket and the Thai group).
        let before = parse(&svc.handle_line(r#"{"op":"select","budget":1}"#));
        let before_score = before.get("score").and_then(Value::as_f64).unwrap();
        // u11 moves between the two *upper* Mexican buckets: both stay
        // non-empty and neither is covered by the memo, so it carries.
        svc.handle_line(
            r#"{"op":"update-profile","user":"u11","property":"avgRating Mexican","score":0.5}"#,
        );
        // Default read mode recomputes and says nothing about staleness.
        let fresh = parse(&svc.handle_line(r#"{"op":"select","budget":2}"#));
        assert!(fresh.get("stale").is_none());
        assert!(fresh.get("certified_score_lb").is_none());
        // Opted-in read is served from the carried epoch-0 memo.
        let stale = parse(&svc.handle_line(r#"{"op":"select","budget":1,"stale_ok":true}"#));
        assert_eq!(stale.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(stale.get("stale").and_then(Value::as_bool), Some(true));
        assert_eq!(stale.get("epoch").and_then(Value::as_u64), Some(0));
        assert_eq!(
            stale.get("certified_score_lb").and_then(Value::as_f64),
            Some(before_score)
        );
        assert_eq!(
            stale.get("users").and_then(Value::as_array).map(Vec::len),
            Some(1)
        );
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(stats.get("stale_served").and_then(Value::as_u64), Some(1));
        assert_eq!(stats.get("memos_carried").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn stats_expose_the_epoch_build_breakdown() {
        let svc = service();
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(
            stats.get("publish_mode").and_then(Value::as_str),
            Some("incremental")
        );
        assert_eq!(stats.get("publishes").and_then(Value::as_u64), Some(0));
        svc.handle_line(
            r#"{"op":"update-profile","user":"u11","property":"avgRating Mexican","score":0.5}"#,
        );
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        for field in [
            "publishes",
            "patched_publishes",
            "rebuilt_publishes",
            "memos_carried",
            "memos_invalidated",
            "publish_batch_size",
            "csr_patch_micros",
            "full_rebuild_micros",
            "publish_p50_micros",
            "publish_p99_micros",
            "stale_served",
        ] {
            assert!(
                stats.get(field).and_then(Value::as_u64).is_some(),
                "stats field '{field}' missing: {stats:?}"
            );
        }
        assert_eq!(stats.get("publishes").and_then(Value::as_u64), Some(1));
        assert_eq!(
            stats.get("patched_publishes").and_then(Value::as_u64),
            Some(1),
            "a same-universe single-user move patches the CSR"
        );
        assert_eq!(
            stats.get("publish_batch_size").and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn durable_service_survives_restart() {
        let dir = std::env::temp_dir().join(format!("podium-svc-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let build = || {
            let mut repo = UserRepository::new();
            let mex = repo.intern_property("avgRating Mexican");
            for i in 0..16 {
                let u = repo.add_user(format!("u{i}"));
                repo.set_score(u, mex, (i as f64) / 16.0).unwrap();
            }
            let buckets = BucketingConfig::paper_default().bucketize(&repo);
            (repo, buckets)
        };
        let config = ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            default_deadline_ms: 2000,
            ..ServiceConfig::default()
        };
        let (repo, buckets) = build();
        let (svc, report) =
            PodiumService::with_durability(repo, &buckets, config, DurabilityOptions::new(&dir))
                .unwrap();
        assert_eq!(report.recovered_epoch, 0);
        for (i, user) in ["newbie-a", "newbie-b"].iter().enumerate() {
            let resp = parse(&svc.handle_line(&format!(
                r#"{{"op":"update-profile","user":"{user}","property":"avgRating Mexican","score":0.7}}"#
            )));
            assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
            assert_eq!(
                resp.get("epoch").and_then(Value::as_u64),
                Some(i as u64 + 1)
            );
        }
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert!(stats.get("wal_bytes").and_then(Value::as_u64).unwrap() > 0);
        assert_eq!(
            stats.get("recovery_replayed").and_then(Value::as_u64),
            Some(0)
        );
        drop(svc);

        let (repo, buckets) = build();
        let (svc, report) =
            PodiumService::with_durability(repo, &buckets, config, DurabilityOptions::new(&dir))
                .unwrap();
        assert_eq!(report.replayed_frames, 2);
        assert_eq!(report.recovered_epoch, 2);
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(stats.get("epoch").and_then(Value::as_u64), Some(2));
        assert_eq!(stats.get("users").and_then(Value::as_u64), Some(18));
        assert_eq!(
            stats.get("recovery_replayed").and_then(Value::as_u64),
            Some(2)
        );
        // The recovered service keeps appending where the log left off.
        let resp = parse(&svc.handle_line(
            r#"{"op":"update-profile","user":"newbie-c","property":"avgRating Mexican","score":0.2}"#,
        ));
        assert_eq!(resp.get("epoch").and_then(Value::as_u64), Some(3));
        drop(svc);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_rejected_update_never_reaches_the_wal() {
        let dir = std::env::temp_dir().join(format!("podium-svc-prevalid-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let build = || {
            let mut repo = UserRepository::new();
            let mex = repo.intern_property("avgRating Mexican");
            for i in 0..16 {
                let u = repo.add_user(format!("u{i}"));
                repo.set_score(u, mex, (i as f64) / 16.0).unwrap();
            }
            let buckets = BucketingConfig::paper_default().bucketize(&repo);
            (repo, buckets)
        };
        let config = ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            default_deadline_ms: 2000,
            ..ServiceConfig::default()
        };
        let (repo, buckets) = build();
        let (svc, _) =
            PodiumService::with_durability(repo, &buckets, config, DurabilityOptions::new(&dir))
                .unwrap();
        // Rejected updates (unknown property, bad score, bad retraction)
        // are validated before the WAL append, so none of them leaves a
        // frame that replay would quarantine.
        for line in [
            r#"{"op":"update-profile","user":"u1","property":"never-bucketed","score":0.5}"#,
            r#"{"op":"update-profile","user":"u1","property":"avgRating Mexican","score":7.0}"#,
            r#"{"op":"update-profile","user":"nobody","property":"avgRating Mexican","score":null}"#,
        ] {
            let resp = parse(&svc.handle_line(line));
            assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
        }
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(stats.get("wal_bytes").and_then(Value::as_u64), Some(0));
        assert_eq!(stats.get("epoch").and_then(Value::as_u64), Some(0));
        // A valid update still logs and publishes…
        let resp = parse(&svc.handle_line(
            r#"{"op":"update-profile","user":"u1","property":"avgRating Mexican","score":0.5}"#,
        ));
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
        drop(svc);
        // …and the restart replays exactly that one frame.
        let (repo, buckets) = build();
        let (_svc, report) =
            PodiumService::with_durability(repo, &buckets, config, DurabilityOptions::new(&dir))
                .unwrap();
        assert_eq!(report.replayed_frames, 1);
        assert!(report.quarantined.is_none(), "{:?}", report.quarantined);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_checkpoints_are_counted_in_stats() {
        let dir = std::env::temp_dir().join(format!("podium-svc-ckfail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A directory squatting on the checkpoint's tmp path makes the
        // tmp-file create fail; with checkpoint_every=1 the first update
        // attempts a checkpoint at seq 1.
        std::fs::create_dir_all(dir.join("checkpoint-1.json.tmp")).unwrap();
        let mut repo = UserRepository::new();
        let mex = repo.intern_property("avgRating Mexican");
        for i in 0..8 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, mex, (i as f64) / 8.0).unwrap();
        }
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let opts = DurabilityOptions {
            checkpoint_every: 1,
            ..DurabilityOptions::new(&dir)
        };
        let (svc, _) = PodiumService::with_durability(
            repo,
            &buckets,
            ServiceConfig {
                workers: 1,
                queue_capacity: 8,
                default_deadline_ms: 2000,
                ..ServiceConfig::default()
            },
            opts,
        )
        .unwrap();
        // The update is still acknowledged — checkpoints are accelerators —
        // but the failure is counted and described instead of swallowed.
        let resp = parse(&svc.handle_line(
            r#"{"op":"update-profile","user":"u1","property":"avgRating Mexican","score":0.9}"#,
        ));
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(
            stats.get("checkpoint_failures").and_then(Value::as_u64),
            Some(1)
        );
        assert!(
            stats
                .get("checkpoint_last_error")
                .and_then(Value::as_str)
                .is_some(),
            "{stats:?}"
        );
        assert_eq!(
            stats.get("last_checkpoint_epoch").and_then(Value::as_u64),
            Some(0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peer_registry_evicts_least_recently_active_at_cap() {
        let svc = service();
        for i in 0..PEER_REGISTRY_CAP {
            svc.handle_line_from(&format!("peer-{i}"), r#"{"op":"stats"}"#);
        }
        // Touch the oldest-inserted peer, then overflow the cap: eviction
        // must hit peer-1 (now the stalest), not the still-active peer-0.
        svc.handle_line_from("peer-0", r#"{"op":"stats"}"#);
        svc.handle_line_from("peer-new", r#"{"op":"stats"}"#);
        let peers = svc.peer_health();
        assert_eq!(peers.len(), PEER_REGISTRY_CAP);
        assert!(peers.iter().any(|(n, _)| n == "peer-0"));
        assert!(peers.iter().any(|(n, _)| n == "peer-new"));
        assert!(!peers.iter().any(|(n, _)| n == "peer-1"));
    }

    #[test]
    fn peer_health_degrades_and_recovers_in_stats() {
        let svc = service();
        for _ in 0..PEER_DEGRADE_AFTER {
            svc.handle_line_from("10.0.0.9:1234", "garbage");
        }
        svc.handle_line_from("10.0.0.7:5678", r#"{"op":"select","budget":3}"#);
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        let peers = stats.get("peers").and_then(Value::as_array).unwrap();
        assert_eq!(peers.len(), 2);
        let find = |name: &str| {
            peers
                .iter()
                .find(|p| p.get("peer").and_then(Value::as_str) == Some(name))
                .unwrap_or_else(|| panic!("peer {name} missing: {peers:?}"))
        };
        let bad = find("10.0.0.9:1234");
        assert_eq!(bad.get("state").and_then(Value::as_str), Some("degraded"));
        assert_eq!(
            bad.get("consecutive_failures").and_then(Value::as_u64),
            Some(u64::from(PEER_DEGRADE_AFTER))
        );
        let good = find("10.0.0.7:5678");
        assert_eq!(good.get("state").and_then(Value::as_str), Some("ok"));
        assert_eq!(good.get("errors").and_then(Value::as_u64), Some(0));
        // One success flips the degraded peer back.
        svc.handle_line_from("10.0.0.9:1234", r#"{"op":"select","budget":3}"#);
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        let peers = stats.get("peers").and_then(Value::as_array).unwrap();
        let back = peers
            .iter()
            .find(|p| p.get("peer").and_then(Value::as_str) == Some("10.0.0.9:1234"))
            .unwrap();
        assert_eq!(back.get("state").and_then(Value::as_str), Some("ok"));
        assert_eq!(
            back.get("consecutive_failures").and_then(Value::as_u64),
            Some(0)
        );
    }

    #[test]
    fn malformed_lines_never_panic() {
        let svc = service();
        for line in [
            "",
            "garbage",
            r#"{"op":"select"}"#,
            r#"{"op":"refine","session":99,"budget":3}"#,
            r#"{"op":"update-profile","user":"u1","property":"nope","score":0.5}"#,
            r#"{"op":"select","budget":0}"#,
        ] {
            let resp = parse(&svc.handle_line(line));
            assert_eq!(
                resp.get("ok").and_then(Value::as_bool),
                Some(false),
                "line {line}"
            );
        }
    }
}
