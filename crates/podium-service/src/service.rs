//! [`PodiumService`]: the embeddable facade tying the snapshot store,
//! writer, executor, and session layer together behind the JSONL protocol.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use podium_core::bucket::PropertyBuckets;
use podium_core::explain::SelectionReport;
use podium_core::instance::DiversificationInstance;
use podium_core::profile::UserRepository;
use podium_core::weights::{CovScheme, WeightScheme};
use serde_json::Value;

use crate::error::ServiceError;
use crate::executor::{ExecutorConfig, QueryExecutor};
use crate::poison;
use crate::protocol::{
    self, error_response, num_f64, num_u64, ok_response, parse_request, string, string_array,
    Request,
};
use crate::session::SessionManager;
use crate::snapshot::{PublishMode, RepositoryWriter, SelectParams, SnapshotStore};

/// When each applied update becomes visible to readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PublishPolicy {
    /// Publish a new epoch on every `update-profile` — one epoch per
    /// update, the original (and default) behavior.
    #[default]
    Immediate,
    /// Queue updates and let a background flusher publish the batch as
    /// one epoch every `interval_ms` milliseconds. `update-profile`
    /// responses carry `queued: true` and the last *published* epoch.
    /// After each batched publish the flusher warms the new epoch's memo
    /// cache with the configured warm select.
    Batched {
        /// Flush interval in milliseconds.
        interval_ms: u64,
    },
}

/// Budget of the publish-time cache-warming select (scheme defaults:
/// LBS weights, Single coverage — the serving defaults).
pub const DEFAULT_WARM_BUDGET: usize = 10;

/// Service sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads in the query executor.
    pub workers: usize,
    /// Bounded queue capacity (admission control threshold).
    pub queue_capacity: usize,
    /// Default per-request deadline in milliseconds, for requests that do
    /// not carry a `deadline_ms`.
    pub default_deadline_ms: u64,
    /// How many epochs a session's pinned snapshot may lag the current
    /// epoch before `refine` rejects with `session_retired`. Keeping a
    /// long-abandoned session's snapshot alive pins its whole repository
    /// copy in memory; this bounds that. `u64::MAX` disables retirement.
    pub max_session_lag: u64,
    /// How published epochs are materialized (incremental delta patching
    /// vs full rebuild).
    pub publish_mode: PublishMode,
    /// When applied updates become visible.
    pub publish_policy: PublishPolicy,
    /// Budget of the warming select run after each *batched* publish
    /// (`None` disables warming). Ignored under
    /// [`PublishPolicy::Immediate`], whose publish latency stays
    /// warming-free.
    pub warm_budget: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let exec = ExecutorConfig::default();
        Self {
            workers: exec.workers,
            queue_capacity: exec.queue_capacity,
            default_deadline_ms: exec.default_deadline.as_millis() as u64,
            max_session_lag: 1024,
            publish_mode: PublishMode::default(),
            publish_policy: PublishPolicy::default(),
            warm_budget: Some(DEFAULT_WARM_BUDGET),
        }
    }
}

/// Cumulative (monotone across epochs) memo-cache counters for the
/// `select` path. Per-epoch counters live on each [`Snapshot`]; these
/// accumulate over the service's lifetime so dashboards see totals that
/// never reset when an epoch is published.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    stale_served: AtomicU64,
}

impl CacheCounters {
    /// `(hits, misses)` so far.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Selects served from a carried-forward (stale) memo so far.
    pub fn stale_served(&self) -> u64 {
        self.stale_served.load(Ordering::Relaxed)
    }

    fn record(&self, hit: bool, stale: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        if stale {
            self.stale_served.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Shutdown signal + join handle of the batched-publish flusher thread.
#[derive(Debug)]
struct Flusher {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for Flusher {
    fn drop(&mut self) {
        {
            let (lock, cv) = &*self.stop;
            *poison::recover(lock.lock()) = true;
            cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The serving facade. `Send + Sync`; share it behind an `Arc` between
/// connection handler threads.
#[derive(Debug)]
pub struct PodiumService {
    store: Arc<SnapshotStore>,
    writer: Arc<Mutex<RepositoryWriter>>,
    executor: QueryExecutor,
    sessions: SessionManager,
    max_session_lag: u64,
    publish_policy: PublishPolicy,
    warm_budget: Option<usize>,
    cache_counters: CacheCounters,
    /// Joined (and thereby stopped) on drop; `None` under
    /// [`PublishPolicy::Immediate`].
    _flusher: Option<Flusher>,
}

/// The select parameters the publish-time warming pass pre-computes.
fn warm_params(budget: usize) -> SelectParams {
    SelectParams {
        budget,
        weight: WeightScheme::LinearBySize,
        cov: CovScheme::Single,
    }
}

impl PodiumService {
    /// Builds the service: epoch-0 snapshot from `repo` under `buckets`,
    /// then the worker pool, and — under [`PublishPolicy::Batched`] — the
    /// background flusher that publishes one epoch per batch and warms
    /// the new epoch's memo cache.
    pub fn new(repo: UserRepository, buckets: &PropertyBuckets, config: ServiceConfig) -> Self {
        let (store, writer) = RepositoryWriter::with_mode(repo, buckets, config.publish_mode);
        let writer = Arc::new(Mutex::new(writer));
        let executor = QueryExecutor::new(
            Arc::clone(&store),
            ExecutorConfig {
                workers: config.workers,
                queue_capacity: config.queue_capacity,
                default_deadline: Duration::from_millis(config.default_deadline_ms),
            },
        );
        let flusher = match config.publish_policy {
            PublishPolicy::Immediate => None,
            PublishPolicy::Batched { interval_ms } => Some(spawn_flusher(
                Arc::clone(&writer),
                Arc::clone(&store),
                Duration::from_millis(interval_ms.max(1)),
                config.warm_budget,
            )),
        };
        Self {
            store,
            writer,
            executor,
            sessions: SessionManager::new(),
            max_session_lag: config.max_session_lag,
            publish_policy: config.publish_policy,
            warm_budget: config.warm_budget,
            cache_counters: CacheCounters::default(),
            _flusher: flusher,
        }
    }

    /// Publishes any queued updates right now (one epoch for the whole
    /// batch) and runs the warming select, regardless of policy. Returns
    /// the published epoch, or `None` when nothing was pending.
    pub fn flush(&self) -> Result<Option<u64>, ServiceError> {
        let published = {
            let mut writer = poison::checked(self.writer.lock())?;
            writer.publish_if_dirty()
        };
        if published.is_some() {
            if let Some(budget) = self.warm_budget {
                let _ = self.store.load().select(&warm_params(budget), None);
            }
        }
        Ok(published)
    }

    /// Cumulative memo-cache counters (monotone across epochs).
    pub fn cache_counters(&self) -> &CacheCounters {
        &self.cache_counters
    }

    /// The snapshot store (for embedding callers that read directly).
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// The query executor.
    pub fn executor(&self) -> &QueryExecutor {
        &self.executor
    }

    /// Handles one raw request line, returning the response line (without
    /// trailing newline). Never panics on malformed input — parse and
    /// execution errors map to `{"ok":false,...}` responses.
    pub fn handle_line(&self, line: &str) -> String {
        match parse_request(line) {
            Ok(req) => match self.handle(req) {
                Ok(response) => response,
                Err(e) => error_response(&e),
            },
            Err(e) => error_response(&e),
        }
    }

    /// Handles a parsed request.
    pub fn handle(&self, request: Request) -> Result<String, ServiceError> {
        match request {
            Request::Select {
                params,
                deadline_ms,
                stale_ok,
            } => {
                let started = Instant::now();
                let outcome = self.executor.run_select(
                    params,
                    deadline_ms.map(Duration::from_millis),
                    stale_ok,
                )?;
                self.cache_counters.record(outcome.cache_hit, outcome.stale);
                let elapsed_us = started.elapsed().as_micros() as u64;
                let mut fields = vec![
                    ("epoch", num_u64(outcome.epoch)),
                    ("users", string_array(&outcome.names)),
                    ("score", num_f64(outcome.selection.score)),
                    ("elapsed_us", num_u64(elapsed_us)),
                ];
                if stale_ok {
                    // Only opted-in clients see the staleness contract
                    // fields; the default response shape is unchanged.
                    fields.push(("stale", Value::Bool(outcome.stale)));
                    fields.push(("certified_score_lb", num_f64(outcome.certified_score_lb)));
                }
                Ok(ok_response(fields))
            }
            Request::Explain { params, top_k } => {
                let report: Result<(u64, Value), ServiceError> =
                    self.executor.run(move |snapshot| {
                        let outcome = snapshot.select(&params, None)?;
                        let weights = params.weight.weights(snapshot.groups());
                        let covs = params.cov.cov(snapshot.groups(), params.budget);
                        let inst = DiversificationInstance::new(snapshot.groups(), weights, covs);
                        let report = SelectionReport::build(
                            &inst,
                            snapshot.repo(),
                            &outcome.selection,
                            top_k,
                        );
                        let value = serde_json::to_value(&report).map_err(|e| {
                            ServiceError::BadRequest(format!("report serialization: {e}"))
                        })?;
                        Ok((outcome.epoch, value))
                    })?;
                let (epoch, report) = report?;
                Ok(ok_response(vec![
                    ("epoch", num_u64(epoch)),
                    ("report", report),
                ]))
            }
            Request::OpenSession => {
                let (id, epoch) = self.sessions.open(&self.store);
                Ok(ok_response(vec![
                    ("session", num_u64(id)),
                    ("epoch", num_u64(epoch)),
                ]))
            }
            Request::CloseSession { session } => {
                self.sessions.close(session)?;
                Ok(ok_response(vec![("closed", num_u64(session))]))
            }
            Request::Refine {
                session,
                delta,
                params,
            } => {
                // Retire sessions whose pinned epoch has fallen too far
                // behind: the pinned snapshot holds a full repository copy
                // alive, and after enough churn the client's group ids no
                // longer describe the live data anyway.
                let current = self.store.epoch();
                if let Some(retired) = self.sessions.with_session(session, |s| {
                    let pinned = s.snapshot().epoch();
                    Ok(current.saturating_sub(pinned) > self.max_session_lag)
                        .map(|r| r.then_some(pinned))
                })? {
                    self.sessions.close(session)?;
                    return Err(ServiceError::SessionRetired {
                        session,
                        pinned: retired,
                        current,
                    });
                }
                self.sessions.with_session(session, |s| {
                    let custom = s.refine(&delta, params.weight, params.cov, params.budget)?;
                    let names = s.snapshot().user_names(custom.users());
                    Ok(ok_response(vec![
                        ("epoch", num_u64(s.snapshot().epoch())),
                        ("session", num_u64(session)),
                        ("users", string_array(&names)),
                        ("priority_score", num_f64(custom.priority_score())),
                        ("standard_score", num_f64(custom.standard_score())),
                        ("pool_size", num_u64(custom.pool_size as u64)),
                        (
                            "feedback_group_coverage",
                            num_f64(custom.feedback_group_coverage),
                        ),
                    ]))
                })
            }
            Request::UpdateProfile { update } => {
                // A panic mid-`apply` can leave the writer's incremental
                // state inconsistent; refuse further writes rather than
                // publish from it (reads keep serving the last snapshot).
                let mut writer = poison::checked(self.writer.lock())?;
                let outcome = writer.apply(&update)?;
                let (epoch, queued) = match self.publish_policy {
                    // One epoch per update: the original behavior.
                    PublishPolicy::Immediate => (writer.publish(), false),
                    // The flusher publishes the whole batch as one epoch;
                    // report the last *published* epoch so clients can
                    // poll for visibility.
                    PublishPolicy::Batched { .. } => (self.store.epoch(), true),
                };
                let mut fields = vec![
                    ("epoch", num_u64(epoch)),
                    ("user", string(update.user)),
                    ("created_user", Value::Bool(outcome.created_user)),
                    ("regrouped", Value::Bool(outcome.regrouped)),
                ];
                if queued {
                    fields.push(("queued", Value::Bool(true)));
                }
                Ok(ok_response(fields))
            }
            Request::Stats => {
                let snapshot = self.store.load();
                let stats = self.executor.stats();
                let (epoch_hits, epoch_misses) = snapshot.cache_stats();
                let (hits, misses) = self.cache_counters.totals();
                // The epoch-build breakdown lives on the writer; a
                // poisoned writer degrades stats rather than failing them.
                let (publish, mode) = match self.writer.lock() {
                    Ok(w) => (w.publish_stats().clone(), w.mode()),
                    Err(e) => {
                        let w = e.into_inner();
                        (w.publish_stats().clone(), w.mode())
                    }
                };
                let (publish_p50, publish_p99) = publish.latency_percentiles();
                let mode_name = match mode {
                    PublishMode::Incremental => "incremental",
                    PublishMode::FullRebuild => "full_rebuild",
                };
                Ok(ok_response(vec![
                    ("epoch", num_u64(snapshot.epoch())),
                    ("users", num_u64(snapshot.repo().user_count() as u64)),
                    ("groups", num_u64(snapshot.groups().len() as u64)),
                    ("sessions", num_u64(self.sessions.len() as u64)),
                    ("queue_depth", num_u64(self.executor.queue_depth() as u64)),
                    (
                        "submitted",
                        num_u64(stats.submitted.load(Ordering::Relaxed)),
                    ),
                    ("rejected", num_u64(stats.rejected.load(Ordering::Relaxed))),
                    (
                        "completed",
                        num_u64(stats.completed.load(Ordering::Relaxed)),
                    ),
                    ("cache_hits", num_u64(hits)),
                    ("cache_misses", num_u64(misses)),
                    ("epoch_cache_hits", num_u64(epoch_hits)),
                    ("epoch_cache_misses", num_u64(epoch_misses)),
                    ("stale_served", num_u64(self.cache_counters.stale_served())),
                    ("publish_mode", string(mode_name.to_owned())),
                    ("publishes", num_u64(publish.publishes)),
                    ("patched_publishes", num_u64(publish.patched_publishes)),
                    ("rebuilt_publishes", num_u64(publish.rebuilt_publishes)),
                    ("memos_carried", num_u64(publish.memos_carried)),
                    ("memos_invalidated", num_u64(publish.memos_invalidated)),
                    (
                        "publish_batch_size",
                        num_u64(publish.last.publish_batch_size),
                    ),
                    ("csr_patch_micros", num_u64(publish.last.csr_patch_micros)),
                    (
                        "full_rebuild_micros",
                        num_u64(publish.last.full_rebuild_micros),
                    ),
                    ("publish_p50_micros", num_u64(publish_p50)),
                    ("publish_p99_micros", num_u64(publish_p99)),
                ]))
            }
        }
    }
}

/// Spawns the batched-publish flusher: every `interval` it publishes the
/// queued batch as one epoch and pre-computes the warming select so the
/// first reader on the new epoch gets a memo hit.
fn spawn_flusher(
    writer: Arc<Mutex<RepositoryWriter>>,
    store: Arc<SnapshotStore>,
    interval: Duration,
    warm_budget: Option<usize>,
) -> Flusher {
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let signal = Arc::clone(&stop);
    let handle = std::thread::spawn(move || loop {
        {
            let (lock, cv) = &*signal;
            let mut stopped = poison::recover(lock.lock());
            while !*stopped {
                let (next, timeout) = poison::recover(cv.wait_timeout(stopped, interval));
                stopped = next;
                if timeout.timed_out() {
                    break;
                }
            }
            if *stopped {
                return;
            }
        }
        let published = match writer.lock() {
            Ok(mut w) => w.publish_if_dirty(),
            // A poisoned writer refuses further publishes; readers keep
            // serving the last snapshot and the service surfaces the
            // poisoning on the next update-profile.
            Err(_) => return,
        };
        if published.is_some() {
            if let Some(budget) = warm_budget {
                let _ = store.load().select(&warm_params(budget), None);
            }
        }
    });
    Flusher {
        stop,
        handle: Some(handle),
    }
}

// Re-exported for front-ends that pretty-print protocol documentation.
pub use protocol::Request as ProtocolRequest;

#[cfg(test)]
mod tests {
    use super::*;
    use podium_core::bucket::BucketingConfig;

    fn service() -> PodiumService {
        let mut repo = UserRepository::new();
        let mex = repo.intern_property("avgRating Mexican");
        let thai = repo.intern_property("avgRating Thai");
        for i in 0..16 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, mex, (i as f64) / 16.0).unwrap();
            if i % 4 == 0 {
                repo.set_score(u, thai, 0.85).unwrap();
            }
        }
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        PodiumService::new(
            repo,
            &buckets,
            ServiceConfig {
                workers: 2,
                queue_capacity: 32,
                default_deadline_ms: 2000,
                ..ServiceConfig::default()
            },
        )
    }

    fn parse(line: &str) -> Value {
        serde_json::from_str(line).unwrap()
    }

    #[test]
    fn select_round_trip() {
        let svc = service();
        let resp = parse(&svc.handle_line(r#"{"op":"select","budget":3}"#));
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(resp.get("epoch").and_then(Value::as_u64), Some(0));
        assert_eq!(
            resp.get("users").and_then(Value::as_array).unwrap().len(),
            3
        );
        assert!(resp.get("score").and_then(Value::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn update_bumps_epoch_and_next_select_sees_it() {
        let svc = service();
        let resp = parse(&svc.handle_line(
            r#"{"op":"update-profile","user":"u1","property":"avgRating Mexican","score":0.97}"#,
        ));
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(resp.get("epoch").and_then(Value::as_u64), Some(1));
        let resp = parse(&svc.handle_line(r#"{"op":"select","budget":3}"#));
        assert_eq!(resp.get("epoch").and_then(Value::as_u64), Some(1));
        // Creating a brand-new user works too.
        let resp = parse(&svc.handle_line(
            r#"{"op":"update-profile","user":"newcomer","property":"avgRating Thai","score":0.5}"#,
        ));
        assert_eq!(
            resp.get("created_user").and_then(Value::as_bool),
            Some(true)
        );
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(stats.get("users").and_then(Value::as_u64), Some(17));
        assert_eq!(stats.get("epoch").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn session_refine_round_trip_is_pinned() {
        let svc = service();
        let open = parse(&svc.handle_line(r#"{"op":"open-session"}"#));
        let session = open.get("session").and_then(Value::as_u64).unwrap();
        assert_eq!(open.get("epoch").and_then(Value::as_u64), Some(0));
        // Updates land while the session is open…
        svc.handle_line(
            r#"{"op":"update-profile","user":"u2","property":"avgRating Thai","score":0.9}"#,
        );
        // …but the session still refines against epoch 0.
        let refine = parse(&svc.handle_line(&format!(
            r#"{{"op":"refine","session":{session},"budget":3,"must_not":[0]}}"#
        )));
        assert_eq!(
            refine.get("ok").and_then(Value::as_bool),
            Some(true),
            "{refine:?}"
        );
        assert_eq!(refine.get("epoch").and_then(Value::as_u64), Some(0));
        assert_eq!(
            refine.get("users").and_then(Value::as_array).unwrap().len(),
            3
        );
        let close =
            parse(&svc.handle_line(&format!(r#"{{"op":"close-session","session":{session}}}"#)));
        assert_eq!(close.get("ok").and_then(Value::as_bool), Some(true));
        let gone = parse(&svc.handle_line(&format!(
            r#"{{"op":"refine","session":{session},"budget":3}}"#
        )));
        assert_eq!(
            gone.get("error").and_then(Value::as_str),
            Some("unknown_session")
        );
    }

    #[test]
    fn explain_reports_top_weight_coverage() {
        let svc = service();
        let resp = parse(&svc.handle_line(r#"{"op":"explain","budget":3,"top_k":5}"#));
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "{resp:?}"
        );
        let report = resp.get("report").unwrap();
        assert!(report
            .get("top_weight_coverage")
            .and_then(Value::as_f64)
            .is_some());
        assert_eq!(
            report.get("users").and_then(Value::as_array).unwrap().len(),
            3
        );
    }

    #[test]
    fn stats_expose_monotone_cache_counters_and_queue_depth() {
        let svc = service();
        let read = |svc: &PodiumService, field: &str| {
            parse(&svc.handle_line(r#"{"op":"stats"}"#))
                .get(field)
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("stats field '{field}' missing"))
        };
        // Presence, before any select ran.
        for field in [
            "cache_hits",
            "cache_misses",
            "epoch_cache_hits",
            "epoch_cache_misses",
            "queue_depth",
        ] {
            read(&svc, field);
        }
        let mut last_hits = 0;
        let mut last_misses = 0;
        for round in 0..4 {
            svc.handle_line(r#"{"op":"select","budget":3}"#);
            let hits = read(&svc, "cache_hits");
            let misses = read(&svc, "cache_misses");
            assert!(hits >= last_hits, "round {round}: hits went backwards");
            assert!(
                misses >= last_misses,
                "round {round}: misses went backwards"
            );
            last_hits = hits;
            last_misses = misses;
        }
        // Four identical selects against one epoch: one miss, three hits.
        assert_eq!(last_misses, 1);
        assert_eq!(last_hits, 3);
        assert_eq!(read(&svc, "epoch_cache_hits"), 3);
        assert_eq!(read(&svc, "epoch_cache_misses"), 1);
        // Publishing resets the per-epoch counters but never the totals.
        svc.handle_line(
            r#"{"op":"update-profile","user":"u1","property":"avgRating Thai","score":0.4}"#,
        );
        assert_eq!(read(&svc, "epoch_cache_hits"), 0);
        assert_eq!(read(&svc, "epoch_cache_misses"), 0);
        assert_eq!(read(&svc, "cache_hits"), last_hits);
        assert_eq!(read(&svc, "cache_misses"), last_misses);
    }

    #[test]
    fn refine_on_a_retired_epoch_is_a_typed_error() {
        let mut repo = UserRepository::new();
        let mex = repo.intern_property("avgRating Mexican");
        for i in 0..16 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, mex, (i as f64) / 16.0).unwrap();
        }
        let buckets = podium_core::bucket::BucketingConfig::paper_default().bucketize(&repo);
        let svc = PodiumService::new(
            repo,
            &buckets,
            ServiceConfig {
                workers: 1,
                queue_capacity: 8,
                default_deadline_ms: 2000,
                max_session_lag: 2,
                ..ServiceConfig::default()
            },
        );
        let open = parse(&svc.handle_line(r#"{"op":"open-session"}"#));
        let session = open.get("session").and_then(Value::as_u64).unwrap();
        // Two epochs of lag: still within the allowance.
        for _ in 0..2 {
            svc.handle_line(
                r#"{"op":"update-profile","user":"u1","property":"avgRating Mexican","score":0.5}"#,
            );
        }
        let ok = parse(&svc.handle_line(&format!(
            r#"{{"op":"refine","session":{session},"budget":3}}"#
        )));
        assert_eq!(ok.get("ok").and_then(Value::as_bool), Some(true), "{ok:?}");
        // A third publish pushes the pin past the allowance.
        svc.handle_line(
            r#"{"op":"update-profile","user":"u2","property":"avgRating Mexican","score":0.6}"#,
        );
        let retired = parse(&svc.handle_line(&format!(
            r#"{{"op":"refine","session":{session},"budget":3}}"#
        )));
        assert_eq!(
            retired.get("error").and_then(Value::as_str),
            Some("session_retired"),
            "{retired:?}"
        );
        // The retirement closed the session server-side.
        let gone =
            parse(&svc.handle_line(&format!(r#"{{"op":"close-session","session":{session}}}"#)));
        assert_eq!(
            gone.get("error").and_then(Value::as_str),
            Some("unknown_session"),
            "{gone:?}"
        );
    }

    #[test]
    fn batched_policy_queues_updates_until_flush() {
        let mut repo = UserRepository::new();
        let mex = repo.intern_property("avgRating Mexican");
        for i in 0..16 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, mex, (i as f64) / 16.0).unwrap();
        }
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let svc = PodiumService::new(
            repo,
            &buckets,
            ServiceConfig {
                workers: 1,
                queue_capacity: 8,
                default_deadline_ms: 2000,
                // An interval the test never reaches: only the explicit
                // flush below publishes.
                publish_policy: PublishPolicy::Batched {
                    interval_ms: 3_600_000,
                },
                warm_budget: Some(3),
                ..ServiceConfig::default()
            },
        );
        for user in ["u1", "u2", "u3"] {
            let resp = parse(&svc.handle_line(&format!(
                r#"{{"op":"update-profile","user":"{user}","property":"avgRating Mexican","score":0.9}}"#
            )));
            assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
            assert_eq!(resp.get("queued").and_then(Value::as_bool), Some(true));
            assert_eq!(
                resp.get("epoch").and_then(Value::as_u64),
                Some(0),
                "reports the last *published* epoch while queued"
            );
        }
        // Readers still see epoch 0 until the batch publishes.
        let resp = parse(&svc.handle_line(r#"{"op":"select","budget":3}"#));
        assert_eq!(resp.get("epoch").and_then(Value::as_u64), Some(0));
        assert_eq!(svc.flush().unwrap(), Some(1), "one epoch for the batch");
        assert_eq!(svc.flush().unwrap(), None, "nothing left to publish");
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(stats.get("epoch").and_then(Value::as_u64), Some(1));
        assert_eq!(
            stats.get("publish_batch_size").and_then(Value::as_u64),
            Some(3)
        );
        assert_eq!(stats.get("publishes").and_then(Value::as_u64), Some(1));
        // The flush pre-warmed the budget-3 memo: the first reader on the
        // new epoch hits it.
        let resp = parse(&svc.handle_line(r#"{"op":"select","budget":3}"#));
        assert_eq!(resp.get("epoch").and_then(Value::as_u64), Some(1));
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(
            stats.get("epoch_cache_hits").and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn flusher_thread_publishes_batches_on_its_own() {
        let mut repo = UserRepository::new();
        let mex = repo.intern_property("avgRating Mexican");
        for i in 0..8 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, mex, (i as f64) / 8.0).unwrap();
        }
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let svc = PodiumService::new(
            repo,
            &buckets,
            ServiceConfig {
                workers: 1,
                queue_capacity: 8,
                default_deadline_ms: 2000,
                publish_policy: PublishPolicy::Batched { interval_ms: 5 },
                ..ServiceConfig::default()
            },
        );
        svc.handle_line(
            r#"{"op":"update-profile","user":"u1","property":"avgRating Mexican","score":0.9}"#,
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while svc.store().epoch() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(svc.store().epoch(), 1, "flusher published the batch");
    }

    #[test]
    fn stale_ok_select_serves_carried_memo_over_the_wire() {
        let svc = service();
        // Epoch 0: memoize the budget-1 selection (u0 — covers the
        // low-Mexican bucket and the Thai group).
        let before = parse(&svc.handle_line(r#"{"op":"select","budget":1}"#));
        let before_score = before.get("score").and_then(Value::as_f64).unwrap();
        // u11 moves between the two *upper* Mexican buckets: both stay
        // non-empty and neither is covered by the memo, so it carries.
        svc.handle_line(
            r#"{"op":"update-profile","user":"u11","property":"avgRating Mexican","score":0.5}"#,
        );
        // Default read mode recomputes and says nothing about staleness.
        let fresh = parse(&svc.handle_line(r#"{"op":"select","budget":2}"#));
        assert!(fresh.get("stale").is_none());
        assert!(fresh.get("certified_score_lb").is_none());
        // Opted-in read is served from the carried epoch-0 memo.
        let stale = parse(&svc.handle_line(r#"{"op":"select","budget":1,"stale_ok":true}"#));
        assert_eq!(stale.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(stale.get("stale").and_then(Value::as_bool), Some(true));
        assert_eq!(stale.get("epoch").and_then(Value::as_u64), Some(0));
        assert_eq!(
            stale.get("certified_score_lb").and_then(Value::as_f64),
            Some(before_score)
        );
        assert_eq!(
            stale.get("users").and_then(Value::as_array).map(Vec::len),
            Some(1)
        );
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(stats.get("stale_served").and_then(Value::as_u64), Some(1));
        assert_eq!(stats.get("memos_carried").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn stats_expose_the_epoch_build_breakdown() {
        let svc = service();
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(
            stats.get("publish_mode").and_then(Value::as_str),
            Some("incremental")
        );
        assert_eq!(stats.get("publishes").and_then(Value::as_u64), Some(0));
        svc.handle_line(
            r#"{"op":"update-profile","user":"u11","property":"avgRating Mexican","score":0.5}"#,
        );
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        for field in [
            "publishes",
            "patched_publishes",
            "rebuilt_publishes",
            "memos_carried",
            "memos_invalidated",
            "publish_batch_size",
            "csr_patch_micros",
            "full_rebuild_micros",
            "publish_p50_micros",
            "publish_p99_micros",
            "stale_served",
        ] {
            assert!(
                stats.get(field).and_then(Value::as_u64).is_some(),
                "stats field '{field}' missing: {stats:?}"
            );
        }
        assert_eq!(stats.get("publishes").and_then(Value::as_u64), Some(1));
        assert_eq!(
            stats.get("patched_publishes").and_then(Value::as_u64),
            Some(1),
            "a same-universe single-user move patches the CSR"
        );
        assert_eq!(
            stats.get("publish_batch_size").and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn malformed_lines_never_panic() {
        let svc = service();
        for line in [
            "",
            "garbage",
            r#"{"op":"select"}"#,
            r#"{"op":"refine","session":99,"budget":3}"#,
            r#"{"op":"update-profile","user":"u1","property":"nope","score":0.5}"#,
            r#"{"op":"select","budget":0}"#,
        ] {
            let resp = parse(&svc.handle_line(line));
            assert_eq!(
                resp.get("ok").and_then(Value::as_bool),
                Some(false),
                "line {line}"
            );
        }
    }
}
