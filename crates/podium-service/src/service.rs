//! [`PodiumService`]: the embeddable facade tying the snapshot store,
//! writer, executor, and session layer together behind the JSONL protocol.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use podium_core::bucket::PropertyBuckets;
use podium_core::explain::SelectionReport;
use podium_core::instance::DiversificationInstance;
use podium_core::profile::UserRepository;
use serde_json::Value;

use crate::error::ServiceError;
use crate::executor::{ExecutorConfig, QueryExecutor};
use crate::poison;
use crate::protocol::{
    self, error_response, num_f64, num_u64, ok_response, parse_request, string, string_array,
    Request,
};
use crate::session::SessionManager;
use crate::snapshot::{RepositoryWriter, SnapshotStore};

/// Service sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads in the query executor.
    pub workers: usize,
    /// Bounded queue capacity (admission control threshold).
    pub queue_capacity: usize,
    /// Default per-request deadline in milliseconds, for requests that do
    /// not carry a `deadline_ms`.
    pub default_deadline_ms: u64,
    /// How many epochs a session's pinned snapshot may lag the current
    /// epoch before `refine` rejects with `session_retired`. Keeping a
    /// long-abandoned session's snapshot alive pins its whole repository
    /// copy in memory; this bounds that. `u64::MAX` disables retirement.
    pub max_session_lag: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let exec = ExecutorConfig::default();
        Self {
            workers: exec.workers,
            queue_capacity: exec.queue_capacity,
            default_deadline_ms: exec.default_deadline.as_millis() as u64,
            max_session_lag: 1024,
        }
    }
}

/// Cumulative (monotone across epochs) memo-cache counters for the
/// `select` path. Per-epoch counters live on each [`Snapshot`]; these
/// accumulate over the service's lifetime so dashboards see totals that
/// never reset when an epoch is published.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheCounters {
    /// `(hits, misses)` so far.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The serving facade. `Send + Sync`; share it behind an `Arc` between
/// connection handler threads.
#[derive(Debug)]
pub struct PodiumService {
    store: Arc<SnapshotStore>,
    writer: Mutex<RepositoryWriter>,
    executor: QueryExecutor,
    sessions: SessionManager,
    max_session_lag: u64,
    cache_counters: CacheCounters,
}

impl PodiumService {
    /// Builds the service: epoch-0 snapshot from `repo` under `buckets`,
    /// then the worker pool.
    pub fn new(repo: UserRepository, buckets: &PropertyBuckets, config: ServiceConfig) -> Self {
        let (store, writer) = RepositoryWriter::new(repo, buckets);
        let executor = QueryExecutor::new(
            Arc::clone(&store),
            ExecutorConfig {
                workers: config.workers,
                queue_capacity: config.queue_capacity,
                default_deadline: Duration::from_millis(config.default_deadline_ms),
            },
        );
        Self {
            store,
            writer: Mutex::new(writer),
            executor,
            sessions: SessionManager::new(),
            max_session_lag: config.max_session_lag,
            cache_counters: CacheCounters::default(),
        }
    }

    /// Cumulative memo-cache counters (monotone across epochs).
    pub fn cache_counters(&self) -> &CacheCounters {
        &self.cache_counters
    }

    /// The snapshot store (for embedding callers that read directly).
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// The query executor.
    pub fn executor(&self) -> &QueryExecutor {
        &self.executor
    }

    /// Handles one raw request line, returning the response line (without
    /// trailing newline). Never panics on malformed input — parse and
    /// execution errors map to `{"ok":false,...}` responses.
    pub fn handle_line(&self, line: &str) -> String {
        match parse_request(line) {
            Ok(req) => match self.handle(req) {
                Ok(response) => response,
                Err(e) => error_response(&e),
            },
            Err(e) => error_response(&e),
        }
    }

    /// Handles a parsed request.
    pub fn handle(&self, request: Request) -> Result<String, ServiceError> {
        match request {
            Request::Select {
                params,
                deadline_ms,
            } => {
                let started = Instant::now();
                let outcome = self
                    .executor
                    .run_select(params, deadline_ms.map(Duration::from_millis))?;
                self.cache_counters.record(outcome.cache_hit);
                let elapsed_us = started.elapsed().as_micros() as u64;
                Ok(ok_response(vec![
                    ("epoch", num_u64(outcome.epoch)),
                    ("users", string_array(&outcome.names)),
                    ("score", num_f64(outcome.selection.score)),
                    ("elapsed_us", num_u64(elapsed_us)),
                ]))
            }
            Request::Explain { params, top_k } => {
                let report: Result<(u64, Value), ServiceError> =
                    self.executor.run(move |snapshot| {
                        let outcome = snapshot.select(&params, None)?;
                        let weights = params.weight.weights(snapshot.groups());
                        let covs = params.cov.cov(snapshot.groups(), params.budget);
                        let inst = DiversificationInstance::new(snapshot.groups(), weights, covs);
                        let report = SelectionReport::build(
                            &inst,
                            snapshot.repo(),
                            &outcome.selection,
                            top_k,
                        );
                        let value = serde_json::to_value(&report).map_err(|e| {
                            ServiceError::BadRequest(format!("report serialization: {e}"))
                        })?;
                        Ok((outcome.epoch, value))
                    })?;
                let (epoch, report) = report?;
                Ok(ok_response(vec![
                    ("epoch", num_u64(epoch)),
                    ("report", report),
                ]))
            }
            Request::OpenSession => {
                let (id, epoch) = self.sessions.open(&self.store);
                Ok(ok_response(vec![
                    ("session", num_u64(id)),
                    ("epoch", num_u64(epoch)),
                ]))
            }
            Request::CloseSession { session } => {
                self.sessions.close(session)?;
                Ok(ok_response(vec![("closed", num_u64(session))]))
            }
            Request::Refine {
                session,
                delta,
                params,
            } => {
                // Retire sessions whose pinned epoch has fallen too far
                // behind: the pinned snapshot holds a full repository copy
                // alive, and after enough churn the client's group ids no
                // longer describe the live data anyway.
                let current = self.store.epoch();
                if let Some(retired) = self.sessions.with_session(session, |s| {
                    let pinned = s.snapshot().epoch();
                    Ok(current.saturating_sub(pinned) > self.max_session_lag)
                        .map(|r| r.then_some(pinned))
                })? {
                    self.sessions.close(session)?;
                    return Err(ServiceError::SessionRetired {
                        session,
                        pinned: retired,
                        current,
                    });
                }
                self.sessions.with_session(session, |s| {
                    let custom = s.refine(&delta, params.weight, params.cov, params.budget)?;
                    let names = s.snapshot().user_names(custom.users());
                    Ok(ok_response(vec![
                        ("epoch", num_u64(s.snapshot().epoch())),
                        ("session", num_u64(session)),
                        ("users", string_array(&names)),
                        ("priority_score", num_f64(custom.priority_score())),
                        ("standard_score", num_f64(custom.standard_score())),
                        ("pool_size", num_u64(custom.pool_size as u64)),
                        (
                            "feedback_group_coverage",
                            num_f64(custom.feedback_group_coverage),
                        ),
                    ]))
                })
            }
            Request::UpdateProfile { update } => {
                // A panic mid-`apply` can leave the writer's incremental
                // state inconsistent; refuse further writes rather than
                // publish from it (reads keep serving the last snapshot).
                let mut writer = poison::checked(self.writer.lock())?;
                let outcome = writer.apply(&update)?;
                let epoch = writer.publish();
                Ok(ok_response(vec![
                    ("epoch", num_u64(epoch)),
                    ("user", string(update.user)),
                    ("created_user", Value::Bool(outcome.created_user)),
                    ("regrouped", Value::Bool(outcome.regrouped)),
                ]))
            }
            Request::Stats => {
                let snapshot = self.store.load();
                let stats = self.executor.stats();
                let (epoch_hits, epoch_misses) = snapshot.cache_stats();
                let (hits, misses) = self.cache_counters.totals();
                Ok(ok_response(vec![
                    ("epoch", num_u64(snapshot.epoch())),
                    ("users", num_u64(snapshot.repo().user_count() as u64)),
                    ("groups", num_u64(snapshot.groups().len() as u64)),
                    ("sessions", num_u64(self.sessions.len() as u64)),
                    ("queue_depth", num_u64(self.executor.queue_depth() as u64)),
                    (
                        "submitted",
                        num_u64(stats.submitted.load(Ordering::Relaxed)),
                    ),
                    ("rejected", num_u64(stats.rejected.load(Ordering::Relaxed))),
                    (
                        "completed",
                        num_u64(stats.completed.load(Ordering::Relaxed)),
                    ),
                    ("cache_hits", num_u64(hits)),
                    ("cache_misses", num_u64(misses)),
                    ("epoch_cache_hits", num_u64(epoch_hits)),
                    ("epoch_cache_misses", num_u64(epoch_misses)),
                ]))
            }
        }
    }
}

// Re-exported for front-ends that pretty-print protocol documentation.
pub use protocol::Request as ProtocolRequest;

#[cfg(test)]
mod tests {
    use super::*;
    use podium_core::bucket::BucketingConfig;

    fn service() -> PodiumService {
        let mut repo = UserRepository::new();
        let mex = repo.intern_property("avgRating Mexican");
        let thai = repo.intern_property("avgRating Thai");
        for i in 0..16 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, mex, (i as f64) / 16.0).unwrap();
            if i % 4 == 0 {
                repo.set_score(u, thai, 0.85).unwrap();
            }
        }
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        PodiumService::new(
            repo,
            &buckets,
            ServiceConfig {
                workers: 2,
                queue_capacity: 32,
                default_deadline_ms: 2000,
                ..ServiceConfig::default()
            },
        )
    }

    fn parse(line: &str) -> Value {
        serde_json::from_str(line).unwrap()
    }

    #[test]
    fn select_round_trip() {
        let svc = service();
        let resp = parse(&svc.handle_line(r#"{"op":"select","budget":3}"#));
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(resp.get("epoch").and_then(Value::as_u64), Some(0));
        assert_eq!(
            resp.get("users").and_then(Value::as_array).unwrap().len(),
            3
        );
        assert!(resp.get("score").and_then(Value::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn update_bumps_epoch_and_next_select_sees_it() {
        let svc = service();
        let resp = parse(&svc.handle_line(
            r#"{"op":"update-profile","user":"u1","property":"avgRating Mexican","score":0.97}"#,
        ));
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(resp.get("epoch").and_then(Value::as_u64), Some(1));
        let resp = parse(&svc.handle_line(r#"{"op":"select","budget":3}"#));
        assert_eq!(resp.get("epoch").and_then(Value::as_u64), Some(1));
        // Creating a brand-new user works too.
        let resp = parse(&svc.handle_line(
            r#"{"op":"update-profile","user":"newcomer","property":"avgRating Thai","score":0.5}"#,
        ));
        assert_eq!(
            resp.get("created_user").and_then(Value::as_bool),
            Some(true)
        );
        let stats = parse(&svc.handle_line(r#"{"op":"stats"}"#));
        assert_eq!(stats.get("users").and_then(Value::as_u64), Some(17));
        assert_eq!(stats.get("epoch").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn session_refine_round_trip_is_pinned() {
        let svc = service();
        let open = parse(&svc.handle_line(r#"{"op":"open-session"}"#));
        let session = open.get("session").and_then(Value::as_u64).unwrap();
        assert_eq!(open.get("epoch").and_then(Value::as_u64), Some(0));
        // Updates land while the session is open…
        svc.handle_line(
            r#"{"op":"update-profile","user":"u2","property":"avgRating Thai","score":0.9}"#,
        );
        // …but the session still refines against epoch 0.
        let refine = parse(&svc.handle_line(&format!(
            r#"{{"op":"refine","session":{session},"budget":3,"must_not":[0]}}"#
        )));
        assert_eq!(
            refine.get("ok").and_then(Value::as_bool),
            Some(true),
            "{refine:?}"
        );
        assert_eq!(refine.get("epoch").and_then(Value::as_u64), Some(0));
        assert_eq!(
            refine.get("users").and_then(Value::as_array).unwrap().len(),
            3
        );
        let close =
            parse(&svc.handle_line(&format!(r#"{{"op":"close-session","session":{session}}}"#)));
        assert_eq!(close.get("ok").and_then(Value::as_bool), Some(true));
        let gone = parse(&svc.handle_line(&format!(
            r#"{{"op":"refine","session":{session},"budget":3}}"#
        )));
        assert_eq!(
            gone.get("error").and_then(Value::as_str),
            Some("unknown_session")
        );
    }

    #[test]
    fn explain_reports_top_weight_coverage() {
        let svc = service();
        let resp = parse(&svc.handle_line(r#"{"op":"explain","budget":3,"top_k":5}"#));
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "{resp:?}"
        );
        let report = resp.get("report").unwrap();
        assert!(report
            .get("top_weight_coverage")
            .and_then(Value::as_f64)
            .is_some());
        assert_eq!(
            report.get("users").and_then(Value::as_array).unwrap().len(),
            3
        );
    }

    #[test]
    fn stats_expose_monotone_cache_counters_and_queue_depth() {
        let svc = service();
        let read = |svc: &PodiumService, field: &str| {
            parse(&svc.handle_line(r#"{"op":"stats"}"#))
                .get(field)
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("stats field '{field}' missing"))
        };
        // Presence, before any select ran.
        for field in [
            "cache_hits",
            "cache_misses",
            "epoch_cache_hits",
            "epoch_cache_misses",
            "queue_depth",
        ] {
            read(&svc, field);
        }
        let mut last_hits = 0;
        let mut last_misses = 0;
        for round in 0..4 {
            svc.handle_line(r#"{"op":"select","budget":3}"#);
            let hits = read(&svc, "cache_hits");
            let misses = read(&svc, "cache_misses");
            assert!(hits >= last_hits, "round {round}: hits went backwards");
            assert!(
                misses >= last_misses,
                "round {round}: misses went backwards"
            );
            last_hits = hits;
            last_misses = misses;
        }
        // Four identical selects against one epoch: one miss, three hits.
        assert_eq!(last_misses, 1);
        assert_eq!(last_hits, 3);
        assert_eq!(read(&svc, "epoch_cache_hits"), 3);
        assert_eq!(read(&svc, "epoch_cache_misses"), 1);
        // Publishing resets the per-epoch counters but never the totals.
        svc.handle_line(
            r#"{"op":"update-profile","user":"u1","property":"avgRating Thai","score":0.4}"#,
        );
        assert_eq!(read(&svc, "epoch_cache_hits"), 0);
        assert_eq!(read(&svc, "epoch_cache_misses"), 0);
        assert_eq!(read(&svc, "cache_hits"), last_hits);
        assert_eq!(read(&svc, "cache_misses"), last_misses);
    }

    #[test]
    fn refine_on_a_retired_epoch_is_a_typed_error() {
        let mut repo = UserRepository::new();
        let mex = repo.intern_property("avgRating Mexican");
        for i in 0..16 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, mex, (i as f64) / 16.0).unwrap();
        }
        let buckets = podium_core::bucket::BucketingConfig::paper_default().bucketize(&repo);
        let svc = PodiumService::new(
            repo,
            &buckets,
            ServiceConfig {
                workers: 1,
                queue_capacity: 8,
                default_deadline_ms: 2000,
                max_session_lag: 2,
            },
        );
        let open = parse(&svc.handle_line(r#"{"op":"open-session"}"#));
        let session = open.get("session").and_then(Value::as_u64).unwrap();
        // Two epochs of lag: still within the allowance.
        for _ in 0..2 {
            svc.handle_line(
                r#"{"op":"update-profile","user":"u1","property":"avgRating Mexican","score":0.5}"#,
            );
        }
        let ok = parse(&svc.handle_line(&format!(
            r#"{{"op":"refine","session":{session},"budget":3}}"#
        )));
        assert_eq!(ok.get("ok").and_then(Value::as_bool), Some(true), "{ok:?}");
        // A third publish pushes the pin past the allowance.
        svc.handle_line(
            r#"{"op":"update-profile","user":"u2","property":"avgRating Mexican","score":0.6}"#,
        );
        let retired = parse(&svc.handle_line(&format!(
            r#"{{"op":"refine","session":{session},"budget":3}}"#
        )));
        assert_eq!(
            retired.get("error").and_then(Value::as_str),
            Some("session_retired"),
            "{retired:?}"
        );
        // The retirement closed the session server-side.
        let gone =
            parse(&svc.handle_line(&format!(r#"{{"op":"close-session","session":{session}}}"#)));
        assert_eq!(
            gone.get("error").and_then(Value::as_str),
            Some("unknown_session"),
            "{gone:?}"
        );
    }

    #[test]
    fn malformed_lines_never_panic() {
        let svc = service();
        for line in [
            "",
            "garbage",
            r#"{"op":"select"}"#,
            r#"{"op":"refine","session":99,"budget":3}"#,
            r#"{"op":"update-profile","user":"u1","property":"nope","score":0.5}"#,
            r#"{"op":"select","budget":0}"#,
        ] {
            let resp = parse(&svc.handle_line(line));
            assert_eq!(
                resp.get("ok").and_then(Value::as_bool),
                Some(false),
                "line {line}"
            );
        }
    }
}
