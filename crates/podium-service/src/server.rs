//! Transport layer: the JSONL protocol over stdio or a Unix domain
//! socket, using only `std`.
//!
//! Both transports frame one request per line and one response per line.
//! Stdio serving is single-client by nature; the Unix socket accepts any
//! number of concurrent connections, each drained by its own thread, all
//! sharing one [`PodiumService`] behind an `Arc`.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Arc;

use crate::service::PodiumService;

/// Serves requests from `reader`, writing one response line per request
/// line to `writer`. Returns when the reader reaches EOF. Blank lines are
/// skipped (convenient for interactive use).
pub fn serve_lines<R: BufRead, W: Write>(
    service: &PodiumService,
    reader: R,
    mut writer: W,
) -> io::Result<()> {
    serve_lines_from(service, "stdio", reader, &mut writer)
}

/// [`serve_lines`] with an explicit peer label for per-peer health
/// tracking in the `stats` op.
pub fn serve_lines_from<R: BufRead, W: Write>(
    service: &PodiumService,
    peer: &str,
    reader: R,
    writer: &mut W,
) -> io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line_from(peer, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// Serves a single client over stdin/stdout until EOF.
pub fn serve_stdio(service: &PodiumService) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    serve_lines_from(service, "stdio", stdin.lock(), &mut out)
}

fn handle_connection(service: &PodiumService, stream: UnixStream) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    serve_lines_from(service, "unix", reader, &mut writer)
}

/// Binds `path` and serves connections forever (one thread per client).
/// A stale socket file at `path` is removed before binding. The listener
/// never returns under normal operation; callers stop it by terminating
/// the process (the CLI) or leaking the serving thread (tests).
pub fn serve_unix(service: Arc<PodiumService>, path: &Path) -> io::Result<()> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    for stream in listener.incoming() {
        let stream = stream?;
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            // A client hanging up mid-request surfaces as an io error
            // here; that only ends this connection, not the server.
            let _ = handle_connection(&service, stream);
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use podium_core::bucket::BucketingConfig;
    use podium_core::profile::UserRepository;
    use serde_json::Value;
    use std::time::Duration;

    fn service() -> Arc<PodiumService> {
        let mut repo = UserRepository::new();
        let p = repo.intern_property("topic");
        for i in 0..10 {
            let u = repo.add_user(format!("u{i}"));
            repo.set_score(u, p, (i as f64) / 10.0).unwrap();
        }
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        Arc::new(PodiumService::new(
            repo,
            &buckets,
            ServiceConfig {
                workers: 2,
                queue_capacity: 16,
                default_deadline_ms: 2000,
                ..ServiceConfig::default()
            },
        ))
    }

    #[test]
    fn serve_lines_round_trips_and_skips_blanks() {
        let svc = service();
        let input = "\n{\"op\":\"select\",\"budget\":2}\nnot json\n{\"op\":\"stats\"}\n";
        let mut output = Vec::new();
        serve_lines(&svc, input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "blank line produced no response: {text}");
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.get("ok").and_then(Value::as_bool), Some(true));
        let second: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second.get("ok").and_then(Value::as_bool), Some(false));
        let third: Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(third.get("epoch").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn unix_socket_serves_concurrent_clients() {
        let svc = service();
        let dir = std::env::temp_dir().join(format!("podium-service-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("server-test.sock");
        {
            let svc = Arc::clone(&svc);
            let sock = sock.clone();
            std::thread::spawn(move || {
                let _ = serve_unix(svc, &sock);
            });
        }
        // Wait for the listener to come up.
        let mut tries = 0;
        while !sock.exists() && tries < 200 {
            std::thread::sleep(Duration::from_millis(10));
            tries += 1;
        }
        let clients: Vec<_> = (0..3)
            .map(|_| {
                let sock = sock.clone();
                std::thread::spawn(move || {
                    let stream = UnixStream::connect(&sock).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut stream = stream;
                    for _ in 0..5 {
                        stream
                            .write_all(b"{\"op\":\"select\",\"budget\":2}\n")
                            .unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        let v: Value = serde_json::from_str(&line).unwrap();
                        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
                        assert_eq!(v.get("users").and_then(Value::as_array).unwrap().len(), 2);
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        let _ = std::fs::remove_file(&sock);
    }
}
