//! The line-delimited JSON protocol: one request object per line in, one
//! response object per line out.
//!
//! Requests carry an `op` discriminator:
//!
//! | op               | fields                                                        |
//! |------------------|---------------------------------------------------------------|
//! | `select`         | `budget`, `weights?`, `cov?`, `deadline_ms?`, `stale_ok?`     |
//! | `explain`        | `budget`, `weights?`, `cov?`, `top_k?`                        |
//! | `open-session`   | —                                                             |
//! | `refine`         | `session`, `budget`, `must_have?`, `must_not?`, `priority?`, `standard?`, `reset?`, `weights?`, `cov?` |
//! | `close-session`  | `session`                                                     |
//! | `update-profile` | `user`, `property`, `score` (number or `null` to retract)     |
//! | `stats`          | —                                                             |
//!
//! Every response carries `ok` (boolean) and, on success, the `epoch` the
//! request was served from. Failures carry a stable `error` code (see
//! [`crate::error::ServiceError::code`]) and a human-readable `message`.
//! The full code set — clients branch on these strings, so they are part
//! of the wire contract:
//!
//! | `error`             | meaning                                        | client action          |
//! |---------------------|------------------------------------------------|------------------------|
//! | `overloaded`        | admission control rejected: queue full         | retry with backoff     |
//! | `deadline_exceeded` | deadline expired before selection completed    | retry or relax deadline|
//! | `bad_request`       | malformed request or unknown entity            | fix the request        |
//! | `unknown_session`   | session id never opened or already closed      | reopen a session       |
//! | `session_retired`   | pinned epoch fell behind `max_session_lag`     | reopen and replay      |
//! | `shutting_down`     | service is draining; no new work accepted      | fail over              |
//! | `core`              | selection-layer error (e.g. zero budget)       | fix the request        |
//! | `durability`        | WAL append/fsync or checkpoint/recovery failed | fail over; the update was not made durable |
//!
//! Wire flags — optional request booleans that change serving semantics:
//!
//! | flag       | op       | meaning                                                        |
//! |------------|----------|----------------------------------------------------------------|
//! | `stale_ok` | `select` | bounded-staleness read mode: the response may carry a selection computed on an earlier epoch (fields `stale: true`, `epoch` = compute epoch, `certified_score_lb`) instead of recomputing against the current one. Omitted or `false`: always fresh — the default behavior is unchanged. |
//!
//! The parser is hand-rolled over [`serde_json::Value`]: the vendored
//! serde stand-in has no tagged-enum derive, and a by-hand reader keeps
//! the error messages precise anyway.

use serde_json::Value;

use crate::error::ServiceError;
use crate::session::FeedbackDelta;
use crate::snapshot::{ProfileUpdate, SelectParams};
use podium_core::weights::{CovScheme, WeightScheme};

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run BASE-DIVERSITY selection.
    Select {
        /// Scheme and budget.
        params: SelectParams,
        /// Per-request deadline override, in milliseconds.
        deadline_ms: Option<u64>,
        /// Bounded-staleness read mode: permit serving a carried-forward
        /// selection from an earlier epoch (tagged `stale` with a
        /// certified score lower bound) instead of recomputing.
        stale_ok: bool,
    },
    /// Run a selection and return the full explanation report.
    Explain {
        /// Scheme and budget.
        params: SelectParams,
        /// Top-k bound of the headline coverage statistic.
        top_k: usize,
    },
    /// Open a customization session pinned to the current epoch.
    OpenSession,
    /// Merge feedback into a session and re-run CUSTOM-DIVERSITY.
    Refine {
        /// Session id from `open-session`.
        session: u64,
        /// Feedback delta to merge.
        delta: FeedbackDelta,
        /// Scheme and budget for the refined selection.
        params: SelectParams,
    },
    /// Close a session.
    CloseSession {
        /// Session id to close.
        session: u64,
    },
    /// Apply one profile update and publish a new epoch.
    UpdateProfile {
        /// The update.
        update: ProfileUpdate,
    },
    /// Service counters and current epoch.
    Stats,
}

fn bad(msg: impl Into<String>) -> ServiceError {
    ServiceError::BadRequest(msg.into())
}

fn field<'v>(obj: &'v Value, name: &str) -> Result<&'v Value, ServiceError> {
    obj.get(name)
        .ok_or_else(|| bad(format!("missing field '{name}'")))
}

fn usize_field(obj: &Value, name: &str) -> Result<usize, ServiceError> {
    field(obj, name)?
        .as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| bad(format!("field '{name}' must be a non-negative integer")))
}

fn u64_field(obj: &Value, name: &str) -> Result<u64, ServiceError> {
    field(obj, name)?
        .as_u64()
        .ok_or_else(|| bad(format!("field '{name}' must be a non-negative integer")))
}

fn str_field<'v>(obj: &'v Value, name: &str) -> Result<&'v str, ServiceError> {
    field(obj, name)?
        .as_str()
        .ok_or_else(|| bad(format!("field '{name}' must be a string")))
}

fn group_list(obj: &Value, name: &str) -> Result<Vec<u32>, ServiceError> {
    match obj.get(name) {
        None => Ok(Vec::new()),
        Some(v) => v
            .as_array()
            .ok_or_else(|| bad(format!("field '{name}' must be an array of group ids")))?
            .iter()
            .map(|e| {
                e.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| bad(format!("field '{name}' holds a non-id element")))
            })
            .collect(),
    }
}

fn parse_weights(obj: &Value) -> Result<WeightScheme, ServiceError> {
    match obj.get("weights").and_then(Value::as_str) {
        None => Ok(WeightScheme::LinearBySize),
        Some("lbs") | Some("linear_by_size") => Ok(WeightScheme::LinearBySize),
        Some("iden") | Some("identical") => Ok(WeightScheme::Identical),
        Some(other) => Err(bad(format!(
            "unknown weight scheme '{other}' (expected lbs|iden)"
        ))),
    }
}

fn parse_cov(obj: &Value) -> Result<CovScheme, ServiceError> {
    match obj.get("cov").and_then(Value::as_str) {
        None => Ok(CovScheme::Single),
        Some("single") => Ok(CovScheme::Single),
        Some("prop") | Some("proportional") => Ok(CovScheme::Proportional),
        Some(other) => Err(bad(format!(
            "unknown coverage scheme '{other}' (expected single|prop)"
        ))),
    }
}

fn parse_select_params(obj: &Value) -> Result<SelectParams, ServiceError> {
    Ok(SelectParams {
        budget: usize_field(obj, "budget")?,
        weight: parse_weights(obj)?,
        cov: parse_cov(obj)?,
    })
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| bad(format!("request is not valid JSON: {e}")))?;
    if value.as_object().is_none() {
        return Err(bad("request must be a JSON object"));
    }
    let op = str_field(&value, "op")?;
    match op {
        "select" => Ok(Request::Select {
            params: parse_select_params(&value)?,
            deadline_ms: match value.get("deadline_ms") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| bad("field 'deadline_ms' must be a non-negative integer"))?,
                ),
            },
            stale_ok: match value.get("stale_ok") {
                None | Some(Value::Null) => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| bad("field 'stale_ok' must be a boolean"))?,
            },
        }),
        "explain" => Ok(Request::Explain {
            params: parse_select_params(&value)?,
            top_k: match value.get("top_k") {
                None => 10,
                Some(v) => v
                    .as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| bad("field 'top_k' must be a non-negative integer"))?,
            },
        }),
        "open-session" => Ok(Request::OpenSession),
        "close-session" => Ok(Request::CloseSession {
            session: u64_field(&value, "session")?,
        }),
        "refine" => Ok(Request::Refine {
            session: u64_field(&value, "session")?,
            delta: FeedbackDelta {
                must_have: group_list(&value, "must_have")?,
                must_not: group_list(&value, "must_not")?,
                priority: group_list(&value, "priority")?,
                standard: match value.get("standard") {
                    None | Some(Value::Null) => None,
                    Some(_) => Some(group_list(&value, "standard")?),
                },
                reset: value.get("reset").and_then(Value::as_bool).unwrap_or(false),
            },
            params: parse_select_params(&value)?,
        }),
        "update-profile" => {
            let score = match field(&value, "score")? {
                Value::Null => None,
                v => Some(
                    v.as_f64()
                        .ok_or_else(|| bad("field 'score' must be a number or null"))?,
                ),
            };
            Ok(Request::UpdateProfile {
                update: ProfileUpdate {
                    user: str_field(&value, "user")?.to_owned(),
                    property: str_field(&value, "property")?.to_owned(),
                    score,
                },
            })
        }
        "stats" => Ok(Request::Stats),
        other => Err(bad(format!("unknown op '{other}'"))),
    }
}

// ---------------------------------------------------------------------------
// Request encoding (the client side of the wire).

fn group_id_array(ids: &[u32]) -> Value {
    Value::Array(ids.iter().map(|&g| num_u64(g as u64)).collect())
}

fn weights_tag(scheme: WeightScheme) -> &'static str {
    match scheme {
        WeightScheme::LinearBySize => "lbs",
        WeightScheme::Identical => "iden",
    }
}

fn cov_tag(scheme: CovScheme) -> &'static str {
    match scheme {
        CovScheme::Single => "single",
        CovScheme::Proportional => "prop",
    }
}

fn push_select_params(pairs: &mut Vec<(String, Value)>, params: &SelectParams) {
    pairs.push(("budget".to_owned(), num_u64(params.budget as u64)));
    pairs.push((
        "weights".to_owned(),
        Value::String(weights_tag(params.weight).to_owned()),
    ));
    pairs.push((
        "cov".to_owned(),
        Value::String(cov_tag(params.cov).to_owned()),
    ));
}

/// Encodes a request as one protocol line (no trailing newline), the exact
/// inverse of [`parse_request`]: `parse_request(&encode_request(r)) == r`
/// for every well-formed request. This is what [`crate::client`] puts on
/// the wire and what the round-trip proptests pivot on.
pub fn encode_request(request: &Request) -> String {
    let mut pairs: Vec<(String, Value)> = Vec::new();
    let mut op = |tag: &str| pairs.push(("op".to_owned(), Value::String(tag.to_owned())));
    match request {
        Request::Select {
            params,
            deadline_ms,
            stale_ok,
        } => {
            op("select");
            push_select_params(&mut pairs, params);
            if let Some(ms) = deadline_ms {
                pairs.push(("deadline_ms".to_owned(), num_u64(*ms)));
            }
            if *stale_ok {
                pairs.push(("stale_ok".to_owned(), Value::Bool(true)));
            }
        }
        Request::Explain { params, top_k } => {
            op("explain");
            push_select_params(&mut pairs, params);
            pairs.push(("top_k".to_owned(), num_u64(*top_k as u64)));
        }
        Request::OpenSession => op("open-session"),
        Request::CloseSession { session } => {
            op("close-session");
            pairs.push(("session".to_owned(), num_u64(*session)));
        }
        Request::Refine {
            session,
            delta,
            params,
        } => {
            op("refine");
            pairs.push(("session".to_owned(), num_u64(*session)));
            pairs.push(("must_have".to_owned(), group_id_array(&delta.must_have)));
            pairs.push(("must_not".to_owned(), group_id_array(&delta.must_not)));
            pairs.push(("priority".to_owned(), group_id_array(&delta.priority)));
            if let Some(standard) = &delta.standard {
                pairs.push(("standard".to_owned(), group_id_array(standard)));
            }
            pairs.push(("reset".to_owned(), Value::Bool(delta.reset)));
            push_select_params(&mut pairs, params);
        }
        Request::UpdateProfile { update } => {
            op("update-profile");
            pairs.push(("user".to_owned(), Value::String(update.user.clone())));
            pairs.push((
                "property".to_owned(),
                Value::String(update.property.clone()),
            ));
            pairs.push((
                "score".to_owned(),
                match update.score {
                    Some(s) => num_f64(s),
                    None => Value::Null,
                },
            ));
        }
        Request::Stats => op("stats"),
    }
    // podium-lint: allow(expect) — value trees built from plain strings/numbers/bools cannot fail to serialize
    serde_json::to_string(&Value::Object(pairs)).expect("request serialization is infallible")
}

// ---------------------------------------------------------------------------
// Response construction.

/// Builds a success response line from `(key, value)` fields (prefixed
/// with `"ok": true`).
pub fn ok_response(fields: Vec<(&str, Value)>) -> String {
    let mut pairs = vec![("ok".to_owned(), Value::Bool(true))];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_owned(), v)));
    // podium-lint: allow(expect) — value trees built from plain strings/numbers/bools cannot fail to serialize
    serde_json::to_string(&Value::Object(pairs)).expect("response serialization is infallible")
}

/// Builds the failure response line for an error.
pub fn error_response(err: &ServiceError) -> String {
    let pairs = vec![
        ("ok".to_owned(), Value::Bool(false)),
        ("error".to_owned(), Value::String(err.code().to_owned())),
        ("message".to_owned(), Value::String(err.to_string())),
    ];
    // podium-lint: allow(expect) — value trees built from plain strings/numbers/bools cannot fail to serialize
    serde_json::to_string(&Value::Object(pairs)).expect("response serialization is infallible")
}

/// A `u64` JSON number.
pub fn num_u64(n: u64) -> Value {
    Value::Number(serde_json::Number::PosInt(n))
}

/// An `f64` JSON number.
pub fn num_f64(x: f64) -> Value {
    Value::Number(serde_json::Number::Float(x))
}

/// A JSON string.
pub fn string(s: impl Into<String>) -> Value {
    Value::String(s.into())
}

/// A JSON array of strings.
pub fn string_array<S: AsRef<str>>(items: &[S]) -> Value {
    Value::Array(
        items
            .iter()
            .map(|s| Value::String(s.as_ref().to_owned()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_select() {
        let req = parse_request(r#"{"op":"select","budget":5}"#).unwrap();
        assert_eq!(
            req,
            Request::Select {
                params: SelectParams {
                    budget: 5,
                    weight: WeightScheme::LinearBySize,
                    cov: CovScheme::Single,
                },
                deadline_ms: None,
                stale_ok: false,
            }
        );
    }

    #[test]
    fn parses_full_select() {
        let req = parse_request(
            r#"{"op":"select","budget":8,"weights":"iden","cov":"prop","deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Select {
                params: SelectParams {
                    budget: 8,
                    weight: WeightScheme::Identical,
                    cov: CovScheme::Proportional,
                },
                deadline_ms: Some(250),
                stale_ok: false,
            }
        );
    }

    #[test]
    fn parses_refine_with_feedback() {
        let req = parse_request(
            r#"{"op":"refine","session":3,"budget":4,"must_have":[1,2],"must_not":[7],"standard":[0],"reset":true}"#,
        )
        .unwrap();
        match req {
            Request::Refine {
                session,
                delta,
                params,
            } => {
                assert_eq!(session, 3);
                assert_eq!(delta.must_have, vec![1, 2]);
                assert_eq!(delta.must_not, vec![7]);
                assert!(delta.priority.is_empty());
                assert_eq!(delta.standard, Some(vec![0]));
                assert!(delta.reset);
                assert_eq!(params.budget, 4);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_update_profile_set_and_retract() {
        let set = parse_request(
            r#"{"op":"update-profile","user":"Ada","property":"avgRating Thai","score":0.8}"#,
        )
        .unwrap();
        assert_eq!(
            set,
            Request::UpdateProfile {
                update: ProfileUpdate {
                    user: "Ada".into(),
                    property: "avgRating Thai".into(),
                    score: Some(0.8),
                },
            }
        );
        let retract = parse_request(
            r#"{"op":"update-profile","user":"Ada","property":"avgRating Thai","score":null}"#,
        )
        .unwrap();
        assert_eq!(
            retract,
            Request::UpdateProfile {
                update: ProfileUpdate {
                    user: "Ada".into(),
                    property: "avgRating Thai".into(),
                    score: None,
                },
            }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("not json", "not valid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"budget":5}"#, "missing field 'op'"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (r#"{"op":"select"}"#, "missing field 'budget'"),
            (r#"{"op":"select","budget":-3}"#, "non-negative"),
            (
                r#"{"op":"select","budget":3,"weights":"ebs"}"#,
                "unknown weight scheme",
            ),
            (
                r#"{"op":"update-profile","user":"a","property":"p"}"#,
                "missing field 'score'",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "line {line}: {err} (wanted {needle})"
            );
            assert_eq!(err.code(), "bad_request", "line {line}");
        }
    }

    #[test]
    fn encode_request_inverts_parse_request() {
        let requests = vec![
            Request::Select {
                params: SelectParams {
                    budget: 5,
                    weight: WeightScheme::LinearBySize,
                    cov: CovScheme::Single,
                },
                deadline_ms: None,
                stale_ok: false,
            },
            Request::Select {
                params: SelectParams {
                    budget: 8,
                    weight: WeightScheme::Identical,
                    cov: CovScheme::Proportional,
                },
                deadline_ms: Some(250),
                stale_ok: true,
            },
            Request::Explain {
                params: SelectParams {
                    budget: 3,
                    weight: WeightScheme::LinearBySize,
                    cov: CovScheme::Proportional,
                },
                top_k: 7,
            },
            Request::OpenSession,
            Request::CloseSession { session: 42 },
            Request::Refine {
                session: 3,
                delta: FeedbackDelta {
                    must_have: vec![1, 2],
                    must_not: vec![7],
                    priority: vec![],
                    standard: Some(vec![0]),
                    reset: true,
                },
                params: SelectParams {
                    budget: 4,
                    weight: WeightScheme::LinearBySize,
                    cov: CovScheme::Single,
                },
            },
            Request::UpdateProfile {
                update: ProfileUpdate {
                    user: "Ada \"quoted\"".into(),
                    property: "avgRating Thai".into(),
                    score: Some(0.8),
                },
            },
            Request::UpdateProfile {
                update: ProfileUpdate {
                    user: "Ada".into(),
                    property: "avgRating Thai".into(),
                    score: None,
                },
            },
            Request::Stats,
        ];
        for request in requests {
            let line = encode_request(&request);
            let parsed = parse_request(&line).unwrap_or_else(|e| panic!("line {line}: {e}"));
            assert_eq!(parsed, request, "round trip through {line}");
        }
    }

    #[test]
    fn responses_have_stable_shape() {
        let ok = ok_response(vec![("epoch", num_u64(4)), ("users", string_array(&["a"]))]);
        let v: Value = serde_json::from_str(&ok).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(4));
        let err = error_response(&ServiceError::Overloaded);
        let v: Value = serde_json::from_str(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Value::as_str), Some("overloaded"));
    }
}
