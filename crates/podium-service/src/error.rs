//! Service-level errors and their stable wire codes.

use podium_core::error::CoreError;

/// Everything that can go wrong while serving a request. Each variant maps
/// to a stable `code` string on the wire (see [`ServiceError::code`]);
/// handlers distinguish load-shedding conditions ([`ServiceError::Overloaded`],
/// [`ServiceError::DeadlineExceeded`]) from caller bugs
/// ([`ServiceError::BadRequest`]) so clients can retry the former and fix
/// the latter.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The bounded request queue is full — admission control rejected the
    /// request without queuing it. Retry with backoff.
    Overloaded,
    /// The request's deadline expired before the selection completed; any
    /// partial work is discarded.
    DeadlineExceeded,
    /// The request is malformed or references unknown entities.
    BadRequest(String),
    /// The referenced session id is unknown (never opened or already
    /// closed).
    UnknownSession(u64),
    /// The session's pinned epoch has fallen further behind the current
    /// epoch than the service's `max_session_lag` allows. The session is
    /// closed server-side; clients reopen and replay their feedback
    /// against current group ids.
    SessionRetired {
        /// The session id whose pin expired.
        session: u64,
        /// The epoch the session was pinned to.
        pinned: u64,
        /// The epoch current when the request arrived.
        current: u64,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// An error surfaced from the core selection layer.
    Core(CoreError),
    /// The durable log or a checkpoint could not be written, or recovery
    /// from them failed. The service refuses to acknowledge updates it
    /// cannot make durable.
    Durability(String),
}

impl ServiceError {
    /// The stable wire code for the error (the `error` field of a failure
    /// response).
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Overloaded => "overloaded",
            ServiceError::DeadlineExceeded => "deadline_exceeded",
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::UnknownSession(_) => "unknown_session",
            ServiceError::SessionRetired { .. } => "session_retired",
            ServiceError::ShuttingDown => "shutting_down",
            ServiceError::Core(_) => "core",
            ServiceError::Durability(_) => "durability",
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded => write!(f, "request queue full"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServiceError::SessionRetired {
                session,
                pinned,
                current,
            } => write!(
                f,
                "session {session} pinned to retired epoch {pinned} (current {current}); reopen the session"
            ),
            ServiceError::ShuttingDown => write!(f, "service shutting down"),
            ServiceError::Core(e) => write!(f, "{e}"),
            ServiceError::Durability(m) => write!(f, "durability: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(ServiceError::Overloaded.code(), "overloaded");
        assert_eq!(ServiceError::DeadlineExceeded.code(), "deadline_exceeded");
        assert_eq!(ServiceError::BadRequest("x".into()).code(), "bad_request");
        assert_eq!(ServiceError::UnknownSession(3).code(), "unknown_session");
        assert_eq!(
            ServiceError::SessionRetired {
                session: 3,
                pinned: 1,
                current: 9,
            }
            .code(),
            "session_retired"
        );
        assert_eq!(ServiceError::ShuttingDown.code(), "shutting_down");
        assert_eq!(ServiceError::Core(CoreError::ZeroBudget).code(), "core");
        assert_eq!(ServiceError::Durability("x".into()).code(), "durability");
    }
}
