//! Startup recovery: newest valid checkpoint + WAL suffix replay.
//!
//! A `--data-dir` holds three kinds of files:
//!
//! * `wal.log` — the frame log ([`crate::wal`]), append-only within a run;
//! * `checkpoint-<seq>.json` — periodic full serializations of the
//!   repository plus the epoch and WAL sequence they are current through,
//!   written to a tmp file, fsynced, and atomically renamed into place
//!   (the two newest generations are kept);
//! * `wal.quarantine` — torn or semantically invalid tails recovery
//!   truncated off the log, preserved for inspection instead of deleted.
//!
//! [`recover`] rebuilds serving state in four steps: load the newest
//! checkpoint whose checksum and payload verify (falling back to the
//! older generation, then to the caller's genesis repository); jump the
//! writer to the checkpoint epoch; replay every WAL frame past the
//! checkpoint's sequence through the ordinary apply/publish path, so
//! recovered epochs are built by exactly the code that built them live;
//! and quarantine + truncate whatever tail cannot be replayed. Corruption
//! anywhere — flipped bits, truncation, garbage appends, checkpoint
//! tampering — degrades to an earlier durable state; it never panics and
//! never half-applies a frame (each frame is validated in full before the
//! first update of it is applied).
//!
//! Checkpoints are accelerators, not authorities: the WAL keeps its full
//! history within a data directory's lifetime, so even with every
//! checkpoint rejected the genesis + full-replay path reaches the same
//! state. The log's unbounded growth between runs is a known cost,
//! carried in ROADMAP.md (segment retirement needs a compaction story).

use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use podium_core::bucket::PropertyBuckets;
use podium_core::profile::UserRepository;
use serde_json::Value;

use crate::error::ServiceError;
use crate::protocol::{num_u64, string};
use crate::snapshot::{PublishMode, RepositoryWriter, SnapshotStore};
use crate::wal::{frame_checksum, scan_frames, WalFrame, QUARANTINE_FILE, WAL_FILE};

pub use crate::wal::FsyncPolicy;

/// How many checkpoint generations survive pruning.
pub const CHECKPOINT_GENERATIONS: usize = 2;

/// Default `--checkpoint-every`: frames between checkpoints.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 256;

/// Durable-mode configuration, assembled from `--data-dir`, `--fsync`,
/// and `--checkpoint-every`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// Directory holding the WAL, checkpoints, and quarantine file.
    pub data_dir: PathBuf,
    /// When appended frames reach stable storage.
    pub fsync: FsyncPolicy,
    /// Frames between checkpoints; `0` disables periodic checkpoints
    /// (the WAL alone carries recovery).
    pub checkpoint_every: u64,
}

impl DurabilityOptions {
    /// Options with the default policy (`always`) and checkpoint cadence.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::default(),
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        }
    }
}

/// What [`recover`] found and did — surfaced through the `stats` op and
/// bench-serve JSONL.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// WAL sequence the loaded checkpoint was current through (0 = none).
    pub checkpoint_seq: u64,
    /// Epoch the loaded checkpoint restored (0 = genesis).
    pub checkpoint_epoch: u64,
    /// Checkpoint files that failed checksum or payload validation.
    pub checkpoints_rejected: u64,
    /// WAL frames replayed past the checkpoint.
    pub replayed_frames: u64,
    /// Profile updates inside those frames.
    pub replayed_updates: u64,
    /// The epoch serving resumes at.
    pub recovered_epoch: u64,
    /// Valid WAL bytes after truncation.
    pub wal_bytes: u64,
    /// The sequence number the next appended frame will carry.
    pub next_seq: u64,
    /// Bytes moved to `wal.quarantine` this recovery.
    pub quarantined_bytes: u64,
    /// Why the tail was quarantined, when one was.
    pub quarantined: Option<String>,
}

fn durability_err(context: &str, path: &Path, e: impl std::fmt::Display) -> ServiceError {
    ServiceError::Durability(format!("{context} {}: {e}", path.display()))
}

/// The checkpoint file name for a WAL sequence.
pub fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq}.json"))
}

/// Serializes and durably writes a checkpoint: tmp file, fsync, atomic
/// rename, best-effort directory fsync, then prune to
/// [`CHECKPOINT_GENERATIONS`]. `profiles_json` is the repository as
/// serialized by `podium_data::json::profiles_to_json`.
pub fn write_checkpoint(
    dir: &Path,
    seq: u64,
    epoch: u64,
    profiles_json: &str,
) -> Result<(), ServiceError> {
    let object = Value::Object(vec![
        ("seq".to_owned(), num_u64(seq)),
        ("epoch".to_owned(), num_u64(epoch)),
        (
            "crc".to_owned(),
            num_u64(frame_checksum(profiles_json.as_bytes())),
        ),
        ("profiles".to_owned(), string(profiles_json)),
    ]);
    // podium-lint: allow(expect) — Value trees of strings/numbers always serialize
    let text = serde_json::to_string(&object).expect("checkpoint serialization is infallible");
    let final_path = checkpoint_path(dir, seq);
    let tmp_path = dir.join(format!("checkpoint-{seq}.json.tmp"));
    {
        let mut tmp =
            File::create(&tmp_path).map_err(|e| durability_err("create", &tmp_path, e))?;
        tmp.write_all(text.as_bytes())
            .map_err(|e| durability_err("write", &tmp_path, e))?;
        tmp.sync_data()
            .map_err(|e| durability_err("fsync", &tmp_path, e))?;
    }
    fs::rename(&tmp_path, &final_path).map_err(|e| durability_err("rename", &tmp_path, e))?;
    // Make the rename itself durable where the platform allows opening a
    // directory; failure here only widens the crash window, so best-effort.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    prune_checkpoints(dir);
    Ok(())
}

/// Deletes all but the newest [`CHECKPOINT_GENERATIONS`] checkpoints and
/// any leftover tmp files. Best-effort: pruning failures cost disk, not
/// correctness.
fn prune_checkpoints(dir: &Path) {
    let mut seqs = list_checkpoint_seqs(dir);
    for stale in seqs.split_off(seqs.len().min(CHECKPOINT_GENERATIONS)) {
        let _ = fs::remove_file(checkpoint_path(dir, stale));
    }
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("checkpoint-") && name.ends_with(".json.tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

/// Checkpoint sequences present in `dir`, newest first.
pub fn list_checkpoint_seqs(dir: &Path) -> Vec<u64> {
    let mut seqs = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(middle) = name
                .strip_prefix("checkpoint-")
                .and_then(|r| r.strip_suffix(".json"))
            else {
                continue;
            };
            if let Ok(seq) = middle.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    seqs
}

/// A checkpoint that passed checksum and payload validation.
struct LoadedCheckpoint {
    seq: u64,
    epoch: u64,
    repo: UserRepository,
}

/// Parses and validates one checkpoint file; any violation is a message,
/// never a panic.
fn load_checkpoint(path: &Path) -> Result<LoadedCheckpoint, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let value: Value = serde_json::from_str(&text).map_err(|e| format!("not json: {e}"))?;
    let seq = value
        .get("seq")
        .and_then(Value::as_u64)
        .ok_or("missing 'seq'")?;
    let epoch = value
        .get("epoch")
        .and_then(Value::as_u64)
        .ok_or("missing 'epoch'")?;
    let crc = value
        .get("crc")
        .and_then(Value::as_u64)
        .ok_or("missing 'crc'")?;
    let profiles = value
        .get("profiles")
        .and_then(Value::as_str)
        .ok_or("missing 'profiles'")?;
    let actual = frame_checksum(profiles.as_bytes());
    if actual != crc {
        return Err(format!(
            "checksum mismatch (stored {crc:#x}, computed {actual:#x})"
        ));
    }
    let repo = podium_data::json::profiles_from_json(profiles)
        .map_err(|e| format!("profiles payload rejected: {e}"))?;
    Ok(LoadedCheckpoint { seq, epoch, repo })
}

/// Validates one WAL frame against the writer's current state without
/// applying anything: every property must exist, scores must be
/// normalized, and a retraction must name a user that exists (or is
/// created earlier in the same frame). A violation means the frame was
/// durably written against a *different* state — corruption — and the
/// tail starting at this frame is quarantined.
fn validate_frame(writer: &RepositoryWriter, frame: &WalFrame) -> Result<(), String> {
    let mut fresh: HashSet<&str> = HashSet::new();
    for (i, u) in frame.updates.iter().enumerate() {
        if writer.repo().property_id(&u.property).is_none() {
            return Err(format!(
                "frame {} update {i}: unknown property '{}'",
                frame.seq, u.property
            ));
        }
        match u.score {
            Some(s) if !s.is_finite() || !(0.0..=1.0).contains(&s) => {
                return Err(format!(
                    "frame {} update {i}: score {s} outside [0, 1]",
                    frame.seq
                ));
            }
            Some(_) => {
                fresh.insert(u.user.as_str());
            }
            None => {
                if writer.repo().user_by_name(&u.user).is_none() && !fresh.contains(u.user.as_str())
                {
                    return Err(format!(
                        "frame {} update {i}: retraction for unknown user '{}'",
                        frame.seq, u.user
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Appends `tail` to `wal.quarantine` and truncates `wal.log` to
/// `keep_len`, recording both in the report.
fn quarantine_tail(
    dir: &Path,
    wal_bytes: &[u8],
    keep_len: usize,
    reason: String,
    report: &mut RecoveryReport,
) -> Result<(), ServiceError> {
    let tail = wal_bytes.get(keep_len..).unwrap_or_default();
    if !tail.is_empty() {
        let qpath = dir.join(QUARANTINE_FILE);
        let mut q = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&qpath)
            .map_err(|e| durability_err("open", &qpath, e))?;
        q.write_all(tail)
            .map_err(|e| durability_err("write", &qpath, e))?;
        q.sync_data()
            .map_err(|e| durability_err("fsync", &qpath, e))?;
        let wpath = dir.join(WAL_FILE);
        let wal = OpenOptions::new()
            .write(true)
            .open(&wpath)
            .map_err(|e| durability_err("open", &wpath, e))?;
        wal.set_len(u64::try_from(keep_len).unwrap_or(u64::MAX))
            .map_err(|e| durability_err("truncate", &wpath, e))?;
        wal.sync_data()
            .map_err(|e| durability_err("fsync", &wpath, e))?;
    }
    report.quarantined_bytes = u64::try_from(tail.len()).unwrap_or(u64::MAX);
    report.quarantined = Some(reason);
    Ok(())
}

/// Rebuilds serving state from `dir` (see module docs). `genesis` is the
/// repository as loaded from `--profiles` — the state before any durable
/// update; `buckets`/`mode` are the same fit the live service uses, so
/// replayed epochs are built by the identical publish path.
pub fn recover(
    dir: &Path,
    genesis: UserRepository,
    buckets: &PropertyBuckets,
    mode: PublishMode,
) -> Result<(Arc<SnapshotStore>, RepositoryWriter, RecoveryReport), ServiceError> {
    fs::create_dir_all(dir).map_err(|e| durability_err("create data dir", dir, e))?;
    let mut report = RecoveryReport::default();

    // Newest checkpoint that verifies, else older, else genesis.
    let mut loaded: Option<LoadedCheckpoint> = None;
    for seq in list_checkpoint_seqs(dir) {
        match load_checkpoint(&checkpoint_path(dir, seq)) {
            Ok(ck) => {
                loaded = Some(ck);
                break;
            }
            Err(_) => report.checkpoints_rejected += 1,
        }
    }
    let (base_repo, ck_seq, ck_epoch) = match loaded {
        Some(ck) => (ck.repo, ck.seq, ck.epoch),
        None => (genesis, 0, 0),
    };
    report.checkpoint_seq = ck_seq;
    report.checkpoint_epoch = ck_epoch;

    let (store, mut writer) = RepositoryWriter::with_mode(base_repo, buckets, mode);
    writer.resume_at_epoch(ck_epoch);

    // Replay the WAL suffix.
    let wal_path = dir.join(WAL_FILE);
    let wal_bytes = match fs::read(&wal_path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(durability_err("read", &wal_path, e)),
    };
    let scan = scan_frames(&wal_bytes);
    let mut keep_len = scan.valid_len;
    let mut torn = scan.torn;
    // `last_seq` is the replay cursor: it starts at the checkpoint's
    // coverage and advances only over replayed frames. `kept_last_seq` is
    // the sequence of the last frame that *survives in the kept file
    // prefix* — when corruption truncates the log below the checkpoint's
    // coverage the two diverge, and the rotation below keys off the
    // latter (the cursor alone can never fall behind the checkpoint).
    let mut last_seq = ck_seq;
    let mut kept_last_seq = 0u64;
    for (i, frame) in scan.frames.iter().enumerate() {
        if frame.seq <= ck_seq {
            kept_last_seq = frame.seq;
            continue;
        }
        let frame_start = i
            .checked_sub(1)
            .and_then(|p| scan.frame_ends.get(p).copied())
            .unwrap_or(0);
        if frame.seq != last_seq + 1 {
            // The log starts past the checkpoint's coverage: replaying
            // would skip durable updates. Only reachable via tampering.
            keep_len = frame_start;
            torn = Some(format!(
                "frame {} leaves a gap after checkpoint seq {ck_seq}",
                frame.seq
            ));
            break;
        }
        if let Err(reason) = validate_frame(&writer, frame) {
            keep_len = frame_start;
            torn = Some(reason);
            break;
        }
        if frame.epoch > 0 && !writer.align_next_epoch(frame.epoch) {
            keep_len = frame_start;
            torn = Some(format!(
                "frame {} epoch {} not ahead of recovered epoch {}",
                frame.seq,
                frame.epoch,
                writer.epoch()
            ));
            break;
        }
        for update in &frame.updates {
            // Validated above against the exact state it applies to.
            writer.apply(update).map_err(|e| {
                ServiceError::Durability(format!(
                    "replay of validated frame {} failed: {e}",
                    frame.seq
                ))
            })?;
        }
        if frame.epoch > 0 {
            writer.publish();
        }
        report.replayed_frames += 1;
        report.replayed_updates += u64::try_from(frame.updates.len()).unwrap_or(u64::MAX);
        last_seq = frame.seq;
        kept_last_seq = frame.seq;
    }
    // Frames accepted by the byte scan but rejected semantically shrink
    // the kept prefix below the scan's.
    if let Some(reason) = torn.clone() {
        quarantine_tail(dir, &wal_bytes, keep_len, reason, &mut report)?;
    }
    // Epoch-0 (batched) frames at the tail publish once, together, the
    // same way the flusher would have.
    writer.publish_if_dirty();

    // A log whose surviving frames all predate the checkpoint cannot be
    // appended to contiguously: the writer would resume at the
    // checkpoint's sequence and the resulting internal gap would make the
    // *next* restart's scan quarantine every acknowledged frame appended
    // after it. Rotate the survivors into quarantine instead, so the file
    // restarts empty at the checkpoint's sequence (the scanner lets the
    // first frame of a file fix the starting sequence).
    if kept_last_seq < ck_seq && keep_len > 0 {
        let prior = report.quarantined_bytes;
        let kept = wal_bytes.get(..keep_len).unwrap_or_default();
        let reason = format!(
            "log (last surviving seq {kept_last_seq}) behind checkpoint seq {ck_seq}; rotated"
        );
        quarantine_tail(dir, kept, 0, reason, &mut report)?;
        report.quarantined_bytes = report.quarantined_bytes.saturating_add(prior);
        keep_len = 0;
    }

    report.wal_bytes = u64::try_from(keep_len).unwrap_or(u64::MAX);
    report.next_seq = last_seq.saturating_add(1);
    report.recovered_epoch = writer.epoch();
    Ok((store, writer, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::synthetic_repository;
    use crate::snapshot::ProfileUpdate;
    use crate::wal::{FsyncPolicy, WalWriter};
    use podium_core::bucket::BucketingConfig;

    fn fixture() -> (UserRepository, PropertyBuckets) {
        let repo = synthetic_repository(40, 4, 2, 0xD1CE_2020);
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        (repo, buckets)
    }

    fn update(user: &str, property: &str, score: Option<f64>) -> ProfileUpdate {
        ProfileUpdate {
            user: user.to_owned(),
            property: property.to_owned(),
            score,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("podium-recovery-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn empty_dir_recovers_genesis() {
        let dir = temp_dir("genesis");
        let (repo, buckets) = fixture();
        let (store, writer, report) =
            recover(&dir, repo, &buckets, PublishMode::Incremental).unwrap();
        assert_eq!(report.recovered_epoch, 0);
        assert_eq!(report.next_seq, 1);
        assert_eq!(writer.epoch(), 0);
        assert_eq!(store.load().epoch(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_replay_reaches_the_logged_epochs() {
        let dir = temp_dir("replay");
        let (repo, buckets) = fixture();
        let mut wal = WalWriter::open(&dir, FsyncPolicy::Always, 1, 0).unwrap();
        wal.append(1, vec![update("bob", "topic-0", Some(0.9))])
            .unwrap();
        wal.append(2, vec![update("bob", "topic-1", Some(0.1))])
            .unwrap();
        let (store, writer, report) =
            recover(&dir, repo, &buckets, PublishMode::Incremental).unwrap();
        assert_eq!(report.replayed_frames, 2);
        assert_eq!(report.replayed_updates, 2);
        assert_eq!(report.recovered_epoch, 2);
        assert_eq!(report.next_seq, 3);
        assert!(report.quarantined.is_none());
        assert_eq!(writer.epoch(), 2);
        let snap = store.load();
        assert!(snap.repo().user_by_name("bob").is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_quarantined_and_truncated() {
        let dir = temp_dir("torn");
        let (repo, buckets) = fixture();
        let mut wal = WalWriter::open(&dir, FsyncPolicy::Always, 1, 0).unwrap();
        wal.append(1, vec![update("bob", "topic-0", Some(0.9))])
            .unwrap();
        let clean_len = fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        let mut bytes = fs::read(dir.join(WAL_FILE)).unwrap();
        bytes.extend_from_slice(b"\x40\x00\x00\x00 torn");
        fs::write(dir.join(WAL_FILE), &bytes).unwrap();
        let (_store, _writer, report) =
            recover(&dir, repo, &buckets, PublishMode::Incremental).unwrap();
        assert_eq!(report.replayed_frames, 1);
        assert_eq!(report.recovered_epoch, 1);
        assert!(report.quarantined.is_some());
        assert_eq!(report.quarantined_bytes, 9);
        assert_eq!(fs::metadata(dir.join(WAL_FILE)).unwrap().len(), clean_len);
        assert!(dir.join(QUARANTINE_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn semantically_invalid_frame_truncates_from_that_frame() {
        let dir = temp_dir("semantic");
        let (repo, buckets) = fixture();
        let mut wal = WalWriter::open(&dir, FsyncPolicy::Always, 1, 0).unwrap();
        wal.append(1, vec![update("bob", "topic-0", Some(0.9))])
            .unwrap();
        // Bytewise valid, semantically impossible: unknown property.
        wal.append(2, vec![update("bob", "no-such-topic", Some(0.5))])
            .unwrap();
        let (_store, writer, report) =
            recover(&dir, repo, &buckets, PublishMode::Incremental).unwrap();
        assert_eq!(report.replayed_frames, 1);
        assert_eq!(report.recovered_epoch, 1);
        assert_eq!(writer.epoch(), 1);
        assert!(report
            .quarantined
            .as_deref()
            .unwrap()
            .contains("unknown property"));
        // The truncated log replays cleanly next time.
        let (repo2, buckets2) = fixture();
        let (_s, _w, second) = recover(&dir, repo2, &buckets2, PublishMode::Incremental).unwrap();
        assert_eq!(second.replayed_frames, 1);
        assert!(second.quarantined.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_skips_replay_and_corrupt_checkpoint_falls_back() {
        let dir = temp_dir("checkpoint");
        let (repo, buckets) = fixture();
        let mut wal = WalWriter::open(&dir, FsyncPolicy::Always, 1, 0).unwrap();
        wal.append(1, vec![update("bob", "topic-0", Some(0.9))])
            .unwrap();
        wal.append(2, vec![update("carol", "topic-1", Some(0.2))])
            .unwrap();
        // First recovery, then checkpoint its state at seq 2 / epoch 2.
        let (_s, w, r) = recover(&dir, repo.clone(), &buckets, PublishMode::Incremental).unwrap();
        assert_eq!(r.recovered_epoch, 2);
        let profiles = podium_data::json::profiles_to_json(w.repo()).unwrap();
        write_checkpoint(&dir, 2, 2, &profiles).unwrap();
        drop(w);

        let (_s, w2, r2) = recover(&dir, repo.clone(), &buckets, PublishMode::Incremental).unwrap();
        assert_eq!(r2.checkpoint_seq, 2);
        assert_eq!(r2.checkpoint_epoch, 2);
        assert_eq!(r2.replayed_frames, 0, "checkpoint covers the whole log");
        assert_eq!(r2.recovered_epoch, 2);
        assert_eq!(r2.next_seq, 3);
        assert!(w2.repo().user_by_name("carol").is_some());
        drop(w2);

        // Corrupt the checkpoint: recovery rejects it and replays the WAL.
        let path = checkpoint_path(&dir, 2);
        let mut text = fs::read_to_string(&path).unwrap();
        text = text.replace("bob", "b0b");
        fs::write(&path, text).unwrap();
        let (_s, w3, r3) = recover(&dir, repo, &buckets, PublishMode::Incremental).unwrap();
        assert_eq!(r3.checkpoints_rejected, 1);
        assert_eq!(r3.checkpoint_seq, 0);
        assert_eq!(r3.replayed_frames, 2);
        assert_eq!(r3.recovered_epoch, 2);
        assert!(w3.repo().user_by_name("bob").is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn log_truncated_below_checkpoint_rotates_so_future_appends_stay_contiguous() {
        let dir = temp_dir("rotate");
        let (repo, buckets) = fixture();
        let mut wal = WalWriter::open(&dir, FsyncPolicy::Always, 1, 0).unwrap();
        wal.append(1, vec![update("bob", "topic-0", Some(0.9))])
            .unwrap();
        wal.append(2, vec![update("carol", "topic-1", Some(0.2))])
            .unwrap();
        drop(wal);
        // Checkpoint covering both frames…
        let (_s, w, _r) = recover(&dir, repo.clone(), &buckets, PublishMode::Incremental).unwrap();
        let profiles = podium_data::json::profiles_to_json(w.repo()).unwrap();
        write_checkpoint(&dir, 2, 2, &profiles).unwrap();
        drop(w);
        // …then frame 2 rots on disk: the byte scan keeps only frame 1,
        // leaving the log's surviving max seq below the checkpoint's.
        let mut bytes = fs::read(dir.join(WAL_FILE)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(dir.join(WAL_FILE), &bytes).unwrap();

        let (_s, w2, r2) = recover(&dir, repo.clone(), &buckets, PublishMode::Incremental).unwrap();
        assert_eq!(r2.checkpoint_seq, 2);
        assert_eq!(r2.recovered_epoch, 2, "the checkpoint carries the state");
        assert_eq!(r2.next_seq, 3);
        // The surviving prefix was rotated away: appending seq 3 after a
        // file ending at seq 1 would strand every later acked frame
        // behind a sequence gap on the following restart.
        assert_eq!(r2.wal_bytes, 0);
        assert_eq!(fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        assert!(
            r2.quarantined
                .as_deref()
                .unwrap()
                .contains("behind checkpoint"),
            "{:?}",
            r2.quarantined
        );
        drop(w2);

        // The next run appends acked frames from next_seq — and a further
        // restart must replay them, not quarantine them.
        let mut wal = WalWriter::open(&dir, FsyncPolicy::Always, r2.next_seq, 0).unwrap();
        wal.append(3, vec![update("dave", "topic-0", Some(0.4))])
            .unwrap();
        drop(wal);
        let (_s, w3, r3) = recover(&dir, repo, &buckets, PublishMode::Incremental).unwrap();
        assert!(r3.quarantined.is_none(), "{:?}", r3.quarantined);
        assert_eq!(r3.replayed_frames, 1);
        assert_eq!(r3.recovered_epoch, 3);
        assert!(w3.repo().user_by_name("dave").is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruning_keeps_two_generations() {
        let dir = temp_dir("prune");
        for seq in [1u64, 5, 9] {
            write_checkpoint(&dir, seq, seq, "{\"users\":[]}").unwrap();
        }
        assert_eq!(list_checkpoint_seqs(&dir), vec![9, 5]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
