//! Versioned repository snapshots: immutable epochs published by a single
//! writer, read lock-free-ish by many selectors.
//!
//! A [`Snapshot`] freezes everything a selection needs — the repository
//! (for names and explanations), the [`GroupSet`], and the prebuilt
//! [`CsrGraph`] — under one epoch number. Readers clone an
//! `Arc<Snapshot>` out of the [`SnapshotStore`] and work against it for
//! the rest of the request, so a concurrently published epoch never
//! changes data under a running selection.
//!
//! The [`RepositoryWriter`] is the only mutator. It applies profile
//! updates through [`IncrementalGroups`] (point updates, §9's "incorporate
//! data updates" scenario), then materializes the next snapshot with
//! [`IncrementalGroups::snapshot_into`] — recycling the group-set
//! allocations of retired epochs whose readers have all finished — and
//! swaps it into the store. Selection hot paths never wait on the writer;
//! the store's `RwLock` is held only for the duration of an `Arc` clone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use podium_core::bucket::PropertyBuckets;
use podium_core::engine::{lazy_select_deadline, CsrGraph};
use podium_core::greedy::Selection;
use podium_core::group::GroupSet;
use podium_core::ids::UserId;
use podium_core::incremental::IncrementalGroups;
use podium_core::instance::DiversificationInstance;
use podium_core::profile::UserRepository;
use podium_core::weights::{CovScheme, WeightScheme};

use crate::error::ServiceError;
use crate::poison;

/// Parameters of one `select` request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectParams {
    /// Budget `B` — the number of users to select.
    pub budget: usize,
    /// Group weight scheme.
    pub weight: WeightScheme,
    /// Coverage scheme.
    pub cov: CovScheme,
}

/// A completed selection together with the epoch it was computed against.
#[derive(Debug, Clone)]
pub struct SelectOutcome {
    /// Epoch of the snapshot the selection ran on.
    pub epoch: u64,
    /// The greedy selection.
    pub selection: Selection<f64>,
    /// Selected user names, resolved against the same snapshot.
    pub names: Vec<String>,
    /// Whether this outcome was served from the snapshot's memo cache
    /// (`true`) or computed fresh (`false`). Service-level cumulative
    /// cache counters are derived from this flag.
    pub cache_hit: bool,
}

/// An immutable, epoch-numbered view of the repository and its derived
/// selection structures.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    repo: UserRepository,
    groups: GroupSet,
    csr: CsrGraph,
    /// Prebuilt LBS weight vector — the experimental default scheme, so
    /// the per-request cost is one memcpy instead of a group scan.
    lbs_weights: Vec<f64>,
    /// Memoized select outcomes for this epoch, keyed by the full request
    /// parameters. Sound because the snapshot is immutable and lazy greedy
    /// is deterministic: identical parameters against the same epoch can
    /// only ever produce the identical selection. Serving workloads repeat
    /// a small set of parameter combinations, so after one computation per
    /// epoch the hot path degenerates to a lookup + clone; publishing a new
    /// epoch starts from an empty cache, which is exactly the invalidation
    /// the versioning scheme exists to provide.
    select_cache: Mutex<Vec<(SelectParams, SelectOutcome)>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// Cap on memoized outcomes per snapshot: parameter combinations are few
/// (budget × weight × cov), so a short linear-scanned list suffices.
const SELECT_CACHE_CAP: usize = 16;

impl Snapshot {
    fn assemble(epoch: u64, repo: UserRepository, groups: GroupSet, csr: CsrGraph) -> Self {
        let lbs_weights = WeightScheme::LinearBySize.weights(&groups);
        Self {
            epoch,
            repo,
            groups,
            csr,
            lbs_weights,
            select_cache: Mutex::new(Vec::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// The snapshot's epoch: 0 for the initial load, incremented by one
    /// per published update batch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen repository.
    pub fn repo(&self) -> &UserRepository {
        &self.repo
    }

    /// The frozen group set.
    pub fn groups(&self) -> &GroupSet {
        &self.groups
    }

    /// The prebuilt CSR adjacency of [`Snapshot::groups`].
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Builds the weight vector for `scheme` — prebuilt for LBS.
    fn weights_for(&self, scheme: WeightScheme) -> Vec<f64> {
        match scheme {
            WeightScheme::LinearBySize => self.lbs_weights.clone(),
            WeightScheme::Identical => vec![1.0; self.groups.len()],
        }
    }

    /// Runs lazy greedy against the prebuilt CSR graph, checking `deadline`
    /// between greedy rounds. A deadline hit maps to
    /// [`ServiceError::DeadlineExceeded`]; the partial prefix is discarded.
    pub fn select(
        &self,
        params: &SelectParams,
        deadline: Option<Instant>,
    ) -> Result<SelectOutcome, ServiceError> {
        if params.budget == 0 {
            return Err(ServiceError::Core(
                podium_core::error::CoreError::ZeroBudget,
            ));
        }
        // Memo hit: the result was already computed against this very
        // epoch, so it is exact. Returned even past the deadline — the
        // deadline bounds computation, and a hit costs none.
        if let Some(mut hit) = self.cached(params) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            hit.cache_hit = true;
            return Ok(hit);
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let weights = self.weights_for(params.weight);
        let covs = params.cov.cov(&self.groups, params.budget);
        let inst = DiversificationInstance::new(&self.groups, weights, covs);
        let (selection, completed) = match deadline {
            Some(d) => lazy_select_deadline(&inst, &self.csr, params.budget, None, &mut |_| {
                Instant::now() >= d
            }),
            None => (
                podium_core::engine::lazy_select_csr(&inst, &self.csr, params.budget, None),
                true,
            ),
        };
        if !completed {
            return Err(ServiceError::DeadlineExceeded);
        }
        let names = self.user_names(&selection.users);
        let outcome = SelectOutcome {
            epoch: self.epoch,
            selection,
            names,
            cache_hit: false,
        };
        self.memoize(params, &outcome);
        Ok(outcome)
    }

    fn cached(&self, params: &SelectParams) -> Option<SelectOutcome> {
        let cache = poison::recover(self.select_cache.lock());
        cache
            .iter()
            .find(|(p, _)| p == params)
            .map(|(_, outcome)| outcome.clone())
    }

    fn memoize(&self, params: &SelectParams, outcome: &SelectOutcome) {
        let mut cache = poison::recover(self.select_cache.lock());
        if cache.iter().any(|(p, _)| p == params) {
            return; // a concurrent worker raced us to the same miss
        }
        if cache.len() >= SELECT_CACHE_CAP {
            cache.remove(0);
        }
        cache.push((*params, outcome.clone()));
    }

    /// `(hits, misses)` of the memoized select cache — one miss per
    /// distinct parameter combination per epoch in the steady state.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Resolves user ids to names against this snapshot's repository.
    pub fn user_names(&self, users: &[UserId]) -> Vec<String> {
        users
            .iter()
            .map(|&u| {
                self.repo
                    .user_name(u)
                    .map(str::to_owned)
                    .unwrap_or_else(|_| format!("<user {u}>"))
            })
            .collect()
    }
}

/// Holder of the current snapshot; cheap concurrent reads, swap-on-publish.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
}

impl SnapshotStore {
    fn new(initial: Arc<Snapshot>) -> Self {
        Self {
            current: RwLock::new(initial),
        }
    }

    /// Clones out the current snapshot. The read lock is held only for the
    /// `Arc` clone; the caller then works against immutable data.
    pub fn load(&self) -> Arc<Snapshot> {
        poison::recover(self.current.read()).clone()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.load().epoch()
    }

    /// Swaps in a new snapshot, returning the previous one.
    fn swap(&self, next: Arc<Snapshot>) -> Arc<Snapshot> {
        let mut guard = poison::recover(self.current.write());
        std::mem::replace(&mut *guard, next)
    }
}

/// One profile update: set (or retract, with `score: None`) the value of
/// `property` in `user`'s profile. Unknown users are created when setting
/// a score; unknown *properties* are rejected — the bucketing is fixed at
/// fit time (grouping runs offline, §7), so a property that was never
/// bucketed can form no groups. Re-fit and restart to add properties.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileUpdate {
    /// Target user name.
    pub user: String,
    /// Property label, e.g. `"avgRating Mexican"`.
    pub property: String,
    /// `Some(score)` sets; `None` retracts.
    pub score: Option<f64>,
}

/// What applying one update did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Whether a new user record was created for the update.
    pub created_user: bool,
    /// Whether the update changed the group structure (moved the user
    /// between buckets) as opposed to a same-bucket score tweak.
    pub regrouped: bool,
}

/// The single mutator of the repository: applies updates incrementally and
/// publishes immutable snapshots.
///
/// Not `Sync` by design — wrap it in a `Mutex` (as
/// [`crate::service::PodiumService`] does) if updates arrive from several
/// connections; the point is that *publishing* is single-writer while
/// reads scale out through the [`SnapshotStore`].
#[derive(Debug)]
pub struct RepositoryWriter {
    store: Arc<SnapshotStore>,
    repo: UserRepository,
    inc: IncrementalGroups,
    epoch: u64,
    /// Whether changes have been applied since the last publish.
    dirty: bool,
    /// Retired epochs whose group sets we may reclaim once readers drop
    /// their references.
    retired: Vec<Arc<Snapshot>>,
    /// Reclaimed group sets, reused via
    /// [`IncrementalGroups::snapshot_into`] to avoid re-allocating the
    /// full membership structure on every published epoch.
    recycled: Vec<GroupSet>,
}

/// Cap on pooled group sets; beyond double buffering there is nothing to
/// gain.
const RECYCLE_CAP: usize = 2;

impl RepositoryWriter {
    /// Builds the initial epoch-0 snapshot from a loaded repository and a
    /// fixed bucketing, returning the shared store and the writer.
    pub fn new(repo: UserRepository, buckets: &PropertyBuckets) -> (Arc<SnapshotStore>, Self) {
        let inc = IncrementalGroups::build(&repo, buckets);
        let groups = inc.snapshot();
        let csr = inc.snapshot_csr();
        let snap = Arc::new(Snapshot::assemble(0, repo.clone(), groups, csr));
        let store = Arc::new(SnapshotStore::new(snap));
        let writer = Self {
            store: Arc::clone(&store),
            repo,
            inc,
            epoch: 0,
            dirty: false,
            retired: Vec::new(),
            recycled: Vec::new(),
        };
        (store, writer)
    }

    /// The store this writer publishes to.
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// The epoch of the last published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Applies one update to the writer's working state. Not visible to
    /// readers until [`RepositoryWriter::publish`].
    pub fn apply(&mut self, update: &ProfileUpdate) -> Result<ApplyOutcome, ServiceError> {
        let Some(pid) = self.repo.property_id(&update.property) else {
            return Err(ServiceError::BadRequest(format!(
                "unknown property '{}' (bucketing is fixed at fit time; re-fit to add properties)",
                update.property
            )));
        };
        if let Some(s) = update.score {
            if !s.is_finite() || !(0.0..=1.0).contains(&s) {
                return Err(ServiceError::BadRequest(format!(
                    "score {s} outside the normalized [0, 1] range"
                )));
            }
        }
        let (uid, created_user) = match self.repo.user_by_name(&update.user) {
            Some(u) => (u, false),
            None => {
                if update.score.is_none() {
                    return Err(ServiceError::BadRequest(format!(
                        "cannot retract a score for unknown user '{}'",
                        update.user
                    )));
                }
                let u = self.repo.add_user(update.user.clone());
                let mirrored = self.inc.add_user();
                debug_assert_eq!(u, mirrored, "repo and incremental user ids in lockstep");
                (u, true)
            }
        };
        match update.score {
            Some(s) => self
                .repo
                .set_score(uid, pid, s)
                .map_err(ServiceError::Core)?,
            None => {
                self.repo
                    .remove_score(uid, pid)
                    .map_err(ServiceError::Core)?;
            }
        }
        let (old, new) = self.inc.update_score(uid, pid, update.score);
        self.dirty = true;
        Ok(ApplyOutcome {
            created_user,
            regrouped: old != new,
        })
    }

    /// Materializes the next snapshot from the applied updates and swaps it
    /// into the store. Returns the new epoch. A publish with no pending
    /// changes still bumps the epoch (callers use it as a sync barrier).
    pub fn publish(&mut self) -> u64 {
        self.epoch += 1;
        let mut groups = self.recycled.pop().unwrap_or_default();
        self.inc.snapshot_into(&mut groups);
        let csr = self.inc.snapshot_csr();
        let snap = Arc::new(Snapshot::assemble(
            self.epoch,
            self.repo.clone(),
            groups,
            csr,
        ));
        let prev = self.store.swap(snap);
        self.retired.push(prev);
        self.reclaim();
        self.dirty = false;
        self.epoch
    }

    /// Publishes only if updates were applied since the last publish.
    pub fn publish_if_dirty(&mut self) -> Option<u64> {
        self.dirty.then(|| self.publish())
    }

    /// Moves group sets of retired snapshots nobody references anymore
    /// into the recycle pool.
    fn reclaim(&mut self) {
        let mut still_referenced = Vec::with_capacity(self.retired.len());
        for snap in self.retired.drain(..) {
            match Arc::try_unwrap(snap) {
                Ok(owned) => {
                    if self.recycled.len() < RECYCLE_CAP {
                        self.recycled.push(owned.groups);
                    }
                }
                Err(shared) => still_referenced.push(shared),
            }
        }
        self.retired = still_referenced;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use podium_core::bucket::BucketingConfig;
    use podium_core::engine::{EngineVariant, SelectionEngine};

    fn seed_repo() -> UserRepository {
        let mut repo = UserRepository::new();
        let mex = repo.intern_property("avgRating Mexican");
        let tokyo = repo.intern_property("livesIn Tokyo");
        for (i, name) in ["Alice", "Bob", "Carol", "David", "Eve", "Frank"]
            .iter()
            .enumerate()
        {
            let u = repo.add_user(*name);
            repo.set_score(u, mex, (i as f64) / 6.0).unwrap();
            if i % 2 == 0 {
                repo.set_score(u, tokyo, 1.0).unwrap();
            }
        }
        repo
    }

    fn writer() -> (Arc<SnapshotStore>, RepositoryWriter) {
        let repo = seed_repo();
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        RepositoryWriter::new(repo, &buckets)
    }

    #[test]
    fn epoch_zero_matches_batch_build() {
        let (store, _w) = writer();
        let snap = store.load();
        assert_eq!(snap.epoch(), 0);
        let repo = seed_repo();
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let batch = GroupSet::build(&repo, &buckets);
        assert_eq!(snap.groups().len(), batch.len());
        for ((_, a), (_, b)) in snap.groups().iter().zip(batch.iter()) {
            assert_eq!(a.members, b.members);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn snapshot_select_matches_engine() {
        let (store, _w) = writer();
        let snap = store.load();
        let params = SelectParams {
            budget: 3,
            weight: WeightScheme::LinearBySize,
            cov: CovScheme::Single,
        };
        let outcome = snap.select(&params, None).unwrap();
        let inst = DiversificationInstance::from_schemes(
            snap.groups(),
            WeightScheme::LinearBySize,
            CovScheme::Single,
            3,
        );
        let engine = SelectionEngine::new(&inst);
        let reference = engine.select(EngineVariant::LazyHeap, 3);
        assert_eq!(outcome.selection, reference);
        assert_eq!(outcome.names.len(), 3);
    }

    #[test]
    fn published_epochs_are_isolated_from_later_updates() {
        let (store, mut w) = writer();
        let before = store.load();
        w.apply(&ProfileUpdate {
            user: "Bob".into(),
            property: "avgRating Mexican".into(),
            score: Some(0.95),
        })
        .unwrap();
        assert_eq!(
            store.load().epoch(),
            0,
            "apply without publish stays invisible"
        );
        let e1 = w.publish();
        assert_eq!(e1, 1);
        let after = store.load();
        assert_eq!(after.epoch(), 1);
        // The pinned pre-update snapshot still shows the old score.
        let bob = before.repo().user_by_name("Bob").unwrap();
        let mex = before.repo().property_id("avgRating Mexican").unwrap();
        assert_eq!(before.repo().score(bob, mex), Some(1.0 / 6.0));
        assert_eq!(after.repo().score(bob, mex), Some(0.95));
    }

    #[test]
    fn writer_snapshot_equals_from_scratch_rebuild() {
        let (store, mut w) = writer();
        for (i, (user, score)) in [
            ("Bob", Some(0.95)),
            ("Carol", Some(0.05)),
            ("Grace", Some(0.5)),
            ("Alice", None),
            ("Grace", Some(0.92)),
        ]
        .iter()
        .enumerate()
        {
            w.apply(&ProfileUpdate {
                user: (*user).into(),
                property: "avgRating Mexican".into(),
                score: *score,
            })
            .unwrap();
            let epoch = w.publish();
            assert_eq!(epoch, i as u64 + 1);
        }
        let snap = store.load();
        // Rebuild from the writer's own repository with the same (fixed)
        // bucket boundaries: group sets must agree exactly.
        let seed = seed_repo();
        let buckets = BucketingConfig::paper_default().bucketize(&seed);
        let batch = GroupSet::build(snap.repo(), &buckets);
        assert_eq!(snap.groups().len(), batch.len());
        for ((_, a), (_, b)) in snap.groups().iter().zip(batch.iter()) {
            assert_eq!(a.members, b.members);
            assert_eq!(a.kind, b.kind);
        }
        // CSR mirrors the group set.
        assert_eq!(snap.csr().group_count(), snap.groups().len());
        assert_eq!(snap.csr().user_count(), snap.groups().user_count());
    }

    #[test]
    fn unknown_property_and_bad_scores_rejected() {
        let (_store, mut w) = writer();
        let err = w
            .apply(&ProfileUpdate {
                user: "Alice".into(),
                property: "no such property".into(),
                score: Some(0.4),
            })
            .unwrap_err();
        assert_eq!(err.code(), "bad_request");
        for bad in [f64::NAN, -0.1, 1.7] {
            let err = w
                .apply(&ProfileUpdate {
                    user: "Alice".into(),
                    property: "avgRating Mexican".into(),
                    score: Some(bad),
                })
                .unwrap_err();
            assert_eq!(err.code(), "bad_request", "score {bad}");
        }
        let err = w
            .apply(&ProfileUpdate {
                user: "Nobody".into(),
                property: "avgRating Mexican".into(),
                score: None,
            })
            .unwrap_err();
        assert_eq!(err.code(), "bad_request");
    }

    #[test]
    fn group_set_recycling_reclaims_unreferenced_epochs() {
        let (store, mut w) = writer();
        for i in 0..5 {
            w.apply(&ProfileUpdate {
                user: "Bob".into(),
                property: "avgRating Mexican".into(),
                score: Some(0.1 + 0.15 * i as f64),
            })
            .unwrap();
            w.publish();
        }
        // No outstanding reader references except the current snapshot:
        // the pool should have filled.
        assert!(!w.recycled.is_empty(), "retired epochs were reclaimed");
        assert!(w.recycled.len() <= RECYCLE_CAP);
        assert_eq!(store.load().epoch(), 5);
    }

    #[test]
    fn publish_if_dirty_skips_clean_publishes() {
        let (_store, mut w) = writer();
        assert_eq!(w.publish_if_dirty(), None);
        w.apply(&ProfileUpdate {
            user: "Bob".into(),
            property: "avgRating Mexican".into(),
            score: Some(0.9),
        })
        .unwrap();
        assert_eq!(w.publish_if_dirty(), Some(1));
        assert_eq!(w.publish_if_dirty(), None);
    }

    #[test]
    fn repeated_selects_hit_the_memo_cache() {
        let (store, _w) = writer();
        let snap = store.load();
        let params = SelectParams {
            budget: 3,
            weight: WeightScheme::LinearBySize,
            cov: CovScheme::Single,
        };
        let first = snap.select(&params, None).unwrap();
        let second = snap.select(&params, None).unwrap();
        assert_eq!(first.names, second.names);
        assert_eq!(first.selection, second.selection);
        assert_eq!(snap.cache_stats(), (1, 1), "second call was a pure hit");
        // Different parameters are separate entries, not collisions.
        let other = SelectParams {
            budget: 2,
            weight: WeightScheme::Identical,
            cov: CovScheme::Single,
        };
        let third = snap.select(&other, None).unwrap();
        assert_eq!(third.selection.users.len(), 2);
        assert_eq!(snap.cache_stats(), (1, 2));
    }

    #[test]
    fn memo_cache_does_not_survive_a_publish() {
        let (store, mut w) = writer();
        let params = SelectParams {
            budget: 2,
            weight: WeightScheme::LinearBySize,
            cov: CovScheme::Single,
        };
        let before = store.load().select(&params, None).unwrap();
        assert_eq!(before.epoch, 0);
        w.apply(&ProfileUpdate {
            user: "Bob".into(),
            property: "avgRating Mexican".into(),
            score: Some(0.97),
        })
        .unwrap();
        w.publish();
        let snap = store.load();
        let after = snap.select(&params, None).unwrap();
        assert_eq!(after.epoch, 1);
        assert_eq!(
            snap.cache_stats(),
            (0, 1),
            "new epoch starts from an empty cache"
        );
        // And the fresh computation really ran against the new data.
        let rebuilt = DiversificationInstance::from_schemes(
            snap.groups(),
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        let engine = SelectionEngine::new(&rebuilt);
        assert_eq!(after.selection, engine.select(EngineVariant::LazyHeap, 2));
    }

    #[test]
    fn deadline_in_the_past_maps_to_deadline_exceeded() {
        let (store, _w) = writer();
        let snap = store.load();
        let params = SelectParams {
            budget: 3,
            weight: WeightScheme::LinearBySize,
            cov: CovScheme::Single,
        };
        let already_past = Instant::now() - std::time::Duration::from_millis(1);
        let err = snap.select(&params, Some(already_past)).unwrap_err();
        assert_eq!(err, ServiceError::DeadlineExceeded);
    }
}
