//! Versioned repository snapshots: immutable epochs published by a single
//! writer, read lock-free-ish by many selectors.
//!
//! A [`Snapshot`] freezes everything a selection needs — the repository
//! (for names and explanations), the [`GroupSet`], and the prebuilt
//! [`CsrGraph`] — under one epoch number. Readers clone an
//! `Arc<Snapshot>` out of the [`SnapshotStore`] and work against it for
//! the rest of the request, so a concurrently published epoch never
//! changes data under a running selection.
//!
//! The [`RepositoryWriter`] is the only mutator. It applies profile
//! updates through [`IncrementalGroups`] (point updates, §9's "incorporate
//! data updates" scenario), then materializes the next snapshot with
//! [`IncrementalGroups::snapshot_into`] — recycling the group-set
//! allocations of retired epochs whose readers have all finished — and
//! swaps it into the store. Selection hot paths never wait on the writer;
//! the store's `RwLock` is held only for the duration of an `Arc` clone.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use podium_core::bucket::PropertyBuckets;
use podium_core::engine::{lazy_select_deadline, lazy_select_seeded_deadline, CsrGraph};
use podium_core::greedy::Selection;
use podium_core::group::GroupSet;
use podium_core::ids::{BucketIdx, PropertyId, UserId};
use podium_core::incremental::{EpochDelta, IncrementalGroups};
use podium_core::instance::DiversificationInstance;
use podium_core::profile::UserRepository;
use podium_core::weights::{CovScheme, WeightScheme};

use crate::error::ServiceError;
use crate::poison;

/// Parameters of one `select` request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectParams {
    /// Budget `B` — the number of users to select.
    pub budget: usize,
    /// Group weight scheme.
    pub weight: WeightScheme,
    /// Coverage scheme.
    pub cov: CovScheme,
}

/// A completed selection together with the epoch it was computed against.
#[derive(Debug, Clone)]
pub struct SelectOutcome {
    /// Epoch of the snapshot the selection ran on.
    pub epoch: u64,
    /// The greedy selection.
    pub selection: Selection<f64>,
    /// Selected user names, resolved against the same snapshot.
    pub names: Vec<String>,
    /// Whether this outcome was served from the snapshot's memo cache
    /// (`true`) or computed fresh (`false`). Service-level cumulative
    /// cache counters are derived from this flag.
    pub cache_hit: bool,
    /// `true` when the outcome was carried forward from an earlier epoch
    /// and served under the bounded-staleness read mode (`stale_ok`):
    /// [`SelectOutcome::epoch`] then names the epoch the selection was
    /// *computed* on, and [`SelectOutcome::certified_score_lb`] is the
    /// score the selection is certified to still achieve on the serving
    /// epoch. Always `false` on the default read path.
    pub stale: bool,
    /// Certified lower bound on the selection's score against the epoch it
    /// was served from. Equal to `selection.score` — exact for a fresh
    /// computation; for a carried outcome the bound holds because carry is
    /// only permitted when no group the selection covers was dirtied by
    /// any intervening delta (covered contributions are unchanged, and
    /// newly grown uncovered groups can only add score).
    pub certified_score_lb: f64,
}

/// How the single writer materializes each published epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PublishMode {
    /// Delta-aware publishing: patch the previous epoch's CSR in place on
    /// a recycled buffer, maintain warm CELF seed bounds, carry forward
    /// unaffected memoized selects, and recycle the repository copy. The
    /// published snapshots are bit-identical to [`PublishMode::FullRebuild`]'s.
    #[default]
    Incremental,
    /// Rebuild every published structure from the incremental state and
    /// clone the repository afresh — the honest baseline the drift
    /// benchmark compares against. No seeds, no memo carry.
    FullRebuild,
}

/// Build breakdown of one published epoch, exposed through the `stats` op
/// and the drift benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochBuildStats {
    /// Updates applied since the previous publish (the batch this epoch
    /// absorbed).
    pub publish_batch_size: u64,
    /// Microseconds spent patching the previous CSR in place; `0` when
    /// this epoch's CSR was fully rebuilt.
    pub csr_patch_micros: u64,
    /// Microseconds spent rebuilding the CSR from scratch; `0` when this
    /// epoch's CSR was patched.
    pub full_rebuild_micros: u64,
    /// Memoized selects carried forward into this epoch.
    pub memos_carried: u64,
    /// Memoized selects invalidated by this epoch's delta.
    pub memos_invalidated: u64,
    /// Microseconds from publish start until the snapshot was assembled.
    pub publish_micros: u64,
    /// Whether the CSR patch path ran (vs the full-rebuild fallback).
    pub patched: bool,
    /// Whether the group set was patched in place on a recycled buffer
    /// through the dirty-slot union of the epochs it was behind (vs the
    /// full O(edges) rebuild).
    pub groups_patched: bool,
    /// Whether the repository copy was produced by replaying the logged
    /// update batches onto a recycled copy (vs a full O(users) copy).
    pub repo_replayed: bool,
}

/// Cumulative writer-side publish statistics.
#[derive(Debug, Clone, Default)]
pub struct PublishStats {
    /// Epochs published.
    pub publishes: u64,
    /// Total updates absorbed across all publishes.
    pub batched_updates: u64,
    /// Publishes that took the CSR patch path.
    pub patched_publishes: u64,
    /// Publishes that fell back to a full rebuild.
    pub rebuilt_publishes: u64,
    /// Memoized selects carried forward, cumulative.
    pub memos_carried: u64,
    /// Memoized selects invalidated, cumulative.
    pub memos_invalidated: u64,
    /// Breakdown of the most recent publish.
    pub last: EpochBuildStats,
    /// Ring buffer of recent publish latencies in microseconds.
    latencies: Vec<u64>,
    next: usize,
}

/// Publish-latency samples retained for percentile reporting.
const LATENCY_RING_CAP: usize = 512;

/// Elapsed microseconds as `u64`, saturating at ~584k years.
fn elapsed_micros(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

impl PublishStats {
    fn record(&mut self, build: EpochBuildStats) {
        self.publishes += 1;
        self.batched_updates += build.publish_batch_size;
        if build.patched {
            self.patched_publishes += 1;
        } else {
            self.rebuilt_publishes += 1;
        }
        self.memos_carried += build.memos_carried;
        self.memos_invalidated += build.memos_invalidated;
        self.last = build;
        if self.latencies.len() < LATENCY_RING_CAP {
            self.latencies.push(build.publish_micros);
        } else {
            // podium-lint: allow(index) — next is reduced modulo the ring capacity just below
            self.latencies[self.next] = build.publish_micros;
        }
        self.next = (self.next + 1) % LATENCY_RING_CAP;
    }

    /// `(p50, p99)` of the retained publish latencies, in microseconds.
    /// `(0, 0)` before the first publish.
    pub fn latency_percentiles(&self) -> (u64, u64) {
        if self.latencies.is_empty() {
            return (0, 0);
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let at = |q: f64| {
            // podium-lint: allow(as-cast) — ring length ≤ 512: rank arithmetic is exact in f64 and non-negative
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            // podium-lint: allow(index) — idx is clamped to len − 1 and the ring is non-empty here
            sorted[idx.min(sorted.len() - 1)]
        };
        (at(0.50), at(0.99))
    }
}

/// An immutable, epoch-numbered view of the repository and its derived
/// selection structures.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    repo: UserRepository,
    groups: GroupSet,
    csr: CsrGraph,
    /// Prebuilt LBS weight vector — the experimental default scheme, so
    /// the per-request cost is one memcpy instead of a group scan.
    lbs_weights: Vec<f64>,
    /// Memoized select outcomes for this epoch, keyed by the full request
    /// parameters. Sound because the snapshot is immutable and lazy greedy
    /// is deterministic: identical parameters against the same epoch can
    /// only ever produce the identical selection. Serving workloads repeat
    /// a small set of parameter combinations, so after one computation per
    /// epoch the hot path degenerates to a lookup + clone; publishing a new
    /// epoch starts from an empty cache, which is exactly the invalidation
    /// the versioning scheme exists to provide.
    select_cache: Mutex<Vec<(SelectParams, SelectOutcome)>>,
    /// Memoized selects carried forward from earlier epochs whose certified
    /// score lower bound is unaffected by the intervening deltas. Served
    /// only under the `stale_ok` read mode; immutable after assembly.
    carried: Vec<(SelectParams, SelectOutcome)>,
    /// Warm CELF seed bounds per user under `Identical` weights (empty
    /// when the epoch was published without seeds — cold scan instead).
    seeds_iden: Vec<f64>,
    /// Warm CELF seed bounds per user under `LinearBySize` weights.
    seeds_lbs: Vec<f64>,
    /// Build breakdown of this epoch's publish.
    build: EpochBuildStats,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    carried_hits: AtomicU64,
}

/// Cap on memoized outcomes per snapshot: parameter combinations are few
/// (budget × weight × cov), so a short linear-scanned list suffices.
const SELECT_CACHE_CAP: usize = 16;

/// Everything the writer hands to [`Snapshot::assemble`] besides the epoch.
#[derive(Debug, Default)]
struct SnapshotParts {
    repo: UserRepository,
    groups: GroupSet,
    csr: CsrGraph,
    seeds_iden: Vec<f64>,
    seeds_lbs: Vec<f64>,
    carried: Vec<(SelectParams, SelectOutcome)>,
    build: EpochBuildStats,
}

impl Snapshot {
    fn assemble(epoch: u64, parts: SnapshotParts) -> Self {
        let lbs_weights = WeightScheme::LinearBySize.weights(&parts.groups);
        Self {
            epoch,
            repo: parts.repo,
            groups: parts.groups,
            csr: parts.csr,
            lbs_weights,
            select_cache: Mutex::new(Vec::new()),
            carried: parts.carried,
            seeds_iden: parts.seeds_iden,
            seeds_lbs: parts.seeds_lbs,
            build: parts.build,
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            carried_hits: AtomicU64::new(0),
        }
    }

    /// The snapshot's epoch: 0 for the initial load, incremented by one
    /// per published update batch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen repository.
    pub fn repo(&self) -> &UserRepository {
        &self.repo
    }

    /// The frozen group set.
    pub fn groups(&self) -> &GroupSet {
        &self.groups
    }

    /// The prebuilt CSR adjacency of [`Snapshot::groups`].
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Builds the weight vector for `scheme` — prebuilt for LBS.
    fn weights_for(&self, scheme: WeightScheme) -> Vec<f64> {
        match scheme {
            WeightScheme::LinearBySize => self.lbs_weights.clone(),
            WeightScheme::Identical => vec![1.0; self.groups.len()],
        }
    }

    /// Runs lazy greedy against the prebuilt CSR graph, checking `deadline`
    /// between greedy rounds. A deadline hit maps to
    /// [`ServiceError::DeadlineExceeded`]; the partial prefix is discarded.
    pub fn select(
        &self,
        params: &SelectParams,
        deadline: Option<Instant>,
    ) -> Result<SelectOutcome, ServiceError> {
        self.select_with(params, deadline, false)
    }

    /// [`Snapshot::select`] with an explicit read mode. With
    /// `stale_ok = true`, a memoized selection carried forward from an
    /// earlier epoch may be served instead of recomputing: the outcome is
    /// tagged `stale`, keeps the epoch it was computed on, and certifies
    /// [`SelectOutcome::certified_score_lb`] against this epoch. The
    /// default (`false`) path never serves carried outcomes, so existing
    /// behavior is unchanged.
    pub fn select_with(
        &self,
        params: &SelectParams,
        deadline: Option<Instant>,
        stale_ok: bool,
    ) -> Result<SelectOutcome, ServiceError> {
        if params.budget == 0 {
            return Err(ServiceError::Core(
                podium_core::error::CoreError::ZeroBudget,
            ));
        }
        // Memo hit: the result was already computed against this very
        // epoch, so it is exact. Returned even past the deadline — the
        // deadline bounds computation, and a hit costs none.
        if let Some(mut hit) = self.cached(params) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            hit.cache_hit = true;
            return Ok(hit);
        }
        if stale_ok {
            if let Some(hit) = self.carried.iter().find(|(p, _)| p == params) {
                self.carried_hits.fetch_add(1, Ordering::Relaxed);
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                let mut outcome = hit.1.clone();
                outcome.cache_hit = true;
                outcome.stale = true;
                return Ok(outcome);
            }
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let weights = self.weights_for(params.weight);
        let covs = params.cov.cov(&self.groups, params.budget);
        let inst = DiversificationInstance::new(&self.groups, weights, covs);
        let seeds = self.seed_pairs(params.weight);
        let (selection, completed) = match (&seeds, deadline) {
            (Some(s), d) => {
                let mut stop = move |_: usize| d.is_some_and(|d| Instant::now() >= d);
                lazy_select_seeded_deadline(&inst, &self.csr, params.budget, s, &mut stop)
            }
            (None, Some(d)) => {
                lazy_select_deadline(&inst, &self.csr, params.budget, None, &mut |_| {
                    Instant::now() >= d
                })
            }
            (None, None) => (
                podium_core::engine::lazy_select_csr(&inst, &self.csr, params.budget, None),
                true,
            ),
        };
        if !completed {
            return Err(ServiceError::DeadlineExceeded);
        }
        let names = self.user_names(&selection.users);
        let score = selection.score;
        let outcome = SelectOutcome {
            epoch: self.epoch,
            selection,
            names,
            cache_hit: false,
            stale: false,
            certified_score_lb: score,
        };
        self.memoize(params, &outcome);
        Ok(outcome)
    }

    /// The warm-start seed pairs for `scheme`, when this epoch was
    /// published with seed bounds covering every user.
    fn seed_pairs(&self, scheme: WeightScheme) -> Option<Vec<(u32, f64)>> {
        let bounds = match scheme {
            WeightScheme::Identical => &self.seeds_iden,
            WeightScheme::LinearBySize => &self.seeds_lbs,
        };
        if bounds.len() != self.csr.user_count() {
            return None;
        }
        Some(
            bounds
                .iter()
                .enumerate()
                .map(|(u, &bound)| (UserId::from_index(u).0, bound))
                .collect(),
        )
    }

    /// All memoized outcomes reachable on this epoch: fresh entries first,
    /// then still-valid carried ones (fresh wins on parameter collisions).
    fn memo_entries(&self) -> Vec<(SelectParams, SelectOutcome)> {
        let mut out = poison::recover(self.select_cache.lock()).clone();
        for (p, o) in &self.carried {
            if !out.iter().any(|(q, _)| q == p) {
                out.push((*p, o.clone()));
            }
        }
        out
    }

    /// This epoch's build breakdown, as recorded by the publishing writer.
    pub fn build_stats(&self) -> &EpochBuildStats {
        &self.build
    }

    /// Carried (stale-served) memo hits on this epoch.
    pub fn carried_hit_count(&self) -> u64 {
        self.carried_hits.load(Ordering::Relaxed)
    }

    fn cached(&self, params: &SelectParams) -> Option<SelectOutcome> {
        let cache = poison::recover(self.select_cache.lock());
        cache
            .iter()
            .find(|(p, _)| p == params)
            .map(|(_, outcome)| outcome.clone())
    }

    fn memoize(&self, params: &SelectParams, outcome: &SelectOutcome) {
        let mut cache = poison::recover(self.select_cache.lock());
        if cache.iter().any(|(p, _)| p == params) {
            return; // a concurrent worker raced us to the same miss
        }
        if cache.len() >= SELECT_CACHE_CAP {
            cache.remove(0);
        }
        cache.push((*params, outcome.clone()));
    }

    /// `(hits, misses)` of the memoized select cache — one miss per
    /// distinct parameter combination per epoch in the steady state.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Resolves user ids to names against this snapshot's repository.
    pub fn user_names(&self, users: &[UserId]) -> Vec<String> {
        users
            .iter()
            .map(|&u| {
                self.repo
                    .user_name(u)
                    .map(str::to_owned)
                    .unwrap_or_else(|_| format!("<user {u}>"))
            })
            .collect()
    }
}

/// Holder of the current snapshot; cheap concurrent reads, swap-on-publish.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
}

impl SnapshotStore {
    fn new(initial: Arc<Snapshot>) -> Self {
        Self {
            current: RwLock::new(initial),
        }
    }

    /// Clones out the current snapshot. The read lock is held only for the
    /// `Arc` clone; the caller then works against immutable data.
    pub fn load(&self) -> Arc<Snapshot> {
        poison::recover(self.current.read()).clone()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.load().epoch()
    }

    /// Swaps in a new snapshot, returning the previous one.
    fn swap(&self, next: Arc<Snapshot>) -> Arc<Snapshot> {
        let mut guard = poison::recover(self.current.write());
        std::mem::replace(&mut *guard, next)
    }
}

/// One profile update: set (or retract, with `score: None`) the value of
/// `property` in `user`'s profile. Unknown users are created when setting
/// a score; unknown *properties* are rejected — the bucketing is fixed at
/// fit time (grouping runs offline, §7), so a property that was never
/// bucketed can form no groups. Re-fit and restart to add properties.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileUpdate {
    /// Target user name.
    pub user: String,
    /// Property label, e.g. `"avgRating Mexican"`.
    pub property: String,
    /// `Some(score)` sets; `None` retracts.
    pub score: Option<f64>,
}

/// What applying one update did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Whether a new user record was created for the update.
    pub created_user: bool,
    /// Whether the update changed the group structure (moved the user
    /// between buckets) as opposed to a same-bucket score tweak.
    pub regrouped: bool,
}

/// The single mutator of the repository: applies updates incrementally and
/// publishes immutable snapshots.
///
/// Not `Sync` by design — wrap it in a `Mutex` (as
/// [`crate::service::PodiumService`] does) if updates arrive from several
/// connections; the point is that *publishing* is single-writer while
/// reads scale out through the [`SnapshotStore`].
#[derive(Debug)]
pub struct RepositoryWriter {
    store: Arc<SnapshotStore>,
    repo: UserRepository,
    inc: IncrementalGroups,
    epoch: u64,
    mode: PublishMode,
    /// Whether changes have been applied since the last publish.
    dirty: bool,
    /// Updates applied since the last publish (the next epoch's batch).
    pending_updates: u64,
    /// Warm CELF seed bounds maintained across incremental publishes.
    seeds: SeedState,
    /// Retired epochs whose buffers we may reclaim once readers drop
    /// their references.
    retired: Vec<Arc<Snapshot>>,
    /// Reclaimed snapshot parts (group set, CSR, repository copy), reused
    /// on the next publish to avoid re-allocating the full membership
    /// structure, adjacency, and repository copy every epoch.
    recycled: Vec<RecycledParts>,
    /// Resolved updates applied since the last publish (the next epoch's
    /// batch), kept so recycled repository copies can be caught up by
    /// replay instead of a full copy. Incremental mode only.
    pending_log: Vec<LoggedUpdate>,
    /// The pending batch outgrew [`UPDATE_LOG_CAP`]; its log was dropped
    /// and the next publish falls back to the full repository copy.
    pending_log_overflow: bool,
    /// Per-epoch publish records (dirty slots + update log), newest last,
    /// kept while a recycled or still-retired buffer might need the span
    /// to be patched or replayed up to the current state.
    history: VecDeque<PublishRecord>,
    stats: PublishStats,
}

/// Reusable buffers reclaimed from a retired snapshot.
#[derive(Debug, Default)]
struct RecycledParts {
    /// Epoch the buffers were published at — the base the group-set patch
    /// and repository replay catch up from. `None` for fresh buffers.
    epoch: Option<u64>,
    groups: GroupSet,
    csr: CsrGraph,
    repo: UserRepository,
}

/// One applied profile update with its names resolved to ids, as logged
/// for repository replay.
#[derive(Debug, Clone)]
struct LoggedUpdate {
    user: UserId,
    property: PropertyId,
    /// `Some` sets, `None` retracts — already validated by `apply`.
    score: Option<f64>,
    /// `Some(name)` when the update created the user record.
    created: Option<String>,
}

/// What one published epoch changed — enough to catch a buffer that is
/// several epochs stale up to the present.
#[derive(Debug)]
struct PublishRecord {
    epoch: u64,
    /// Whether the epoch's delta kept the published group universe stable.
    patchable: bool,
    dirty_slots: Vec<(PropertyId, BucketIdx)>,
    /// The epoch's update batch; `None` when it overflowed the log cap.
    updates: Option<Vec<LoggedUpdate>>,
}

/// Writer-side warm-start seed bounds (see
/// [`podium_core::engine::lazy_select_seeded_deadline`]): exact for users
/// the delta touched, monotone-slack upper bounds for the rest.
#[derive(Debug, Default)]
struct SeedState {
    iden: Vec<f64>,
    lbs: Vec<f64>,
    /// Incremental publishes since the LBS bounds were last recomputed
    /// exactly; slack accumulates monotonically, so they are rebuilt every
    /// [`LBS_EXACT_REBUILD_EVERY`] epochs to stay tight.
    epochs_since_exact: u32,
}

/// How many slack-maintained publishes may pass before the LBS seed
/// bounds are recomputed exactly.
const LBS_EXACT_REBUILD_EVERY: u32 = 16;

/// Carried memos older than this many epochs are invalidated even if no
/// delta touched their covered groups — the bounded part of bounded
/// staleness.
const MEMO_CARRY_MAX_LAG: u64 = 64;

/// Cap on pooled snapshot parts; beyond double buffering there is nothing
/// to gain.
const RECYCLE_CAP: usize = 2;

/// Largest update batch kept for repository replay: beyond this, catching
/// a recycled copy up by replay stops beating the allocation-reusing full
/// copy, so the log is dropped and the copy path runs instead.
const UPDATE_LOG_CAP: usize = 1024;

/// Publish records retained for stale-buffer catch-up. Recycled buffers
/// are at most a few epochs behind in the steady state; a buffer older
/// than the window falls back to the full rebuild/copy paths.
const HISTORY_CAP: usize = 16;

impl RepositoryWriter {
    /// Builds the initial epoch-0 snapshot from a loaded repository and a
    /// fixed bucketing, returning the shared store and the writer, in the
    /// default [`PublishMode::Incremental`].
    pub fn new(repo: UserRepository, buckets: &PropertyBuckets) -> (Arc<SnapshotStore>, Self) {
        Self::with_mode(repo, buckets, PublishMode::default())
    }

    /// [`RepositoryWriter::new`] with an explicit publish mode.
    pub fn with_mode(
        repo: UserRepository,
        buckets: &PropertyBuckets,
        mode: PublishMode,
    ) -> (Arc<SnapshotStore>, Self) {
        let inc = IncrementalGroups::build(&repo, buckets);
        let groups = inc.snapshot();
        let csr = inc.snapshot_csr();
        let mut seeds = SeedState::default();
        if mode == PublishMode::Incremental {
            rebuild_seeds_exact(&inc, &mut seeds);
        }
        let snap = Arc::new(Snapshot::assemble(
            0,
            SnapshotParts {
                repo: repo.clone(),
                groups,
                csr,
                seeds_iden: seeds.iden.clone(),
                seeds_lbs: seeds.lbs.clone(),
                carried: Vec::new(),
                build: EpochBuildStats::default(),
            },
        ));
        let store = Arc::new(SnapshotStore::new(snap));
        let writer = Self {
            store: Arc::clone(&store),
            repo,
            inc,
            epoch: 0,
            mode,
            dirty: false,
            pending_updates: 0,
            seeds,
            retired: Vec::new(),
            recycled: Vec::new(),
            pending_log: Vec::new(),
            pending_log_overflow: false,
            history: VecDeque::new(),
            stats: PublishStats::default(),
        };
        (store, writer)
    }

    /// The writer's publish mode.
    pub fn mode(&self) -> PublishMode {
        self.mode
    }

    /// Cumulative publish statistics.
    pub fn publish_stats(&self) -> &PublishStats {
        &self.stats
    }

    /// The store this writer publishes to.
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// The epoch of the last published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The writer's working repository — what a checkpoint serializes.
    /// Between `apply` and `publish` this is ahead of the published
    /// snapshot; checkpoint callers sync (publish) first.
    pub fn repo(&self) -> &UserRepository {
        &self.repo
    }

    /// Jumps a freshly-built writer to `epoch` by republishing its current
    /// state there, so epochs stay monotone across a recovery. Publishing
    /// with no pending changes is the documented sync-barrier path, and
    /// the epoch jump clears the (empty) history so nothing tries to span
    /// the gap. Returns the published epoch (`epoch` itself, or `0`
    /// untouched when asked for the genesis epoch).
    pub fn resume_at_epoch(&mut self, epoch: u64) -> u64 {
        if epoch == 0 {
            return 0;
        }
        self.epoch = epoch - 1;
        self.history.clear();
        self.publish()
    }

    /// Aligns the *next* publish to land exactly on `epoch`. Returns
    /// `false` when `epoch` is not ahead of the current one (replay would
    /// go backwards — corruption). A jump of more than one clears the
    /// history so incremental catch-up never spans the gap.
    pub fn align_next_epoch(&mut self, epoch: u64) -> bool {
        if epoch <= self.epoch {
            return false;
        }
        if epoch > self.epoch + 1 {
            self.history.clear();
        }
        self.epoch = epoch - 1;
        true
    }

    /// Checks `update` against the current working state without applying
    /// anything: the property must exist, a score must be normalized, and
    /// a retraction must name a user that exists. These are exactly the
    /// failure modes of [`RepositoryWriter::apply`] — the durable path
    /// validates first, appends the WAL frame, then applies, so a frame
    /// that reaches the log is guaranteed to apply (now and at replay).
    pub fn validate(&self, update: &ProfileUpdate) -> Result<(), ServiceError> {
        if self.repo.property_id(&update.property).is_none() {
            return Err(ServiceError::BadRequest(format!(
                "unknown property '{}' (bucketing is fixed at fit time; re-fit to add properties)",
                update.property
            )));
        }
        match update.score {
            Some(s) if !s.is_finite() || !(0.0..=1.0).contains(&s) => Err(
                ServiceError::BadRequest(format!("score {s} outside the normalized [0, 1] range")),
            ),
            None if self.repo.user_by_name(&update.user).is_none() => {
                Err(ServiceError::BadRequest(format!(
                    "cannot retract a score for unknown user '{}'",
                    update.user
                )))
            }
            _ => Ok(()),
        }
    }

    /// Applies one update to the writer's working state. Not visible to
    /// readers until [`RepositoryWriter::publish`]. Fails exactly when
    /// [`RepositoryWriter::validate`] does, before any state is mutated.
    pub fn apply(&mut self, update: &ProfileUpdate) -> Result<ApplyOutcome, ServiceError> {
        let Some(pid) = self.repo.property_id(&update.property) else {
            return Err(ServiceError::BadRequest(format!(
                "unknown property '{}' (bucketing is fixed at fit time; re-fit to add properties)",
                update.property
            )));
        };
        if let Some(s) = update.score {
            if !s.is_finite() || !(0.0..=1.0).contains(&s) {
                return Err(ServiceError::BadRequest(format!(
                    "score {s} outside the normalized [0, 1] range"
                )));
            }
        }
        let (uid, created_user) = match self.repo.user_by_name(&update.user) {
            Some(u) => (u, false),
            None => {
                if update.score.is_none() {
                    return Err(ServiceError::BadRequest(format!(
                        "cannot retract a score for unknown user '{}'",
                        update.user
                    )));
                }
                let u = self.repo.add_user(update.user.clone());
                let mirrored = self.inc.add_user();
                debug_assert_eq!(u, mirrored, "repo and incremental user ids in lockstep");
                (u, true)
            }
        };
        match update.score {
            Some(s) => self
                .repo
                .set_score(uid, pid, s)
                .map_err(ServiceError::Core)?,
            None => {
                self.repo
                    .remove_score(uid, pid)
                    .map_err(ServiceError::Core)?;
            }
        }
        let (old, new) = self.inc.update_score(uid, pid, update.score);
        self.dirty = true;
        self.pending_updates += 1;
        if self.mode == PublishMode::Incremental && !self.pending_log_overflow {
            if self.pending_log.len() >= UPDATE_LOG_CAP {
                self.pending_log.clear();
                self.pending_log_overflow = true;
            } else {
                self.pending_log.push(LoggedUpdate {
                    user: uid,
                    property: pid,
                    score: update.score,
                    created: created_user.then(|| update.user.clone()),
                });
            }
        }
        Ok(ApplyOutcome {
            created_user,
            regrouped: old != new,
        })
    }

    /// Materializes the next snapshot from the applied updates and swaps it
    /// into the store. Returns the new epoch. A publish with no pending
    /// changes still bumps the epoch (callers use it as a sync barrier).
    ///
    /// In [`PublishMode::Incremental`] the epoch is built from the batch's
    /// [`EpochDelta`]: the CSR is patched in place on a recycled buffer
    /// (falling back to a rebuild when the group universe changed shape),
    /// the repository copy reuses a retired epoch's allocations, warm CELF
    /// seed bounds are maintained per changed user, and memoized selects
    /// covering no dirty group are carried forward with their certified
    /// score lower bound.
    pub fn publish(&mut self) -> u64 {
        let started = Instant::now();
        self.epoch += 1;
        let delta = self.inc.take_delta();
        let batch = std::mem::take(&mut self.pending_updates);
        let batch_log = if self.pending_log_overflow {
            self.pending_log_overflow = false;
            None
        } else {
            Some(std::mem::take(&mut self.pending_log))
        };
        let prev = self.store.load();
        let mut parts = self.recycled.pop().unwrap_or_default();

        let mut build = EpochBuildStats {
            publish_batch_size: batch,
            ..EpochBuildStats::default()
        };
        let incremental = self.mode == PublishMode::Incremental;

        // Group set: catch the recycled buffer up through the dirty-slot
        // union of every epoch it is behind; fall back to the full
        // O(edges) rebuild when the span is unpatchable or unknown.
        let base_epoch = parts.epoch;
        let groups_union = if incremental {
            base_epoch.and_then(|e| self.dirty_union_since(e, &delta))
        } else {
            None
        };
        build.groups_patched = groups_union
            .as_deref()
            .is_some_and(|union| self.inc.patch_groups_into(union, &mut parts.groups));
        if !build.groups_patched {
            self.inc.snapshot_into(&mut parts.groups);
        }

        let csr_started = Instant::now();
        let patched = incremental && self.inc.patch_csr_into(&delta, prev.csr(), &mut parts.csr);
        if patched {
            build.csr_patch_micros = elapsed_micros(csr_started);
        } else {
            self.inc.snapshot_csr_into(&mut parts.csr);
            build.full_rebuild_micros = elapsed_micros(csr_started);
        }
        build.patched = patched;

        if incremental {
            self.maintain_seeds(&delta, &prev, patched);
        }

        let mut carried = Vec::new();
        if incremental && patched {
            let dirty = self.inc.dirty_group_ids(&delta);
            for (p, o) in prev.memo_entries() {
                let expired = o.epoch + MEMO_CARRY_MAX_LAG < self.epoch;
                let covers_dirty = dirty.iter().any(|&g| {
                    o.selection
                        .covered_counts
                        .get(usize::try_from(g).unwrap_or(usize::MAX))
                        .is_some_and(|&c| c > 0)
                });
                if expired || covers_dirty {
                    build.memos_invalidated += 1;
                } else {
                    carried.push((p, o));
                    build.memos_carried += 1;
                }
            }
        } else {
            build.memos_invalidated = u64::try_from(prev.memo_entries().len()).unwrap_or(u64::MAX);
        }

        // Repository copy: replay the logged update batches onto the
        // recycled copy (O(batch) instead of O(users)), falling back to
        // the allocation-reusing full copy.
        build.repo_replayed = incremental
            && base_epoch
                .is_some_and(|e| self.replay_repo_since(e, batch_log.as_deref(), &mut parts.repo));
        let repo = if build.repo_replayed {
            std::mem::take(&mut parts.repo)
        } else if incremental {
            let mut recycled_repo = std::mem::take(&mut parts.repo);
            self.repo.clone_into_repo(&mut recycled_repo);
            recycled_repo
        } else {
            self.repo.clone()
        };

        if incremental {
            self.history.push_back(PublishRecord {
                epoch: self.epoch,
                patchable: delta.patchable(),
                dirty_slots: delta.dirty_slots().to_vec(),
                updates: batch_log,
            });
            if self.history.len() > HISTORY_CAP {
                self.history.pop_front();
            }
        }

        build.publish_micros = elapsed_micros(started);
        let snap = Arc::new(Snapshot::assemble(
            self.epoch,
            SnapshotParts {
                repo,
                groups: std::mem::take(&mut parts.groups),
                csr: std::mem::take(&mut parts.csr),
                seeds_iden: if incremental {
                    self.seeds.iden.clone()
                } else {
                    Vec::new()
                },
                seeds_lbs: if incremental {
                    self.seeds.lbs.clone()
                } else {
                    Vec::new()
                },
                carried,
                build,
            },
        ));
        let swapped = self.store.swap(snap);
        self.retired.push(swapped);
        drop(prev); // release our read pin so reclaim can unwrap it
        self.reclaim();
        self.prune_history();
        self.stats.record(build);
        self.dirty = false;
        self.epoch
    }

    /// The ascending, deduplicated dirty-slot union of every epoch in
    /// `(base_epoch, current)` plus the current `delta` — `None` when the
    /// history does not contiguously cover the span or any epoch in it
    /// (including the current one) changed the group universe.
    fn dirty_union_since(
        &self,
        base_epoch: u64,
        delta: &EpochDelta,
    ) -> Option<Vec<(PropertyId, BucketIdx)>> {
        if !delta.patchable() {
            return None;
        }
        let mut union: Vec<(PropertyId, BucketIdx)> = delta.dirty_slots().to_vec();
        // `self.epoch` is already the epoch being published; walk the
        // records of `base_epoch + 1 ..= self.epoch - 1`, newest first.
        let mut expected = self.epoch.checked_sub(1)?;
        for rec in self.history.iter().rev() {
            if expected == base_epoch {
                break;
            }
            if rec.epoch != expected || !rec.patchable {
                return None;
            }
            union.extend_from_slice(&rec.dirty_slots);
            expected = expected.checked_sub(1)?;
        }
        if expected != base_epoch {
            return None;
        }
        union.sort_unstable();
        union.dedup();
        Some(union)
    }

    /// Replays the logged update batches of `(base_epoch, current]` onto
    /// `target` — a repository copy as of `base_epoch` — bringing it up to
    /// the writer's working state. Returns `false` without touching
    /// `target` when the history does not contiguously cover the span or
    /// any batch in it (including the current one) overflowed the log.
    fn replay_repo_since(
        &self,
        base_epoch: u64,
        batch: Option<&[LoggedUpdate]>,
        target: &mut UserRepository,
    ) -> bool {
        let Some(batch) = batch else {
            return false;
        };
        let mut span: Vec<&[LoggedUpdate]> = Vec::new();
        let Some(mut expected) = self.epoch.checked_sub(1) else {
            return false;
        };
        for rec in self.history.iter().rev() {
            if expected == base_epoch {
                break;
            }
            let Some(updates) = rec.updates.as_deref() else {
                return false;
            };
            if rec.epoch != expected {
                return false;
            }
            span.push(updates);
            let Some(next) = expected.checked_sub(1) else {
                return false;
            };
            expected = next;
        }
        if expected != base_epoch {
            return false;
        }
        for updates in span.into_iter().rev() {
            replay_updates(updates, target);
        }
        replay_updates(batch, target);
        true
    }

    /// Drops publish records no recycled or still-retired buffer can need
    /// anymore (spans start strictly after a buffer's epoch).
    fn prune_history(&mut self) {
        let oldest_needed = self
            .recycled
            .iter()
            .filter_map(|p| p.epoch)
            .chain(self.retired.iter().map(|s| s.epoch()))
            .min();
        match oldest_needed {
            Some(base) => {
                while self.history.front().is_some_and(|r| r.epoch <= base) {
                    self.history.pop_front();
                }
            }
            None => self.history.clear(),
        }
    }

    /// Maintains the warm seed bounds across one incremental publish.
    /// Changed users get exact values; everyone else's LBS bound grows by
    /// the total growth of the dirty groups (a uniform slack that keeps
    /// the bound an upper bound without touching O(n) memberships).
    /// Unpatchable deltas — and every [`LBS_EXACT_REBUILD_EVERY`]-th
    /// publish, to shed accumulated slack — trigger an exact O(E) rebuild.
    fn maintain_seeds(&mut self, delta: &EpochDelta, prev: &Snapshot, patched: bool) {
        let n = self.inc.user_count();
        if !patched
            || self.seeds.iden.len() != n
            || self.seeds.epochs_since_exact >= LBS_EXACT_REBUILD_EVERY
        {
            rebuild_seeds_exact(&self.inc, &mut self.seeds);
            return;
        }
        let dirty_ids = self.inc.dirty_group_ids(delta);
        debug_assert_eq!(
            dirty_ids.len(),
            delta.dirty_slots().len(),
            "patchable deltas have no empty dirty slots"
        );
        let mut slack = 0.0f64;
        for (&(p, b), &g) in delta.dirty_slots().iter().zip(&dirty_ids) {
            let new_len = self.inc.members(p, b).len();
            let old_len = prev
                .csr()
                .members_of(usize::try_from(g).unwrap_or(usize::MAX))
                .len();
            // Group sizes are bounded by the u32 user count, so the
            // growth converts to f64 exactly.
            let grown = new_len.saturating_sub(old_len);
            slack += f64::from(u32::try_from(grown).unwrap_or(u32::MAX));
        }
        if slack > 0.0 {
            let changed = delta.changed_users();
            let mut ci = 0usize;
            for (u, bound) in self.seeds.lbs.iter_mut().enumerate() {
                // podium-lint: allow(index) — guarded by ci < changed.len() in the same condition
                if ci < changed.len() && changed[ci].index() == u {
                    ci += 1;
                    continue;
                }
                *bound += slack;
            }
        }
        for &u in delta.changed_users() {
            let (degree, sizes) = self.inc.seed_gains_of(u);
            // podium-lint: allow(index) — seed vectors are resized to the user count on every publish
            self.seeds.iden[u.index()] = degree;
            // podium-lint: allow(index) — same bound: lbs has one slot per user
            self.seeds.lbs[u.index()] = sizes;
        }
        self.seeds.epochs_since_exact += 1;
    }

    /// Publishes only if updates were applied since the last publish.
    pub fn publish_if_dirty(&mut self) -> Option<u64> {
        self.dirty.then(|| self.publish())
    }

    /// Moves the buffers of retired snapshots nobody references anymore
    /// into the recycle pool.
    fn reclaim(&mut self) {
        let mut still_referenced = Vec::with_capacity(self.retired.len());
        for snap in self.retired.drain(..) {
            match Arc::try_unwrap(snap) {
                Ok(owned) => {
                    if self.recycled.len() < RECYCLE_CAP {
                        self.recycled.push(RecycledParts {
                            epoch: Some(owned.epoch),
                            groups: owned.groups,
                            csr: owned.csr,
                            repo: owned.repo,
                        });
                    }
                }
                Err(shared) => still_referenced.push(shared),
            }
        }
        self.retired = still_referenced;
    }
}

/// Replays one logged batch onto a repository copy. Every operation
/// succeeded against the identical state once, so failures are impossible
/// by construction; they are swallowed (leaving a full-copy-equivalent
/// divergence to the debug assertions) rather than panicking the writer.
fn replay_updates(updates: &[LoggedUpdate], target: &mut UserRepository) {
    for u in updates {
        if let Some(name) = &u.created {
            let got = target.add_user(name.clone());
            debug_assert_eq!(got, u.user, "replay ids in lockstep");
        }
        match u.score {
            Some(s) => {
                let applied = target.set_score(u.user, u.property, s);
                debug_assert!(applied.is_ok(), "replayed set_score cannot fail");
            }
            None => {
                let removed = target.remove_score(u.user, u.property);
                debug_assert!(removed.is_ok(), "replayed remove_score cannot fail");
            }
        }
    }
}

/// Recomputes both seed-bound vectors exactly from the incremental state.
fn rebuild_seeds_exact(inc: &IncrementalGroups, seeds: &mut SeedState) {
    let n = inc.user_count();
    seeds.iden.clear();
    seeds.lbs.clear();
    seeds.iden.reserve(n);
    seeds.lbs.reserve(n);
    for u in 0..n {
        let (degree, sizes) = inc.seed_gains_of(UserId::from_index(u));
        seeds.iden.push(degree);
        seeds.lbs.push(sizes);
    }
    seeds.epochs_since_exact = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use podium_core::bucket::BucketingConfig;
    use podium_core::engine::{EngineVariant, SelectionEngine};

    fn seed_repo() -> UserRepository {
        let mut repo = UserRepository::new();
        let mex = repo.intern_property("avgRating Mexican");
        let tokyo = repo.intern_property("livesIn Tokyo");
        for (i, name) in ["Alice", "Bob", "Carol", "David", "Eve", "Frank"]
            .iter()
            .enumerate()
        {
            let u = repo.add_user(*name);
            repo.set_score(u, mex, (i as f64) / 6.0).unwrap();
            if i % 2 == 0 {
                repo.set_score(u, tokyo, 1.0).unwrap();
            }
        }
        repo
    }

    fn writer() -> (Arc<SnapshotStore>, RepositoryWriter) {
        let repo = seed_repo();
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        RepositoryWriter::new(repo, &buckets)
    }

    /// Once the recycle pool is warm and the publish history covers the
    /// buffers' staleness span, a steady-state publish takes every fast
    /// path at once: CSR patch, group-set patch, and repository replay.
    #[test]
    fn steady_state_publishes_patch_everything() {
        let (store, mut w) = writer();
        // Frank oscillates between the 0.5 and 0.83 Mexican buckets; both
        // stay non-empty (David holds one, Eve the other), so every delta
        // is patchable.
        for i in 0..6u32 {
            w.apply(&ProfileUpdate {
                user: "Frank".into(),
                property: "avgRating Mexican".into(),
                score: Some(if i % 2 == 0 { 0.5 } else { 0.83 }),
            })
            .unwrap();
            w.publish();
        }
        let build = *store.load().build_stats();
        assert!(build.patched, "CSR was patched");
        assert!(build.groups_patched, "group set was patched in place");
        assert!(build.repo_replayed, "repository was caught up by replay");

        // An unpatchable publish (new user) falls back everywhere but
        // still replays the repository (replay handles user creation).
        w.apply(&ProfileUpdate {
            user: "Grace".into(),
            property: "avgRating Mexican".into(),
            score: Some(0.4),
        })
        .unwrap();
        w.publish();
        let build = *store.load().build_stats();
        assert!(!build.patched);
        assert!(!build.groups_patched);
        assert!(build.repo_replayed, "replay survives user creation");
        assert_eq!(
            store.load().user_names(&[UserId::from_index(6)]),
            vec!["Grace".to_owned()]
        );

        // And the steady state resumes afterwards.
        for _ in 0..3 {
            w.apply(&ProfileUpdate {
                user: "Grace".into(),
                property: "avgRating Mexican".into(),
                score: Some(0.9),
            })
            .unwrap();
            w.apply(&ProfileUpdate {
                user: "Grace".into(),
                property: "avgRating Mexican".into(),
                score: Some(0.4),
            })
            .unwrap();
            w.publish();
        }
        let build = *store.load().build_stats();
        assert!(build.patched && build.groups_patched && build.repo_replayed);
    }

    /// `validate` must agree with `apply` on every failure mode, or the
    /// durable path's validate → WAL-append → apply ordering could log a
    /// frame that then refuses to apply (live or at replay).
    #[test]
    fn validate_mirrors_apply_verdicts() {
        let cases = [
            ("Alice", "avgRating Mexican", Some(0.7), true),
            ("Newcomer", "avgRating Mexican", Some(0.1), true),
            ("Alice", "avgRating Mexican", None, true),
            ("Alice", "never-bucketed", Some(0.5), false),
            ("Alice", "avgRating Mexican", Some(1.5), false),
            ("Alice", "avgRating Mexican", Some(f64::NAN), false),
            ("Nobody", "avgRating Mexican", None, false),
        ];
        for (user, property, score, expect_ok) in cases {
            // A fresh writer per case: `apply` mutates on success.
            let (_store, mut w) = writer();
            let update = ProfileUpdate {
                user: user.into(),
                property: property.into(),
                score,
            };
            let validated = w.validate(&update);
            let applied = w.apply(&update);
            assert_eq!(
                validated.is_ok(),
                expect_ok,
                "validate({user}, {property}, {score:?})"
            );
            assert_eq!(
                validated.is_ok(),
                applied.is_ok(),
                "validate and apply disagree on ({user}, {property}, {score:?})"
            );
        }
    }

    #[test]
    fn epoch_zero_matches_batch_build() {
        let (store, _w) = writer();
        let snap = store.load();
        assert_eq!(snap.epoch(), 0);
        let repo = seed_repo();
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let batch = GroupSet::build(&repo, &buckets);
        assert_eq!(snap.groups().len(), batch.len());
        for ((_, a), (_, b)) in snap.groups().iter().zip(batch.iter()) {
            assert_eq!(a.members, b.members);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn snapshot_select_matches_engine() {
        let (store, _w) = writer();
        let snap = store.load();
        let params = SelectParams {
            budget: 3,
            weight: WeightScheme::LinearBySize,
            cov: CovScheme::Single,
        };
        let outcome = snap.select(&params, None).unwrap();
        let inst = DiversificationInstance::from_schemes(
            snap.groups(),
            WeightScheme::LinearBySize,
            CovScheme::Single,
            3,
        );
        let engine = SelectionEngine::new(&inst);
        let reference = engine.select(EngineVariant::LazyHeap, 3);
        assert_eq!(outcome.selection, reference);
        assert_eq!(outcome.names.len(), 3);
    }

    #[test]
    fn published_epochs_are_isolated_from_later_updates() {
        let (store, mut w) = writer();
        let before = store.load();
        w.apply(&ProfileUpdate {
            user: "Bob".into(),
            property: "avgRating Mexican".into(),
            score: Some(0.95),
        })
        .unwrap();
        assert_eq!(
            store.load().epoch(),
            0,
            "apply without publish stays invisible"
        );
        let e1 = w.publish();
        assert_eq!(e1, 1);
        let after = store.load();
        assert_eq!(after.epoch(), 1);
        // The pinned pre-update snapshot still shows the old score.
        let bob = before.repo().user_by_name("Bob").unwrap();
        let mex = before.repo().property_id("avgRating Mexican").unwrap();
        assert_eq!(before.repo().score(bob, mex), Some(1.0 / 6.0));
        assert_eq!(after.repo().score(bob, mex), Some(0.95));
    }

    #[test]
    fn writer_snapshot_equals_from_scratch_rebuild() {
        let (store, mut w) = writer();
        for (i, (user, score)) in [
            ("Bob", Some(0.95)),
            ("Carol", Some(0.05)),
            ("Grace", Some(0.5)),
            ("Alice", None),
            ("Grace", Some(0.92)),
        ]
        .iter()
        .enumerate()
        {
            w.apply(&ProfileUpdate {
                user: (*user).into(),
                property: "avgRating Mexican".into(),
                score: *score,
            })
            .unwrap();
            let epoch = w.publish();
            assert_eq!(epoch, i as u64 + 1);
        }
        let snap = store.load();
        // Rebuild from the writer's own repository with the same (fixed)
        // bucket boundaries: group sets must agree exactly.
        let seed = seed_repo();
        let buckets = BucketingConfig::paper_default().bucketize(&seed);
        let batch = GroupSet::build(snap.repo(), &buckets);
        assert_eq!(snap.groups().len(), batch.len());
        for ((_, a), (_, b)) in snap.groups().iter().zip(batch.iter()) {
            assert_eq!(a.members, b.members);
            assert_eq!(a.kind, b.kind);
        }
        // CSR mirrors the group set.
        assert_eq!(snap.csr().group_count(), snap.groups().len());
        assert_eq!(snap.csr().user_count(), snap.groups().user_count());
    }

    #[test]
    fn unknown_property_and_bad_scores_rejected() {
        let (_store, mut w) = writer();
        let err = w
            .apply(&ProfileUpdate {
                user: "Alice".into(),
                property: "no such property".into(),
                score: Some(0.4),
            })
            .unwrap_err();
        assert_eq!(err.code(), "bad_request");
        for bad in [f64::NAN, -0.1, 1.7] {
            let err = w
                .apply(&ProfileUpdate {
                    user: "Alice".into(),
                    property: "avgRating Mexican".into(),
                    score: Some(bad),
                })
                .unwrap_err();
            assert_eq!(err.code(), "bad_request", "score {bad}");
        }
        let err = w
            .apply(&ProfileUpdate {
                user: "Nobody".into(),
                property: "avgRating Mexican".into(),
                score: None,
            })
            .unwrap_err();
        assert_eq!(err.code(), "bad_request");
    }

    #[test]
    fn group_set_recycling_reclaims_unreferenced_epochs() {
        let (store, mut w) = writer();
        for i in 0..5 {
            w.apply(&ProfileUpdate {
                user: "Bob".into(),
                property: "avgRating Mexican".into(),
                score: Some(0.1 + 0.15 * i as f64),
            })
            .unwrap();
            w.publish();
        }
        // No outstanding reader references except the current snapshot:
        // the pool should have filled.
        assert!(!w.recycled.is_empty(), "retired epochs were reclaimed");
        assert!(w.recycled.len() <= RECYCLE_CAP);
        assert_eq!(store.load().epoch(), 5);
    }

    #[test]
    fn publish_if_dirty_skips_clean_publishes() {
        let (_store, mut w) = writer();
        assert_eq!(w.publish_if_dirty(), None);
        w.apply(&ProfileUpdate {
            user: "Bob".into(),
            property: "avgRating Mexican".into(),
            score: Some(0.9),
        })
        .unwrap();
        assert_eq!(w.publish_if_dirty(), Some(1));
        assert_eq!(w.publish_if_dirty(), None);
    }

    #[test]
    fn repeated_selects_hit_the_memo_cache() {
        let (store, _w) = writer();
        let snap = store.load();
        let params = SelectParams {
            budget: 3,
            weight: WeightScheme::LinearBySize,
            cov: CovScheme::Single,
        };
        let first = snap.select(&params, None).unwrap();
        let second = snap.select(&params, None).unwrap();
        assert_eq!(first.names, second.names);
        assert_eq!(first.selection, second.selection);
        assert_eq!(snap.cache_stats(), (1, 1), "second call was a pure hit");
        // Different parameters are separate entries, not collisions.
        let other = SelectParams {
            budget: 2,
            weight: WeightScheme::Identical,
            cov: CovScheme::Single,
        };
        let third = snap.select(&other, None).unwrap();
        assert_eq!(third.selection.users.len(), 2);
        assert_eq!(snap.cache_stats(), (1, 2));
    }

    #[test]
    fn memo_cache_does_not_survive_a_publish() {
        let (store, mut w) = writer();
        let params = SelectParams {
            budget: 2,
            weight: WeightScheme::LinearBySize,
            cov: CovScheme::Single,
        };
        let before = store.load().select(&params, None).unwrap();
        assert_eq!(before.epoch, 0);
        w.apply(&ProfileUpdate {
            user: "Bob".into(),
            property: "avgRating Mexican".into(),
            score: Some(0.97),
        })
        .unwrap();
        w.publish();
        let snap = store.load();
        let after = snap.select(&params, None).unwrap();
        assert_eq!(after.epoch, 1);
        assert_eq!(
            snap.cache_stats(),
            (0, 1),
            "new epoch starts from an empty cache"
        );
        // And the fresh computation really ran against the new data.
        let rebuilt = DiversificationInstance::from_schemes(
            snap.groups(),
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        let engine = SelectionEngine::new(&rebuilt);
        assert_eq!(after.selection, engine.select(EngineVariant::LazyHeap, 2));
    }

    /// Budget-1 LBS select over [`seed_repo`]: Alice wins (covers the
    /// low-Mexican bucket and the Tokyo group), so updates that dirty
    /// only the *other* Mexican buckets leave the memo carriable.
    fn params1() -> SelectParams {
        SelectParams {
            budget: 1,
            weight: WeightScheme::LinearBySize,
            cov: CovScheme::Single,
        }
    }

    #[test]
    fn stale_ok_serves_carried_memo_with_certificate() {
        let (store, mut w) = writer();
        let before = store.load().select(&params1(), None).unwrap();
        // Frank 0.83 → 0.5 moves him between two Mexican buckets that
        // both stay non-empty: patchable, and disjoint from Alice's
        // covered groups.
        w.apply(&ProfileUpdate {
            user: "Frank".into(),
            property: "avgRating Mexican".into(),
            score: Some(0.5),
        })
        .unwrap();
        w.publish();
        let snap = store.load();
        assert!(snap.build_stats().patched, "delta was patchable");
        assert_eq!(snap.build_stats().memos_carried, 1);
        assert_eq!(snap.build_stats().memos_invalidated, 0);
        // Opted-in read: served from the carried memo, tagged stale,
        // keeping the epoch it was computed on.
        let stale = snap.select_with(&params1(), None, true).unwrap();
        assert!(stale.stale);
        assert!(stale.cache_hit);
        assert_eq!(stale.epoch, 0);
        assert_eq!(stale.names, before.names);
        assert_eq!(stale.certified_score_lb, before.selection.score);
        assert_eq!(snap.carried_hit_count(), 1);
        // The certificate really is a lower bound on the fresh score.
        let fresh = snap.select(&params1(), None).unwrap();
        assert!(!fresh.stale);
        assert_eq!(fresh.epoch, 1);
        assert!(fresh.selection.score >= stale.certified_score_lb);
    }

    #[test]
    fn memo_covering_a_dirty_group_is_invalidated() {
        let (store, mut w) = writer();
        store.load().select(&params1(), None).unwrap();
        // Bob leaves the low-Mexican bucket that Alice's selection
        // covers: the memo's certificate no longer holds group-wise.
        w.apply(&ProfileUpdate {
            user: "Bob".into(),
            property: "avgRating Mexican".into(),
            score: Some(0.97),
        })
        .unwrap();
        w.publish();
        let snap = store.load();
        assert!(snap.build_stats().patched);
        assert_eq!(snap.build_stats().memos_carried, 0);
        assert_eq!(snap.build_stats().memos_invalidated, 1);
        // Even an opted-in reader gets a fresh computation.
        let out = snap.select_with(&params1(), None, true).unwrap();
        assert!(!out.stale);
        assert!(!out.cache_hit);
        assert_eq!(out.epoch, 1);
        assert_eq!(snap.carried_hit_count(), 0);
    }

    #[test]
    fn full_rebuild_mode_never_patches_or_carries() {
        let repo = seed_repo();
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let (store, mut w) = RepositoryWriter::with_mode(repo, &buckets, PublishMode::FullRebuild);
        store.load().select(&params1(), None).unwrap();
        w.apply(&ProfileUpdate {
            user: "Frank".into(),
            property: "avgRating Mexican".into(),
            score: Some(0.5),
        })
        .unwrap();
        w.publish();
        let snap = store.load();
        assert!(!snap.build_stats().patched);
        assert_eq!(snap.build_stats().csr_patch_micros, 0);
        assert_eq!(snap.build_stats().memos_carried, 0);
        assert_eq!(snap.build_stats().memos_invalidated, 1);
        let out = snap.select_with(&params1(), None, true).unwrap();
        assert!(!out.stale, "nothing carried to serve stale from");
    }

    #[test]
    fn incremental_publishes_match_full_rebuild_bit_for_bit() {
        let repo = seed_repo();
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let (s_inc, mut w_inc) =
            RepositoryWriter::with_mode(repo.clone(), &buckets, PublishMode::Incremental);
        let (s_full, mut w_full) =
            RepositoryWriter::with_mode(repo, &buckets, PublishMode::FullRebuild);
        // Patchable move, new user (unpatchable), retraction, new score —
        // plus an empty-delta publish between steps.
        let script = [
            ("Carol", "avgRating Mexican", Some(0.9)),
            ("Grace", "avgRating Mexican", Some(0.5)),
            ("David", "avgRating Mexican", None),
            ("Frank", "livesIn Tokyo", Some(1.0)),
        ];
        for (step, (user, property, score)) in script.iter().enumerate() {
            let update = ProfileUpdate {
                user: (*user).into(),
                property: (*property).into(),
                score: *score,
            };
            w_inc.apply(&update).unwrap();
            w_full.apply(&update).unwrap();
            w_inc.publish();
            w_full.publish();
            if step == 1 {
                // Empty-delta epoch: publish with nothing pending.
                w_inc.publish();
                w_full.publish();
            }
            for budget in 1..=3 {
                for weight in [WeightScheme::LinearBySize, WeightScheme::Identical] {
                    let p = SelectParams {
                        budget,
                        weight,
                        cov: CovScheme::Single,
                    };
                    let a = s_inc.load().select(&p, None).unwrap();
                    let b = s_full.load().select(&p, None).unwrap();
                    assert_eq!(
                        a.selection, b.selection,
                        "step {step} budget {budget} {weight:?}: users, gains, \
                         score, and coverage must be bit-identical"
                    );
                    assert_eq!(a.names, b.names);
                }
            }
        }
    }

    #[test]
    fn publish_stats_track_batches_and_percentiles() {
        let (_store, mut w) = writer();
        for (user, score) in [("Alice", 0.2), ("Bob", 0.3), ("Carol", 0.44)] {
            w.apply(&ProfileUpdate {
                user: user.into(),
                property: "avgRating Mexican".into(),
                score: Some(score),
            })
            .unwrap();
        }
        w.publish();
        let stats = w.publish_stats();
        assert_eq!(stats.publishes, 1);
        assert_eq!(stats.batched_updates, 3);
        assert_eq!(stats.last.publish_batch_size, 3, "one epoch per batch");
        let (p50, p99) = stats.latency_percentiles();
        assert!(p50 <= p99);
    }

    #[test]
    fn deadline_in_the_past_maps_to_deadline_exceeded() {
        let (store, _w) = writer();
        let snap = store.load();
        let params = SelectParams {
            budget: 3,
            weight: WeightScheme::LinearBySize,
            cov: CovScheme::Single,
        };
        let already_past = Instant::now() - std::time::Duration::from_millis(1);
        let err = snap.select(&params, Some(already_past)).unwrap_err();
        assert_eq!(err, ServiceError::DeadlineExceeded);
    }
}
