//! Delta-equivalence property: an incremental writer (CSR patching, warm
//! CELF seeds, memo carrying) and a full-rebuild writer fed the same
//! update stream publish **bit-identical** epochs.
//!
//! At every published epoch the two paths must agree on
//!
//! * the CSR adjacency itself (offsets and edges, both directions), and
//! * the greedy selection for a grid of parameters — users, per-round
//!   gains, total score, and per-group coverage counts, exactly
//!   (`Selection` equality is full structural equality over `f64` bit
//!   patterns produced by the same arithmetic).
//!
//! The generator drives the writer through every delta shape: same-bucket
//! tweaks, bucket moves, retractions, brand-new users (unpatchable
//! deltas), empty-delta publishes (consecutive publish points), and
//! full-churn batches that touch every user. Deterministic companions
//! below pin the two riskiest regimes — long runs that cross the
//! periodic exact seed-rebuild boundary, and every-user churn.

use podium_core::bucket::BucketingConfig;
use podium_core::ids::UserId;
use podium_core::profile::UserRepository;
use podium_core::weights::{CovScheme, WeightScheme};
use podium_service::snapshot::{ProfileUpdate, PublishMode, RepositoryWriter, SelectParams};
use proptest::prelude::*;

const PROPERTIES: [&str; 2] = ["avgRating Mexican", "livesIn Tokyo"];

/// Grid score in [0, 1]: coarse enough to exercise every bucket edge of
/// the paper-default fixed bucketing.
fn score_from(grid: u8) -> f64 {
    f64::from(grid % 101) / 100.0
}

fn seed_repo(n: usize, grids: &[u8]) -> UserRepository {
    let mut repo = UserRepository::new();
    let pids: Vec<_> = PROPERTIES
        .iter()
        .map(|p| repo.intern_property(*p))
        .collect();
    for i in 0..n {
        let u = repo.add_user(format!("u{i}"));
        for (j, &pid) in pids.iter().enumerate() {
            let grid = grids[(i * pids.len() + j) % grids.len()];
            // A sparse profile: grid 0 means "no score for this property".
            if grid != 0 {
                repo.set_score(u, pid, score_from(grid)).unwrap();
            }
        }
    }
    repo
}

/// One generated operation against the update stream.
#[derive(Debug, Clone)]
struct Op {
    /// Index into the (growing) user universe; indexes past the current
    /// count create new users.
    user: usize,
    property: usize,
    /// `None` retracts, `Some(grid)` sets.
    score: Option<u8>,
    /// Publish both writers after applying this op.
    publish_after: bool,
}

fn op_strategy(universe: usize) -> impl Strategy<Value = Op> {
    (
        0..universe + 2,
        0..PROPERTIES.len(),
        prop::option::of(0u8..=101),
        any::<bool>(),
    )
        .prop_map(|(user, property, score, publish_after)| Op {
            user,
            property,
            score,
            publish_after,
        })
}

/// Asserts the two current snapshots are structurally identical and that
/// a parameter grid of selections is bit-for-bit equal.
fn assert_epochs_match(
    s_inc: &podium_service::snapshot::SnapshotStore,
    s_full: &podium_service::snapshot::SnapshotStore,
    n: usize,
    context: &str,
) {
    let a = s_inc.load();
    let b = s_full.load();
    assert_eq!(a.epoch(), b.epoch(), "{context}: epochs diverged");
    assert_eq!(a.csr(), b.csr(), "{context}: CSR adjacency diverged");
    // The group set (patched in place across possibly several epochs of
    // staleness) and the repository copy (caught up by update replay)
    // must also match the full rebuild structurally.
    assert_eq!(
        a.groups().len(),
        b.groups().len(),
        "{context}: group counts"
    );
    for ((ga, x), (_, y)) in a.groups().iter().zip(b.groups().iter()) {
        assert_eq!(x.kind, y.kind, "{context}: kind of {ga}");
        assert_eq!(x.members, y.members, "{context}: members of {ga}");
    }
    let everyone: Vec<UserId> = (0..n).map(UserId::from_index).collect();
    for &u in &everyone {
        assert_eq!(
            a.groups().groups_of(u),
            b.groups().groups_of(u),
            "{context}: reverse links of {u}"
        );
    }
    assert_eq!(
        a.user_names(&everyone),
        b.user_names(&everyone),
        "{context}: repository names diverged"
    );
    for budget in [1, 2, n.div_ceil(2)] {
        for weight in [WeightScheme::LinearBySize, WeightScheme::Identical] {
            let p = SelectParams {
                budget,
                weight,
                cov: CovScheme::Single,
            };
            let x = a.select(&p, None).unwrap();
            let y = b.select(&p, None).unwrap();
            assert_eq!(
                x.selection, y.selection,
                "{context}: budget {budget} {weight:?} selection diverged"
            );
        }
    }
}

/// Replays `ops` through an incremental and a full-rebuild writer,
/// asserting equivalence at every publish point.
fn replay(n: usize, grids: &[u8], ops: &[Op]) {
    let repo = seed_repo(n, grids);
    let buckets = BucketingConfig::paper_default().bucketize(&repo);
    let (s_inc, mut w_inc) =
        RepositoryWriter::with_mode(repo.clone(), &buckets, PublishMode::Incremental);
    let (s_full, mut w_full) =
        RepositoryWriter::with_mode(repo, &buckets, PublishMode::FullRebuild);
    assert_epochs_match(&s_inc, &s_full, n, "epoch 0");
    let mut user_count = n;
    for (i, op) in ops.iter().enumerate() {
        let user = op.user.min(user_count); // at most one past the end
        let is_new = user >= user_count;
        let update = ProfileUpdate {
            user: format!("u{user}"),
            // Retracting from an unknown user is a typed error; force
            // new users in with a score.
            property: PROPERTIES[op.property].to_owned(),
            score: match (is_new, op.score) {
                (true, None) => Some(0.5),
                (_, grid) => grid.map(score_from),
            },
        };
        let r_inc = w_inc.apply(&update);
        let r_full = w_full.apply(&update);
        assert_eq!(
            r_inc.is_ok(),
            r_full.is_ok(),
            "op {i}: apply outcomes diverged"
        );
        if r_inc.is_ok() && is_new {
            user_count += 1;
        }
        if op.publish_after {
            // Both an update-carrying publish and, immediately after, an
            // empty-delta publish (epoch bump with no pending changes).
            w_inc.publish();
            w_full.publish();
            assert_epochs_match(&s_inc, &s_full, user_count, &format!("op {i}"));
        }
    }
    w_inc.publish();
    w_full.publish();
    assert_epochs_match(&s_inc, &s_full, user_count, "final publish");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn patched_epochs_are_bit_identical_to_rebuilt_ones(
        n in 3usize..10,
        grids in prop::collection::vec(0u8..=101, 4..20),
        ops in prop::collection::vec(op_strategy(10), 0..24),
    ) {
        replay(n, &grids, &ops);
    }
}

/// Full churn: every user changes in every batch. The delta's changed
/// set is the whole universe, so seed maintenance recomputes everyone
/// and memo carrying finds every group dirty.
#[test]
fn full_churn_batches_stay_equivalent() {
    let ops: Vec<Op> = (0..40)
        .map(|i| Op {
            user: i % 8,
            property: i % PROPERTIES.len(),
            score: Some((7 * i % 102) as u8),
            publish_after: i % 8 == 7,
        })
        .collect();
    replay(8, &[13, 0, 47, 66, 91, 25, 58, 80], &ops);
}

/// Crosses the periodic exact-seed-rebuild boundary: many consecutive
/// single-user, patchable publishes so the uniform LBS slack accumulates
/// for well over `LBS_EXACT_REBUILD_EVERY` epochs.
#[test]
fn long_patchable_runs_stay_equivalent_across_seed_rebuilds() {
    let ops: Vec<Op> = (0..40)
        .map(|i| Op {
            user: 1 + i % 3,
            property: 0,
            score: Some((11 + 29 * i % 90) as u8),
            publish_after: true,
        })
        .collect();
    replay(6, &[40, 90, 50, 90, 60, 90, 10, 90, 20, 90, 70, 90], &ops);
}
