//! Protocol round-trip and robustness property tests.
//!
//! Three contracts over the wire layer:
//!
//! * **Inversion** — for every request shape, `parse_request` is the
//!   exact inverse of `encode_request`: randomly generated requests
//!   survive encode → decode unchanged.
//! * **Typed failure** — malformed input (truncation at any byte,
//!   random byte mutation, arbitrary garbage) yields a
//!   `ServiceError::BadRequest` (wire code `bad_request`), never a panic
//!   and never a silently-misparsed request.
//! * **Response validity** — success and error responses are valid
//!   single-line JSON objects carrying `ok` and, for errors, the stable
//!   code.

use podium_core::weights::{CovScheme, WeightScheme};
use podium_service::error::ServiceError;
use podium_service::protocol::{
    encode_request, error_response, ok_response, parse_request, Request,
};
use podium_service::session::FeedbackDelta;
use podium_service::snapshot::{ProfileUpdate, SelectParams};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use serde_json::Value;

/// Decodes draw primitives into `SelectParams`. Scores and budgets stay
/// in ranges the parser accepts; scheme choice is a 2×2 grid.
fn params_from(budget: usize, scheme_bits: u8) -> SelectParams {
    SelectParams {
        budget,
        weight: if scheme_bits & 1 == 0 {
            WeightScheme::LinearBySize
        } else {
            WeightScheme::Identical
        },
        cov: if scheme_bits & 2 == 0 {
            CovScheme::Single
        } else {
            CovScheme::Proportional
        },
    }
}

/// Builds a name exercising JSON string escaping: a plain stem plus an
/// optional nasty suffix (quotes, backslashes, control chars, unicode).
fn name_from(stem: u64, nasty: u8) -> String {
    let suffix = match nasty % 6 {
        0 => "",
        1 => " \"quoted\"",
        2 => " back\\slash",
        3 => "\ttabbed\n",
        4 => " ünïcödé 東京",
        _ => " sp ace",
    };
    format!("user-{stem}{suffix}")
}

/// Decodes a mask+values draw into a group-id list (possibly empty).
fn groups_from(values: &[u32]) -> Vec<u32> {
    values.to_vec()
}

/// One request of every shape, driven by drawn primitives. `shape` picks
/// the variant; the rest parameterize it.
#[allow(clippy::too_many_arguments)]
fn request_from(
    shape: u8,
    budget: usize,
    scheme_bits: u8,
    session: u64,
    deadline: u64,
    groups: &[u32],
    stem: u64,
    nasty: u8,
    score_grid: u16,
) -> Request {
    let params = params_from(budget, scheme_bits);
    match shape % 7 {
        0 => Request::Select {
            params,
            deadline_ms: if deadline == 0 { None } else { Some(deadline) },
            stale_ok: scheme_bits & 4 != 0,
        },
        1 => Request::Explain {
            params,
            top_k: (deadline as usize) % 100,
        },
        2 => Request::OpenSession,
        3 => Request::Refine {
            session,
            delta: FeedbackDelta {
                must_have: groups_from(groups),
                must_not: groups.iter().map(|g| g ^ 1).collect(),
                priority: groups.iter().rev().copied().collect(),
                standard: if scheme_bits & 4 == 0 {
                    None
                } else {
                    Some(groups_from(groups))
                },
                reset: scheme_bits & 8 != 0,
            },
            params,
        },
        4 => Request::CloseSession { session },
        5 => Request::UpdateProfile {
            update: ProfileUpdate {
                user: name_from(stem, nasty),
                property: name_from(stem ^ 0xFF, nasty.wrapping_add(1)),
                // Scores on a dyadic grid round-trip exactly through
                // decimal float formatting.
                score: if score_grid == 0 {
                    None
                } else {
                    Some((score_grid % 1024) as f64 / 1024.0)
                },
            },
        },
        _ => Request::Stats,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_request_shape_survives_encode_decode(
        shape in 0u8..7,
        budget in 0usize..10_000,
        scheme_bits in 0u8..16,
        session in 0u64..u64::MAX,
        deadline in 0u64..100_000,
        groups in prop::collection::vec(0u32..1_000_000, 0..8),
        stem in 0u64..u64::MAX,
        nasty in 0u8..u8::MAX,
        score_grid in 0u16..u16::MAX,
    ) {
        let request = request_from(
            shape, budget, scheme_bits, session, deadline, &groups, stem, nasty, score_grid,
        );
        let line = encode_request(&request);
        prop_assert!(!line.contains('\n'), "encoded request must be one line: {line}");
        let parsed = parse_request(&line);
        prop_assert!(parsed.is_ok(), "decode failed for {line}: {parsed:?}");
        prop_assert_eq!(parsed.unwrap(), request, "round trip changed the request: {}", line);
    }

    #[test]
    fn truncated_requests_fail_typed_never_panic(
        shape in 0u8..7,
        budget in 0usize..10_000,
        scheme_bits in 0u8..16,
        session in 0u64..u64::MAX,
        groups in prop::collection::vec(0u32..1_000_000, 0..8),
        cut_frac in 0.0f64..1.0,
    ) {
        let request = request_from(shape, budget, scheme_bits, session, 7, &groups, 3, 0, 5);
        let line = encode_request(&request);
        // Any strict prefix of a minified JSON object is invalid JSON
        // (the closing brace is the final byte), so the parser must
        // return a typed error — and in no case panic.
        let mut cut = (((line.len() as f64) * cut_frac) as usize).min(line.len() - 1);
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        let prefix = &line[..cut];
        match parse_request(prefix) {
            Ok(req) => prop_assert!(false, "truncated line parsed as {req:?}: {prefix}"),
            Err(e) => prop_assert_eq!(e.code(), "bad_request", "prefix: {}", prefix),
        }
    }

    #[test]
    fn mutated_requests_never_panic_and_errors_are_typed(
        shape in 0u8..7,
        budget in 0usize..10_000,
        groups in prop::collection::vec(0u32..1_000_000, 0..8),
        flip_at_frac in 0.0f64..1.0,
        flip_to in 0u8..128,
    ) {
        let request = request_from(shape, budget, 0, 9, 7, &groups, 3, 0, 5);
        let mut bytes = encode_request(&request).into_bytes();
        let at = ((bytes.len() as f64) * flip_at_frac) as usize % bytes.len();
        bytes[at] = flip_to;
        // The mutation may still be valid JSON (and even a valid
        // request); the contract is only: no panic, and failures carry
        // the bad_request code.
        if let Ok(text) = String::from_utf8(bytes) {
            if let Err(e) = parse_request(&text) {
                prop_assert_eq!(e.code(), "bad_request", "input: {}", text);
            }
        }
    }

    #[test]
    fn arbitrary_garbage_yields_bad_request(
        garbage in prop::collection::vec(0u8..128, 0..64),
    ) {
        let text = String::from_utf8(garbage).expect("ascii range");
        // Arbitrary short ASCII strings essentially never form a valid
        // request object; whenever they fail, the failure is typed.
        if let Err(e) = parse_request(&text) {
            prop_assert_eq!(e.code(), "bad_request", "input: {}", text);
        }
    }

    #[test]
    fn error_responses_are_valid_json_with_stable_codes(
        which in 0u8..7,
        session in 0u64..u64::MAX,
        msg_stem in 0u64..u64::MAX,
        nasty in 0u8..u8::MAX,
    ) {
        let err = match which {
            0 => ServiceError::Overloaded,
            1 => ServiceError::DeadlineExceeded,
            2 => ServiceError::BadRequest(name_from(msg_stem, nasty)),
            3 => ServiceError::UnknownSession(session),
            4 => ServiceError::SessionRetired {
                session,
                pinned: session / 2,
                current: session,
            },
            5 => ServiceError::ShuttingDown,
            _ => ServiceError::Core(podium_core::error::CoreError::ZeroBudget),
        };
        let line = error_response(&err);
        prop_assert!(!line.contains('\n'));
        let value: Value = serde_json::from_str(&line)
            .map_err(|e| TestCaseError::fail(format!("error response is not JSON: {e}: {line}")))?;
        prop_assert_eq!(value.get("ok").and_then(Value::as_bool), Some(false));
        prop_assert_eq!(
            value.get("error").and_then(Value::as_str),
            Some(err.code()),
            "{}", line
        );
        prop_assert!(
            value.get("message").and_then(Value::as_str).is_some(),
            "error responses carry a message: {}", line
        );
    }

    #[test]
    fn ok_responses_round_trip_their_fields(
        epoch in 0u64..u64::MAX,
        n in 0u64..1_000,
    ) {
        use podium_service::protocol::num_u64;
        let line = ok_response(vec![("epoch", num_u64(epoch)), ("count", num_u64(n))]);
        let value: Value = serde_json::from_str(&line)
            .map_err(|e| TestCaseError::fail(format!("ok response is not JSON: {e}: {line}")))?;
        prop_assert_eq!(value.get("ok").and_then(Value::as_bool), Some(true));
        prop_assert_eq!(value.get("epoch").and_then(Value::as_u64), Some(epoch));
        prop_assert_eq!(value.get("count").and_then(Value::as_u64), Some(n));
    }
}
