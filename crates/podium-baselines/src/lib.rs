//! # podium-baselines
//!
//! The comparator selection algorithms of the paper's experimental study
//! (§8.3), plus two extensions from the related-work comparison (Table 1):
//!
//! * [`random`] — uniform random selection (common survey practice);
//! * [`clustering`] — k-means over the high-dimensional profiles, one
//!   near-mean representative per cluster;
//! * [`distance`] — the distance-based S-Model: greedy maximization of
//!   pairwise Jaccard distances between property sets;
//! * [`optimal`] — exhaustive optimal selection (tiny instances only);
//! * [`stratified`] — stratified sampling with proportionate allocation
//!   (Definition 2.1) over disjoint strata;
//! * [`mmr`] — maximal marginal relevance re-ranking;
//! * [`tmodel`] — T-Model-style *predicted* coverage over a single
//!   category's opinion distribution.
//!
//! All selectors implement the common [`selector::Selector`] trait so the
//! experiment harness can drive them interchangeably.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustering;
pub mod distance;
pub mod mmr;
pub mod optimal;
pub mod random;
pub mod selector;
pub mod stratified;
pub mod tmodel;

/// Commonly used items.
pub mod prelude {
    pub use crate::clustering::KMeansSelector;
    pub use crate::distance::DistanceSelector;
    pub use crate::mmr::MmrSelector;
    pub use crate::optimal::OptimalSelector;
    pub use crate::random::RandomSelector;
    pub use crate::selector::Selector;
    pub use crate::stratified::StratifiedSelector;
    pub use crate::tmodel::TModelSelector;
}
