//! The common interface of all user-selection algorithms.

use podium_core::ids::UserId;
use podium_core::profile::UserRepository;

/// A budgeted user-selection algorithm: pick at most `b` users from the
/// repository.
///
/// `Send + Sync` so experiment harnesses can evaluate selectors across
/// worker threads (selectors are plain configuration data).
pub trait Selector: Send + Sync {
    /// A short display name for reports (e.g. `"Random"`).
    fn name(&self) -> &str;

    /// Selects at most `b` users. Implementations must be deterministic for
    /// a fixed construction (seeds are constructor parameters).
    fn select(&self, repo: &UserRepository, b: usize) -> Vec<UserId>;

    /// Like [`Self::select`] but asserts the [`check_selection`]
    /// postconditions in debug builds (zero cost in release). Harnesses
    /// should prefer this entry point when comparing selectors.
    ///
    /// Engine-backed selectors get instance- and CSR-level checks for free
    /// on this path: building a `SelectionEngine` under debug assertions
    /// runs `DiversificationInstance::validate()` and the CSR graph's
    /// structural self-check, so `select_checked` vets both the input
    /// instance and the output selection.
    fn select_checked(&self, repo: &UserRepository, b: usize) -> Vec<UserId> {
        let selection = self.select(repo, b);
        debug_assert!(
            check_selection(repo, b, &selection),
            "selector `{}` violated selection postconditions",
            self.name()
        );
        selection
    }
}

/// Validates common postconditions (used in tests and debug assertions):
/// within budget, no duplicates, ids in range.
pub fn check_selection(repo: &UserRepository, b: usize, selection: &[UserId]) -> bool {
    if selection.len() > b {
        return false;
    }
    let mut seen = std::collections::HashSet::new();
    selection
        .iter()
        .all(|u| u.index() < repo.user_count() && seen.insert(*u))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_selection_rules() {
        let mut repo = UserRepository::new();
        for i in 0..3 {
            repo.add_user(format!("u{i}"));
        }
        assert!(check_selection(&repo, 2, &[UserId(0), UserId(2)]));
        assert!(
            !check_selection(&repo, 1, &[UserId(0), UserId(2)]),
            "budget"
        );
        assert!(!check_selection(&repo, 3, &[UserId(0), UserId(0)]), "dupes");
        assert!(!check_selection(&repo, 3, &[UserId(9)]), "range");
    }

    #[test]
    fn select_checked_passes_through_valid_selections() {
        struct TakeFirst;
        impl Selector for TakeFirst {
            fn name(&self) -> &str {
                "TakeFirst"
            }
            fn select(&self, repo: &UserRepository, b: usize) -> Vec<UserId> {
                (0..repo.user_count().min(b) as u32).map(UserId).collect()
            }
        }
        let mut repo = UserRepository::new();
        for i in 0..4 {
            repo.add_user(format!("u{i}"));
        }
        assert_eq!(
            TakeFirst.select_checked(&repo, 2),
            vec![UserId(0), UserId(1)]
        );
    }
}
