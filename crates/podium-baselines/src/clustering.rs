//! Clustering baseline: k-means with near-mean representatives (§8.3).
//!
//! "Splitting the entire user repository into clusters, and choosing one
//! representative from each assuming each cluster represents a community."
//! The paper uses scikit-learn's k-means; this is a from-scratch
//! reimplementation suited to sparse high-dimensional profiles:
//!
//! * k-means++ seeding (deterministic for a fixed seed),
//! * Lloyd iterations with dense centroids and sparse points (missing
//!   properties are treated as 0, the standard vector-space embedding),
//! * per-cluster representative = the user closest to the final centroid.

use podium_core::ids::UserId;
use podium_core::profile::UserRepository;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::selector::Selector;

/// k-means clustering selector.
#[derive(Debug, Clone)]
pub struct KMeansSelector {
    seed: u64,
    max_iters: usize,
}

impl KMeansSelector {
    /// A seeded k-means selector with the default iteration cap (50, enough
    /// for convergence on the datasets used here).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            max_iters: 50,
        }
    }

    /// Overrides the Lloyd iteration cap.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Runs k-means and returns the cluster assignment per user (exposed for
    /// tests and diagnostics).
    pub fn cluster(&self, repo: &UserRepository, k: usize) -> Vec<usize> {
        let (assignment, _) = self.run(repo, k);
        assignment
    }

    #[allow(clippy::needless_range_loop)] // u indexes several parallel per-user arrays
    fn run(&self, repo: &UserRepository, k: usize) -> (Vec<usize>, Vec<Vec<f64>>) {
        let n = repo.user_count();
        let dims = repo.property_count();
        let k = k.min(n).max(1);
        let mut rng = StdRng::seed_from_u64(self.seed);

        // --- k-means++ seeding ---
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        let first = rng.random_range(0..n);
        centroids.push(dense_of(repo, UserId::from_index(first), dims));
        let mut d2: Vec<f64> = (0..n)
            .map(|u| sparse_dense_d2(repo, UserId::from_index(u), &centroids[0]))
            .collect();
        while centroids.len() < k {
            let total: f64 = d2.iter().sum();
            let next = if total <= 0.0 {
                rng.random_range(0..n)
            } else {
                let mut x = rng.random::<f64>() * total;
                let mut pick = n - 1;
                for (u, &w) in d2.iter().enumerate() {
                    x -= w;
                    if x <= 0.0 {
                        pick = u;
                        break;
                    }
                }
                pick
            };
            let c = dense_of(repo, UserId::from_index(next), dims);
            for u in 0..n {
                let nd = sparse_dense_d2(repo, UserId::from_index(u), &c);
                if nd < d2[u] {
                    d2[u] = nd;
                }
            }
            centroids.push(c);
        }

        // --- Lloyd iterations ---
        let mut assignment = vec![0usize; n];
        for _ in 0..self.max_iters {
            let mut changed = false;
            for u in 0..n {
                let uid = UserId::from_index(u);
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d = sparse_dense_d2(repo, uid, centroid);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if assignment[u] != best {
                    assignment[u] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            // Recompute centroids.
            let mut sums = vec![vec![0.0f64; dims]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for u in 0..n {
                let c = assignment[u];
                counts[c] += 1;
                for (p, s) in repo
                    .profile(UserId::from_index(u))
                    .expect("valid user")
                    .iter()
                {
                    sums[c][p.index()] += s;
                }
            }
            for (c, sum) in sums.iter_mut().enumerate() {
                if counts[c] == 0 {
                    continue; // empty cluster keeps its old centroid
                }
                for v in sum.iter_mut() {
                    *v /= counts[c] as f64;
                }
                centroids[c] = std::mem::take(sum);
            }
        }
        (assignment, centroids)
    }
}

impl Selector for KMeansSelector {
    fn name(&self) -> &str {
        "Clustering"
    }

    fn select(&self, repo: &UserRepository, b: usize) -> Vec<UserId> {
        let n = repo.user_count();
        if n == 0 || b == 0 {
            return Vec::new();
        }
        let k = b.min(n);
        let (assignment, centroids) = self.run(repo, k);

        // Near-mean representative per cluster.
        let mut best: Vec<Option<(f64, UserId)>> = vec![None; centroids.len()];
        for (u, &c) in assignment.iter().enumerate() {
            let uid = UserId::from_index(u);
            let d = sparse_dense_d2(repo, uid, &centroids[c]);
            if best[c].is_none_or(|(bd, _)| d < bd) {
                best[c] = Some((d, uid));
            }
        }
        let mut out: Vec<UserId> = best.into_iter().flatten().map(|(_, u)| u).collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Materializes `k` multidimensional clusters as a *group set* — the
/// "complex alternative" group definition that §3.2 contrasts with simple
/// groups: "multidimensional clusters have no intuitive label or meaning",
/// so explanations degrade, but the coverage machinery runs unchanged.
/// Used by the ablation experiments to quantify that trade-off.
pub fn cluster_group_set(
    repo: &UserRepository,
    k: usize,
    seed: u64,
) -> podium_core::group::GroupSet {
    let assignment = KMeansSelector::new(seed).cluster(repo, k);
    let n_clusters = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut memberships: Vec<Vec<UserId>> = vec![Vec::new(); n_clusters];
    for (u, &c) in assignment.iter().enumerate() {
        memberships[c].push(UserId::from_index(u));
    }
    memberships.retain(|m| !m.is_empty());
    podium_core::group::GroupSet::from_memberships(repo.user_count(), memberships)
}

/// Densifies one sparse profile.
fn dense_of(repo: &UserRepository, u: UserId, dims: usize) -> Vec<f64> {
    let mut v = vec![0.0f64; dims];
    for (p, s) in repo.profile(u).expect("valid user").iter() {
        v[p.index()] = s;
    }
    v
}

/// Squared Euclidean distance between a sparse profile and a dense centroid.
fn sparse_dense_d2(repo: &UserRepository, u: UserId, centroid: &[f64]) -> f64 {
    // ||x - c||² = ||c||² + Σ_{p ∈ x} (x_p − c_p)² − c_p²
    let mut d = centroid.iter().map(|c| c * c).sum::<f64>();
    for (p, s) in repo.profile(u).expect("valid user").iter() {
        let c = centroid[p.index()];
        d += (s - c) * (s - c) - c * c;
    }
    d.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::check_selection;

    /// Two obvious communities: users 0..5 share property A, 5..10 share B.
    fn two_communities() -> UserRepository {
        let mut repo = UserRepository::new();
        let a = {
            let mut ids = Vec::new();
            for i in 0..10 {
                ids.push(repo.add_user(format!("u{i}")));
            }
            ids
        };
        let pa = repo.intern_property("A");
        let pb = repo.intern_property("B");
        for (i, &u) in a.iter().enumerate() {
            if i < 5 {
                repo.set_score(u, pa, 0.9).unwrap();
            } else {
                repo.set_score(u, pb, 0.9).unwrap();
            }
        }
        repo
    }

    #[test]
    fn recovers_planted_communities() {
        let repo = two_communities();
        let sel = KMeansSelector::new(3);
        let assignment = sel.cluster(&repo, 2);
        // All of 0..5 share a label; all of 5..10 share the other.
        assert!(assignment[..5].iter().all(|&c| c == assignment[0]));
        assert!(assignment[5..].iter().all(|&c| c == assignment[5]));
        assert_ne!(assignment[0], assignment[5]);
    }

    #[test]
    fn selects_one_representative_per_community() {
        let repo = two_communities();
        let sel = KMeansSelector::new(3).select(&repo, 2);
        assert_eq!(sel.len(), 2);
        assert!(check_selection(&repo, 2, &sel));
        let sides: Vec<bool> = sel.iter().map(|u| u.index() < 5).collect();
        assert_ne!(sides[0], sides[1], "one from each community");
    }

    #[test]
    fn deterministic_per_seed() {
        let repo = two_communities();
        assert_eq!(
            KMeansSelector::new(7).select(&repo, 2),
            KMeansSelector::new(7).select(&repo, 2)
        );
    }

    #[test]
    fn handles_degenerate_cases() {
        let mut repo = UserRepository::new();
        repo.add_user("only");
        let sel = KMeansSelector::new(0).select(&repo, 5);
        assert_eq!(sel, vec![UserId(0)]);
        assert!(KMeansSelector::new(0)
            .select(&UserRepository::new(), 3)
            .is_empty());
    }

    #[test]
    fn cluster_group_set_partitions_users() {
        let repo = two_communities();
        let groups = cluster_group_set(&repo, 2, 3);
        assert_eq!(groups.len(), 2);
        // Disjoint cover of all users.
        let total: usize = groups.iter().map(|(_, g)| g.size()).sum();
        assert_eq!(total, repo.user_count());
        for u in 0..repo.user_count() {
            assert_eq!(groups.groups_of(UserId::from_index(u)).len(), 1);
        }
        // Labels are opaque cluster names — the §3.2 explainability cost.
        let label = groups.label(podium_core::ids::GroupId(0), &repo);
        assert!(label.starts_with('G'), "opaque label: {label}");
    }

    #[test]
    fn distance_identity() {
        let repo = two_communities();
        let dims = repo.property_count();
        let v = dense_of(&repo, UserId(0), dims);
        assert!(sparse_dense_d2(&repo, UserId(0), &v) < 1e-12);
        // Distance to other community's member is positive.
        let w = dense_of(&repo, UserId(9), dims);
        assert!(sparse_dense_d2(&repo, UserId(0), &w) > 0.5);
    }
}
