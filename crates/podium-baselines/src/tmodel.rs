//! T-Model-style predicted coverage-based selection (Wu et al. 2015; the
//! paper's Table 1 comparator).
//!
//! The T-Model "targets the selection of a user subset with a certain
//! opinion distribution, but only in a *single* category": it *predicts*
//! each candidate's opinion in one target category and greedily assembles
//! a subset whose predicted opinion histogram matches a target
//! distribution. This is *predicted* diversity (Table 1) — exactly the
//! family §2 argues is inadequate for multi-dimensional opinion
//! procurement, making it a useful contrast in ablations.
//!
//! Prediction here is intrinsic-to-predicted bridging: a user's opinion
//! bucket in the target category is predicted from their profile score for
//! the target property, falling back to the population's most common
//! bucket when the property is unknown.

use podium_core::bucket::BucketSet;
use podium_core::ids::{PropertyId, UserId};
use podium_core::profile::UserRepository;

use crate::selector::Selector;

/// T-Model-like selector over a single target property.
#[derive(Debug, Clone)]
pub struct TModelSelector {
    /// The single category (property) whose opinion distribution is
    /// targeted.
    pub property: PropertyId,
    /// Bucketing of the opinion scale.
    pub buckets: BucketSet,
    /// Target distribution over buckets; `None` targets the population's
    /// own distribution (proportional representation of predicted
    /// opinions).
    pub target: Option<Vec<f64>>,
    name: String,
}

impl TModelSelector {
    /// Builds a T-Model selector for `property`, split by `buckets`.
    pub fn new(property: PropertyId, buckets: BucketSet) -> Self {
        Self {
            property,
            buckets,
            target: None,
            name: "T-Model".to_owned(),
        }
    }

    /// Sets an explicit target distribution (length must equal the bucket
    /// count; it will be normalized).
    pub fn with_target(mut self, target: Vec<f64>) -> Self {
        assert_eq!(target.len(), self.buckets.len(), "one share per bucket");
        self.target = Some(target);
        self
    }

    /// Predicted opinion bucket of each user (exposed for tests).
    pub fn predict(&self, repo: &UserRepository) -> Vec<usize> {
        let k = self.buckets.len().max(1);
        // Population histogram for the fallback prediction.
        let mut hist = vec![0usize; k];
        let scores: Vec<Option<f64>> = repo.iter().map(|(_, p)| p.score(self.property)).collect();
        for s in scores.iter().flatten() {
            if let Some(b) = self.buckets.bucket_of(*s) {
                hist[b.index()] += 1;
            }
        }
        let fallback = hist
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        scores
            .into_iter()
            .map(|s| {
                s.and_then(|x| self.buckets.bucket_of(x))
                    .map(|b| b.index())
                    .unwrap_or(fallback)
            })
            .collect()
    }

    fn target_distribution(&self, predictions: &[usize]) -> Vec<f64> {
        let k = self.buckets.len().max(1);
        let raw = match &self.target {
            Some(t) => t.clone(),
            None => {
                let mut hist = vec![0.0; k];
                for &p in predictions {
                    hist[p] += 1.0;
                }
                hist
            }
        };
        let total: f64 = raw.iter().sum();
        if total <= 0.0 {
            vec![1.0 / k as f64; k]
        } else {
            raw.into_iter().map(|x| x / total).collect()
        }
    }
}

impl Selector for TModelSelector {
    fn name(&self) -> &str {
        &self.name
    }

    fn select(&self, repo: &UserRepository, b: usize) -> Vec<UserId> {
        let n = repo.user_count();
        let b = b.min(n);
        if b == 0 || self.buckets.is_empty() {
            return Vec::new();
        }
        let predictions = self.predict(repo);
        let target = self.target_distribution(&predictions);

        // Greedy: each step adds the user whose predicted bucket most
        // reduces the L1 distance between the subset's histogram and the
        // target (ties by user id).
        let k = self.buckets.len();
        let mut counts = vec![0usize; k];
        let mut selected = Vec::with_capacity(b);
        let mut in_sel = vec![false; n];
        for step in 1..=b {
            // Deficit of each bucket after `step` selections.
            let mut best: Option<(f64, usize)> = None;
            for u in 0..n {
                if in_sel[u] {
                    continue;
                }
                let bucket = predictions[u];
                let deficit = target[bucket] * step as f64 - counts[bucket] as f64;
                if best.is_none_or(|(d, _)| deficit > d) {
                    best = Some((deficit, u));
                }
            }
            let Some((_, u)) = best else { break };
            in_sel[u] = true;
            counts[predictions[u]] += 1;
            selected.push(UserId::from_index(u));
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use podium_core::bucket::BucketSet;

    fn repo() -> (UserRepository, PropertyId) {
        let mut r = UserRepository::new();
        let p = r.intern_property("avgRating Mexican");
        // 6 "high" users, 3 "low" users, 1 unknown.
        for i in 0..10 {
            let u = r.add_user(format!("u{i}"));
            if i < 6 {
                r.set_score(u, p, 0.9).unwrap();
            } else if i < 9 {
                r.set_score(u, p, 0.1).unwrap();
            }
        }
        (r, p)
    }

    fn buckets() -> BucketSet {
        BucketSet::from_interior_edges(&[0.5]).unwrap()
    }

    #[test]
    fn predictions_use_profile_and_fallback() {
        let (r, p) = repo();
        let sel = TModelSelector::new(p, buckets());
        let pred = sel.predict(&r);
        assert_eq!(&pred[..6], &[1; 6], "high bucket");
        assert_eq!(&pred[6..9], &[0; 3], "low bucket");
        assert_eq!(pred[9], 1, "unknown falls back to majority bucket");
    }

    #[test]
    fn population_target_yields_proportional_subset() {
        let (r, p) = repo();
        let sel = TModelSelector::new(p, buckets());
        // Predicted population: 7 high (incl. fallback), 3 low.
        let picked = sel.select(&r, 4);
        assert_eq!(picked.len(), 4);
        let pred = sel.predict(&r);
        let high = picked.iter().filter(|u| pred[u.index()] == 1).count();
        assert_eq!(high, 3, "≈70% of 4 seats");
    }

    #[test]
    fn explicit_target_is_respected() {
        let (r, p) = repo();
        let sel = TModelSelector::new(p, buckets()).with_target(vec![1.0, 1.0]);
        let picked = sel.select(&r, 4);
        let pred = sel.predict(&r);
        let high = picked.iter().filter(|u| pred[u.index()] == 1).count();
        assert_eq!(high, 2, "50/50 target");
    }

    #[test]
    fn single_category_blindness() {
        // The T-Model ignores every other property — the §2 critique.
        let (mut r, p) = repo();
        let q = r.intern_property("livesIn Tokyo");
        let u0 = UserId(0);
        r.set_score(u0, q, 1.0).unwrap();
        let with_extra = TModelSelector::new(p, buckets()).select(&r, 4);
        let (r2, p2) = repo();
        let without = TModelSelector::new(p2, buckets()).select(&r2, 4);
        assert_eq!(with_extra, without, "extra dimensions cannot matter");
    }

    #[test]
    fn degenerate_inputs() {
        let (r, p) = repo();
        assert!(TModelSelector::new(p, buckets()).select(&r, 0).is_empty());
        let empty = UserRepository::new();
        assert!(TModelSelector::new(p, buckets())
            .select(&empty, 3)
            .is_empty());
        let sel = TModelSelector::new(p, BucketSet::empty());
        assert!(sel.select(&r, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "one share per bucket")]
    fn mismatched_target_panics() {
        let (_, p) = repo();
        let _ = TModelSelector::new(p, buckets()).with_target(vec![1.0]);
    }
}
