//! The exhaustive Optimal Selection baseline (§8.3) as a [`Selector`].
//!
//! Wraps [`podium_core::exact::exact_select`] with a fixed diversification
//! instance recipe (LBS weights, Single coverage — the paper's defaults), so
//! the harness can run it alongside the other selectors. "Naturally
//! applicable only for small values of B": §8.5 reports 443 s for
//! `|𝒰| = 40, B = 5` and non-termination beyond `|𝒰| = 100` in the
//! authors' Python prototype.

use podium_core::bucket::BucketingConfig;
use podium_core::exact::exact_select;
use podium_core::group::GroupSet;
use podium_core::ids::UserId;
use podium_core::instance::DiversificationInstance;
use podium_core::profile::UserRepository;
use podium_core::weights::{CovScheme, WeightScheme};

use crate::selector::Selector;

/// Exhaustive optimal selector (LBS + Single objective).
#[derive(Debug, Clone)]
pub struct OptimalSelector {
    bucketing: BucketingConfig,
    /// Maximum number of subsets to enumerate before giving up (falls back
    /// to an empty selection — the harness treats that as "did not finish").
    pub subset_limit: u128,
}

impl OptimalSelector {
    /// Optimal selector with the paper-default bucketing.
    pub fn new() -> Self {
        Self {
            bucketing: BucketingConfig::paper_default(),
            subset_limit: 50_000_000,
        }
    }

    /// Overrides the bucketing configuration.
    pub fn with_bucketing(mut self, bucketing: BucketingConfig) -> Self {
        self.bucketing = bucketing;
        self
    }

    /// Overrides the enumeration limit.
    pub fn with_limit(mut self, limit: u128) -> Self {
        self.subset_limit = limit;
        self
    }
}

impl Default for OptimalSelector {
    fn default() -> Self {
        Self::new()
    }
}

impl Selector for OptimalSelector {
    fn name(&self) -> &str {
        "Optimal"
    }

    fn select(&self, repo: &UserRepository, b: usize) -> Vec<UserId> {
        if b == 0 || repo.user_count() == 0 {
            return Vec::new();
        }
        let buckets = self.bucketing.bucketize(repo);
        let groups = GroupSet::build(repo, &buckets);
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            b,
        );
        match exact_select(&inst, b, self.subset_limit) {
            Ok(sel) => sel.users,
            Err(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use podium_core::greedy::greedy_select;

    #[test]
    fn optimal_at_least_greedy_on_table2() {
        let repo = podium_data::table2::table2();
        let sel = OptimalSelector::new().select(&repo, 2);
        assert_eq!(sel.len(), 2);

        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let groups = GroupSet::build(&repo, &buckets);
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        let opt_score = inst.score_of(&sel);
        let greedy_score = greedy_select(&inst, 2).score;
        assert!(opt_score >= greedy_score);
        assert_eq!(opt_score, 17.0, "Example 3.8: greedy is optimal here");
    }

    #[test]
    fn respects_limit() {
        let repo = podium_data::table2::table2();
        let sel = OptimalSelector::new().with_limit(2).select(&repo, 2);
        assert!(sel.is_empty(), "over limit -> did not finish");
    }

    #[test]
    fn zero_budget() {
        let repo = podium_data::table2::table2();
        assert!(OptimalSelector::new().select(&repo, 0).is_empty());
    }
}
