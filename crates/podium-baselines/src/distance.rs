//! Distance-based diversification — the S-Model baseline (§8.3).
//!
//! "As a representative distance-based baseline we use the S-Model of [Wu et
//! al. 2015] via a greedy algorithm that maximizes the pairwise Jaccard
//! distances between the properties of the selected subset."
//!
//! The greedy builds the subset incrementally: the first pick maximizes the
//! average distance to a population sample; every later pick maximizes the
//! sum of Jaccard distances to the already-selected users (greedy max-sum
//! dispersion).

use podium_core::ids::UserId;
use podium_core::profile::UserRepository;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

use crate::selector::Selector;

/// Greedy max-sum Jaccard-distance selector.
#[derive(Debug, Clone)]
pub struct DistanceSelector {
    seed: u64,
    /// Population sample size used to seed the first pick (keeps the first
    /// step O(n · sample) instead of O(n²)).
    sample_size: usize,
}

impl DistanceSelector {
    /// A seeded distance-based selector.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            sample_size: 64,
        }
    }

    /// Overrides the seeding sample size.
    pub fn with_sample_size(mut self, s: usize) -> Self {
        self.sample_size = s.max(1);
        self
    }

    /// Sum of pairwise Jaccard distances within a subset — the S-Model
    /// objective this baseline greedily maximizes (exposed for tests and
    /// reports).
    pub fn dispersion(repo: &UserRepository, subset: &[UserId]) -> f64 {
        let mut total = 0.0;
        for i in 0..subset.len() {
            for j in (i + 1)..subset.len() {
                let a = repo.profile(subset[i]).expect("valid user");
                let b = repo.profile(subset[j]).expect("valid user");
                total += a.jaccard_distance(b);
            }
        }
        total
    }
}

impl Selector for DistanceSelector {
    fn name(&self) -> &str {
        "Distance"
    }

    fn select(&self, repo: &UserRepository, b: usize) -> Vec<UserId> {
        let n = repo.user_count();
        let b = b.min(n);
        if b == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sample_n = self.sample_size.min(n);
        let probe: Vec<UserId> = sample(&mut rng, n, sample_n)
            .into_iter()
            .map(UserId::from_index)
            .collect();

        // First pick: maximal average distance to the probe sample.
        let mut best = (f64::NEG_INFINITY, UserId(0));
        for u in 0..n {
            let uid = UserId::from_index(u);
            let pu = repo.profile(uid).expect("valid user");
            let d: f64 = probe
                .iter()
                .map(|&v| pu.jaccard_distance(repo.profile(v).expect("valid user")))
                .sum();
            if d > best.0 {
                best = (d, uid);
            }
        }
        let mut selected = vec![best.1];
        let mut in_sel = vec![false; n];
        in_sel[best.1.index()] = true;

        // Accumulated distance of every candidate to the selected set.
        let mut acc = vec![0.0f64; n];
        for u in 0..n {
            if in_sel[u] {
                continue;
            }
            acc[u] = repo
                .profile(UserId::from_index(u))
                .expect("valid user")
                .jaccard_distance(repo.profile(best.1).expect("valid user"));
        }

        while selected.len() < b {
            let mut pick = (f64::NEG_INFINITY, usize::MAX);
            for u in 0..n {
                if !in_sel[u] && acc[u] > pick.0 {
                    pick = (acc[u], u);
                }
            }
            if pick.1 == usize::MAX {
                break;
            }
            let uid = UserId::from_index(pick.1);
            in_sel[pick.1] = true;
            selected.push(uid);
            let pnew = repo.profile(uid).expect("valid user");
            for u in 0..n {
                if !in_sel[u] {
                    acc[u] += repo
                        .profile(UserId::from_index(u))
                        .expect("valid user")
                        .jaccard_distance(pnew);
                }
            }
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomSelector;
    use crate::selector::check_selection;

    /// Three property "camps" plus one eccentric user with unique properties.
    fn camps() -> UserRepository {
        let mut repo = UserRepository::new();
        let users: Vec<UserId> = (0..10).map(|i| repo.add_user(format!("u{i}"))).collect();
        let pa = repo.intern_property("A");
        let pb = repo.intern_property("B");
        let pc = repo.intern_property("C");
        let px = repo.intern_property("X-unique");
        for (i, &u) in users.iter().enumerate() {
            match i {
                0..=3 => repo.set_score(u, pa, 1.0).unwrap(),
                4..=6 => repo.set_score(u, pb, 1.0).unwrap(),
                7..=8 => repo.set_score(u, pc, 1.0).unwrap(),
                _ => repo.set_score(u, px, 1.0).unwrap(),
            }
        }
        repo
    }

    #[test]
    fn picks_mutually_distant_users() {
        let repo = camps();
        let sel = DistanceSelector::new(1).select(&repo, 4);
        assert!(check_selection(&repo, 4, &sel));
        // Optimal dispersion: one user per camp -> all pairwise distances 1.
        let d = DistanceSelector::dispersion(&repo, &sel);
        assert!((d - 6.0).abs() < 1e-9, "dispersion {d} of {sel:?}");
    }

    #[test]
    fn beats_random_on_dispersion() {
        let repo = camps();
        let dist = DistanceSelector::new(1).select(&repo, 3);
        let mut random_avg = 0.0;
        for seed in 0..20 {
            let r = RandomSelector::new(seed).select(&repo, 3);
            random_avg += DistanceSelector::dispersion(&repo, &r);
        }
        random_avg /= 20.0;
        assert!(
            DistanceSelector::dispersion(&repo, &dist) >= random_avg,
            "greedy dispersion at least matches random average"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let repo = camps();
        assert_eq!(
            DistanceSelector::new(3).select(&repo, 4),
            DistanceSelector::new(3).select(&repo, 4)
        );
    }

    #[test]
    fn handles_small_populations() {
        let mut repo = UserRepository::new();
        repo.add_user("a");
        repo.add_user("b");
        let sel = DistanceSelector::new(0).select(&repo, 5);
        assert_eq!(sel.len(), 2);
        assert!(DistanceSelector::new(0)
            .select(&UserRepository::new(), 2)
            .is_empty());
    }

    #[test]
    fn dispersion_of_singleton_is_zero() {
        let repo = camps();
        assert_eq!(DistanceSelector::dispersion(&repo, &[UserId(0)]), 0.0);
    }
}
