//! Maximal Marginal Relevance (MMR) selection — a classic IR diversification
//! baseline (Carbonell & Goldstein 1998, paper ref. \[20\]).
//!
//! MMR trades *relevance* against *novelty*:
//! `argmax_u λ · rel(u) − (1 − λ) · max_{v ∈ U} sim(u, v)`.
//! In the user-selection setting relevance is the user's activity level
//! (profile size, normalized) and similarity is Jaccard over property sets.
//! Included for the Table 1 related-work comparison; it exemplifies the
//! "optimizing properties across axes" family that §2 argues is inadequate
//! for opinion procurement.

use podium_core::ids::UserId;
use podium_core::profile::UserRepository;

use crate::selector::Selector;

/// MMR selector with tunable λ.
#[derive(Debug, Clone)]
pub struct MmrSelector {
    lambda: f64,
}

impl MmrSelector {
    /// An MMR selector; `lambda` ∈ [0, 1] weighs relevance vs. novelty
    /// (λ = 1 is pure relevance ranking, λ = 0 pure dispersion).
    pub fn new(lambda: f64) -> Self {
        Self {
            lambda: lambda.clamp(0.0, 1.0),
        }
    }
}

impl Selector for MmrSelector {
    fn name(&self) -> &str {
        "MMR"
    }

    fn select(&self, repo: &UserRepository, b: usize) -> Vec<UserId> {
        let n = repo.user_count();
        let b = b.min(n);
        if b == 0 {
            return Vec::new();
        }
        let max_profile = repo.max_profile_size().max(1) as f64;
        let rel: Vec<f64> = repo
            .iter()
            .map(|(_, p)| p.len() as f64 / max_profile)
            .collect();

        let mut selected: Vec<UserId> = Vec::with_capacity(b);
        let mut max_sim = vec![0.0f64; n]; // max similarity to selected
        let mut in_sel = vec![false; n];
        for round in 0..b {
            let mut best = (f64::NEG_INFINITY, usize::MAX);
            for u in 0..n {
                if in_sel[u] {
                    continue;
                }
                let novelty_penalty = if round == 0 { 0.0 } else { max_sim[u] };
                let score = self.lambda * rel[u] - (1.0 - self.lambda) * novelty_penalty;
                if score > best.0 {
                    best = (score, u);
                }
            }
            if best.1 == usize::MAX {
                break;
            }
            let uid = UserId::from_index(best.1);
            in_sel[best.1] = true;
            selected.push(uid);
            let pu = repo.profile(uid).expect("valid user");
            for v in 0..n {
                if !in_sel[v] {
                    let sim = 1.0
                        - repo
                            .profile(UserId::from_index(v))
                            .expect("valid user")
                            .jaccard_distance(pu);
                    if sim > max_sim[v] {
                        max_sim[v] = sim;
                    }
                }
            }
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::check_selection;

    /// Heavy user 0 (3 properties), twins 1/2 (same 2 properties), loner 3.
    fn repo() -> UserRepository {
        let mut r = UserRepository::new();
        let users: Vec<UserId> = (0..4).map(|i| r.add_user(format!("u{i}"))).collect();
        let ps: Vec<_> = (0..5).map(|i| r.intern_property(format!("p{i}"))).collect();
        r.set_score(users[0], ps[0], 1.0).unwrap();
        r.set_score(users[0], ps[1], 1.0).unwrap();
        r.set_score(users[0], ps[2], 1.0).unwrap();
        r.set_score(users[1], ps[0], 1.0).unwrap();
        r.set_score(users[1], ps[1], 1.0).unwrap();
        r.set_score(users[2], ps[0], 1.0).unwrap();
        r.set_score(users[2], ps[1], 1.0).unwrap();
        r.set_score(users[3], ps[4], 1.0).unwrap();
        r
    }

    #[test]
    fn first_pick_is_most_relevant() {
        let r = repo();
        let sel = MmrSelector::new(0.7).select(&r, 1);
        assert_eq!(sel, vec![UserId(0)], "largest profile wins round one");
    }

    #[test]
    fn novelty_avoids_twins() {
        let r = repo();
        let sel = MmrSelector::new(0.5).select(&r, 3);
        assert!(check_selection(&r, 3, &sel));
        // After picking one twin, the other is maximally similar; the loner
        // must enter before the second twin.
        let twins_picked = sel
            .iter()
            .filter(|u| u.index() == 1 || u.index() == 2)
            .count();
        assert_eq!(twins_picked, 1, "selection {sel:?}");
        assert!(sel.contains(&UserId(3)));
    }

    #[test]
    fn pure_relevance_ranks_by_profile_size() {
        let r = repo();
        let sel = MmrSelector::new(1.0).select(&r, 2);
        assert_eq!(sel[0], UserId(0));
        assert_eq!(sel[1].index(), 1, "ties broken by id");
    }

    #[test]
    fn lambda_clamped() {
        let r = repo();
        let sel = MmrSelector::new(7.0).select(&r, 1);
        assert_eq!(sel, vec![UserId(0)]);
    }

    #[test]
    fn handles_empty_and_overbudget() {
        assert!(MmrSelector::new(0.5)
            .select(&UserRepository::new(), 3)
            .is_empty());
        let r = repo();
        assert_eq!(MmrSelector::new(0.5).select(&r, 99).len(), 4);
    }
}
