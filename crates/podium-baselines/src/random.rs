//! Uniform random selection (§8.3).
//!
//! "A common practice in user selection for opinion procurement in the
//! context of e.g. surveys" — the null model every managed-diversity
//! algorithm must beat.

use podium_core::ids::UserId;
use podium_core::profile::UserRepository;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

use crate::selector::Selector;

/// Selects `b` users uniformly at random (without replacement).
#[derive(Debug, Clone)]
pub struct RandomSelector {
    seed: u64,
}

impl RandomSelector {
    /// A seeded random selector.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Selector for RandomSelector {
    fn name(&self) -> &str {
        "Random"
    }

    fn select(&self, repo: &UserRepository, b: usize) -> Vec<UserId> {
        let n = repo.user_count();
        let b = b.min(n);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out: Vec<UserId> = sample(&mut rng, n, b)
            .into_iter()
            .map(UserId::from_index)
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::check_selection;

    fn repo(n: usize) -> UserRepository {
        let mut r = UserRepository::new();
        for i in 0..n {
            r.add_user(format!("u{i}"));
        }
        r
    }

    #[test]
    fn selects_within_budget_without_duplicates() {
        let r = repo(50);
        let sel = RandomSelector::new(1).select(&r, 8);
        assert_eq!(sel.len(), 8);
        assert!(check_selection(&r, 8, &sel));
    }

    #[test]
    fn deterministic_per_seed() {
        let r = repo(30);
        assert_eq!(
            RandomSelector::new(5).select(&r, 5),
            RandomSelector::new(5).select(&r, 5)
        );
        assert_ne!(
            RandomSelector::new(5).select(&r, 5),
            RandomSelector::new(6).select(&r, 5),
            "different seeds should (almost surely) differ"
        );
    }

    #[test]
    fn budget_clamped_to_population() {
        let r = repo(3);
        let sel = RandomSelector::new(0).select(&r, 10);
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn roughly_uniform_over_many_seeds() {
        let r = repo(10);
        let mut counts = [0usize; 10];
        for seed in 0..2000 {
            for u in RandomSelector::new(seed).select(&r, 2) {
                counts[u.index()] += 1;
            }
        }
        // Each user expected 400 times; allow generous slack.
        assert!(counts.iter().all(|&c| c > 250 && c < 550), "{counts:?}");
    }
}
