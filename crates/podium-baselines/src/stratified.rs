//! Stratified sampling with proportionate allocation (Table 1; §2, Def. 2.1).
//!
//! The survey-research baseline: the population is partitioned into a small
//! set of *disjoint* strata; each stratum receives a number of seats
//! proportional to its size (largest-remainder rounding so seats sum to the
//! budget), and seat-holders are sampled uniformly within their stratum.
//!
//! This faithfully represents the strata per Definition 2.1, but — exactly
//! as §2 argues — it cannot scale to the thousands of *overlapping* groups
//! Podium covers: it requires a single disjoint partition chosen up front.

use podium_core::ids::{PropertyId, UserId};
use podium_core::profile::UserRepository;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

use crate::selector::Selector;

/// How strata are derived.
#[derive(Debug, Clone)]
pub enum Strata {
    /// One stratum per distinct property in the family with the given label
    /// prefix (e.g. `"livesIn "` — one stratum per city), plus one stratum
    /// for users holding no such property.
    PropertyFamily(String),
    /// Explicit user → stratum assignment.
    Explicit(Vec<usize>),
}

/// Stratified proportionate-allocation selector.
#[derive(Debug, Clone)]
pub struct StratifiedSelector {
    seed: u64,
    strata: Strata,
}

impl StratifiedSelector {
    /// A seeded stratified selector.
    pub fn new(seed: u64, strata: Strata) -> Self {
        Self { seed, strata }
    }

    fn assignment(&self, repo: &UserRepository) -> Vec<usize> {
        match &self.strata {
            Strata::Explicit(a) => {
                assert_eq!(a.len(), repo.user_count(), "one stratum per user");
                a.clone()
            }
            Strata::PropertyFamily(prefix) => {
                let family: Vec<PropertyId> = (0..repo.property_count())
                    .map(PropertyId::from_index)
                    .filter(|&p| {
                        repo.property_label(p)
                            .map(|l| l.starts_with(prefix.as_str()))
                            .unwrap_or(false)
                    })
                    .collect();
                let none_stratum = family.len();
                repo.iter()
                    .map(|(_, profile)| {
                        family
                            .iter()
                            .position(|&p| profile.score(p).is_some_and(|s| s >= 0.5))
                            .unwrap_or(none_stratum)
                    })
                    .collect()
            }
        }
    }

    /// Largest-remainder (Hamilton) apportionment of `b` seats over stratum
    /// sizes.
    pub fn apportion(sizes: &[usize], b: usize) -> Vec<usize> {
        let total: usize = sizes.iter().sum();
        if total == 0 || b == 0 {
            return vec![0; sizes.len()];
        }
        let mut seats: Vec<usize> = Vec::with_capacity(sizes.len());
        let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(sizes.len());
        let mut assigned = 0usize;
        for (i, &s) in sizes.iter().enumerate() {
            let exact = b as f64 * s as f64 / total as f64;
            let floor = exact.floor() as usize;
            let floor = floor.min(s); // cannot seat more than the stratum holds
            seats.push(floor);
            assigned += floor;
            remainders.push((exact - floor as f64, i));
        }
        remainders.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut left = b.saturating_sub(assigned);
        for &(_, i) in remainders.iter().cycle().take(remainders.len() * 2) {
            if left == 0 {
                break;
            }
            if seats[i] < sizes[i] {
                seats[i] += 1;
                left -= 1;
            }
        }
        seats
    }
}

impl Selector for StratifiedSelector {
    fn name(&self) -> &str {
        "Stratified"
    }

    fn select(&self, repo: &UserRepository, b: usize) -> Vec<UserId> {
        let n = repo.user_count();
        let b = b.min(n);
        if b == 0 {
            return Vec::new();
        }
        let assignment = self.assignment(repo);
        let n_strata = assignment.iter().copied().max().map_or(0, |m| m + 1);
        let mut members: Vec<Vec<UserId>> = vec![Vec::new(); n_strata];
        for (u, &s) in assignment.iter().enumerate() {
            members[s].push(UserId::from_index(u));
        }
        let sizes: Vec<usize> = members.iter().map(Vec::len).collect();
        let seats = Self::apportion(&sizes, b);

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(b);
        for (stratum, &k) in seats.iter().enumerate() {
            if k == 0 {
                continue;
            }
            let pool = &members[stratum];
            for idx in sample(&mut rng, pool.len(), k.min(pool.len())) {
                out.push(pool[idx]);
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::check_selection;

    fn city_repo() -> UserRepository {
        // 6 users in CityA, 3 in CityB, 1 without residence.
        let mut repo = UserRepository::new();
        let users: Vec<UserId> = (0..10).map(|i| repo.add_user(format!("u{i}"))).collect();
        let pa = repo.intern_property("livesIn CityA");
        let pb = repo.intern_property("livesIn CityB");
        for (i, &u) in users.iter().enumerate() {
            if i < 6 {
                repo.set_score(u, pa, 1.0).unwrap();
            } else if i < 9 {
                repo.set_score(u, pb, 1.0).unwrap();
            }
        }
        repo
    }

    #[test]
    fn apportionment_is_proportional_and_exact() {
        assert_eq!(
            StratifiedSelector::apportion(&[60, 30, 10], 10),
            vec![6, 3, 1]
        );
        let seats = StratifiedSelector::apportion(&[7, 7, 6], 4);
        assert_eq!(seats.iter().sum::<usize>(), 4);
        assert_eq!(StratifiedSelector::apportion(&[0, 0], 3), vec![0, 0]);
    }

    #[test]
    fn apportionment_caps_at_stratum_size() {
        let seats = StratifiedSelector::apportion(&[1, 9], 5);
        assert!(seats[0] <= 1);
        assert_eq!(seats.iter().sum::<usize>(), 5);
    }

    #[test]
    fn proportionate_allocation_definition_21() {
        // With sizes 6/3/1 and budget 10 every user is taken: |g ∩ U|/|U| =
        // |g|/|𝒰| exactly.
        let repo = city_repo();
        let sel = StratifiedSelector::new(1, Strata::PropertyFamily("livesIn ".into()));
        let picked = sel.select(&repo, 10);
        assert_eq!(picked.len(), 10);
        // Budget 5: CityA gets 3, CityB gets 1 or 2, none-stratum <= 1.
        let picked = sel.select(&repo, 5);
        assert!(check_selection(&repo, 5, &picked));
        let in_a = picked.iter().filter(|u| u.index() < 6).count();
        assert_eq!(in_a, 3, "6/10 of 5 seats -> 3");
    }

    #[test]
    fn explicit_strata() {
        let repo = city_repo();
        let assignment = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let sel = StratifiedSelector::new(2, Strata::Explicit(assignment));
        let picked = sel.select(&repo, 4);
        assert_eq!(picked.len(), 4);
        let lo = picked.iter().filter(|u| u.index() < 5).count();
        assert_eq!(lo, 2, "even split");
    }

    #[test]
    fn deterministic_per_seed() {
        let repo = city_repo();
        let s = StratifiedSelector::new(9, Strata::PropertyFamily("livesIn ".into()));
        assert_eq!(s.select(&repo, 4), s.select(&repo, 4));
    }

    #[test]
    #[should_panic(expected = "one stratum per user")]
    fn explicit_length_mismatch_panics() {
        let repo = city_repo();
        StratifiedSelector::new(0, Strata::Explicit(vec![0; 3])).select(&repo, 2);
    }
}
