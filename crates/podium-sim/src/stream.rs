//! Schema-validated JSONL stream ingestion.
//!
//! Every JSONL emitter in the workspace tags its rows with a
//! `"schema": "podium.<kind>/<version>"` field and a monotone `"seq"`
//! number. The dashboard refuses to guess: a stream with a missing or
//! unknown schema tag, mixed versions, or a sequence regression is
//! rejected with a typed [`StreamError`] naming the file and line —
//! never a parse panic halfway through a render.

use serde_json::Value;

/// The stream kinds the dashboard understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// `podium.bench-serve/1` — bench-serve report rows.
    BenchServe,
    /// `podium.experiment-status/1` — experiment harness status rows.
    ExperimentStatus,
    /// `podium.lint/1` — podium-lint findings.
    Lint,
    /// `podium.sim-trace/1` — simulator event-trace rows.
    SimTrace,
    /// `podium.sim-requests/1` — simulator request-log rows.
    SimRequests,
}

impl StreamKind {
    /// The schema tag this build reads for each kind.
    pub fn schema(self) -> &'static str {
        match self {
            Self::BenchServe => "podium.bench-serve/1",
            Self::ExperimentStatus => "podium.experiment-status/1",
            Self::Lint => "podium.lint/1",
            Self::SimTrace => "podium.sim-trace/1",
            Self::SimRequests => "podium.sim-requests/1",
        }
    }

    fn from_schema(tag: &str) -> Option<Self> {
        [
            Self::BenchServe,
            Self::ExperimentStatus,
            Self::Lint,
            Self::SimTrace,
            Self::SimRequests,
        ]
        .into_iter()
        .find(|k| k.schema() == tag)
    }
}

/// Why a stream was rejected. Each variant names the offending file and
/// (1-based) line so the fix is one `sed -n` away.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A line is not a JSON object.
    Parse {
        /// Source label (usually the path).
        path: String,
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// A row has no `schema` field.
    MissingSchema {
        /// Source label.
        path: String,
        /// 1-based line number.
        line: usize,
    },
    /// A row's schema tag is not one this build reads.
    UnknownSchema {
        /// Source label.
        path: String,
        /// 1-based line number.
        line: usize,
        /// The offending tag.
        schema: String,
    },
    /// Rows in one file carry different schema tags (e.g. an appended
    /// file spanning two emitter versions).
    MixedSchema {
        /// Source label.
        path: String,
        /// 1-based line number of the first divergent row.
        line: usize,
        /// The tag the file started with.
        expected: String,
        /// The divergent tag.
        found: String,
    },
    /// A row has no `seq` field.
    MissingSeq {
        /// Source label.
        path: String,
        /// 1-based line number.
        line: usize,
    },
    /// `seq` went backwards or repeated — rows are missing, reordered,
    /// or two writers interleaved.
    NonMonotoneSeq {
        /// Source label.
        path: String,
        /// 1-based line number.
        line: usize,
        /// The previous row's sequence number.
        prev: u64,
        /// The offending row's sequence number.
        found: u64,
    },
    /// The file exists but holds no rows.
    Empty {
        /// Source label.
        path: String,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Parse {
                path,
                line,
                message,
            } => write!(f, "{path}:{line}: not a JSON object: {message}"),
            StreamError::MissingSchema { path, line } => {
                write!(f, "{path}:{line}: row has no 'schema' tag")
            }
            StreamError::UnknownSchema { path, line, schema } => write!(
                f,
                "{path}:{line}: unknown stream schema '{schema}' (this build reads: {})",
                known_schemas().join(", ")
            ),
            StreamError::MixedSchema {
                path,
                line,
                expected,
                found,
            } => write!(
                f,
                "{path}:{line}: mixed stream versions: file started as '{expected}' but this row is '{found}'"
            ),
            StreamError::MissingSeq { path, line } => {
                write!(f, "{path}:{line}: row has no 'seq' field")
            }
            StreamError::NonMonotoneSeq {
                path,
                line,
                prev,
                found,
            } => write!(
                f,
                "{path}:{line}: seq went backwards ({prev} then {found}): rows missing, reordered, or two writers interleaved"
            ),
            StreamError::Empty { path } => write!(f, "{path}: stream holds no rows"),
        }
    }
}

impl std::error::Error for StreamError {}

fn known_schemas() -> Vec<&'static str> {
    vec![
        StreamKind::BenchServe.schema(),
        StreamKind::ExperimentStatus.schema(),
        StreamKind::Lint.schema(),
        StreamKind::SimTrace.schema(),
        StreamKind::SimRequests.schema(),
    ]
}

/// One validated stream: its detected kind and parsed rows.
#[derive(Debug)]
pub struct JsonlStream {
    /// Source label (the path as given).
    pub path: String,
    /// The detected kind.
    pub kind: StreamKind,
    /// Parsed rows, file order.
    pub rows: Vec<Value>,
}

/// Parses and validates one JSONL document. The kind is auto-detected
/// from the first row's schema tag; every row must carry the same tag
/// and a strictly increasing `seq`.
pub fn parse_stream(path: &str, text: &str) -> Result<JsonlStream, StreamError> {
    let mut kind: Option<(StreamKind, String)> = None;
    let mut rows = Vec::new();
    let mut prev_seq: Option<u64> = None;
    for (index, raw) in text.lines().enumerate() {
        let line = index + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(trimmed).map_err(|e| StreamError::Parse {
            path: path.to_owned(),
            line,
            message: e.to_string(),
        })?;
        if !value.is_object() {
            return Err(StreamError::Parse {
                path: path.to_owned(),
                line,
                message: "expected a JSON object per line".to_owned(),
            });
        }
        let schema = value
            .get("schema")
            .and_then(Value::as_str)
            .ok_or(StreamError::MissingSchema {
                path: path.to_owned(),
                line,
            })?
            .to_owned();
        match &kind {
            None => {
                let k =
                    StreamKind::from_schema(&schema).ok_or_else(|| StreamError::UnknownSchema {
                        path: path.to_owned(),
                        line,
                        schema: schema.clone(),
                    })?;
                kind = Some((k, schema));
            }
            Some((_, expected)) if *expected != schema => {
                return Err(StreamError::MixedSchema {
                    path: path.to_owned(),
                    line,
                    expected: expected.clone(),
                    found: schema,
                });
            }
            Some(_) => {}
        }
        let seq = value
            .get("seq")
            .and_then(Value::as_u64)
            .ok_or(StreamError::MissingSeq {
                path: path.to_owned(),
                line,
            })?;
        if let Some(prev) = prev_seq {
            if seq <= prev {
                return Err(StreamError::NonMonotoneSeq {
                    path: path.to_owned(),
                    line,
                    prev,
                    found: seq,
                });
            }
        }
        prev_seq = Some(seq);
        rows.push(value);
    }
    let (kind, _) = kind.ok_or(StreamError::Empty {
        path: path.to_owned(),
    })?;
    Ok(JsonlStream {
        path: path.to_owned(),
        kind,
        rows,
    })
}

/// Parses many `(path, text)` documents, failing on the first invalid
/// one.
pub fn read_streams(inputs: &[(String, String)]) -> Result<Vec<JsonlStream>, StreamError> {
    inputs
        .iter()
        .map(|(path, text)| parse_stream(path, text))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(schema: &str, seq: u64) -> String {
        format!(r#"{{"schema":"{schema}","seq":{seq},"x":1}}"#)
    }

    #[test]
    fn detects_kind_and_keeps_rows() {
        let text = format!(
            "{}\n{}\n",
            row("podium.sim-trace/1", 0),
            row("podium.sim-trace/1", 1)
        );
        let s = parse_stream("t.jsonl", &text).unwrap();
        assert_eq!(s.kind, StreamKind::SimTrace);
        assert_eq!(s.rows.len(), 2);
    }

    #[test]
    fn rejects_mixed_versions_with_typed_error() {
        let text = format!(
            "{}\n{}\n",
            row("podium.bench-serve/1", 0),
            row("podium.bench-serve/2", 1)
        );
        let err = parse_stream("b.jsonl", &text).unwrap_err();
        match &err {
            StreamError::MixedSchema {
                line,
                expected,
                found,
                ..
            } => {
                assert_eq!(*line, 2);
                assert_eq!(expected, "podium.bench-serve/1");
                assert_eq!(found, "podium.bench-serve/2");
            }
            other => panic!("expected MixedSchema, got {other:?}"),
        }
        assert!(err.to_string().contains("mixed stream versions"));
    }

    #[test]
    fn rejects_unknown_schema_naming_known_ones() {
        let err = parse_stream("x.jsonl", &row("podium.mystery/7", 0)).unwrap_err();
        assert!(matches!(err, StreamError::UnknownSchema { .. }));
        assert!(err.to_string().contains("podium.bench-serve/1"), "{err}");
    }

    #[test]
    fn rejects_missing_schema_and_seq() {
        let err = parse_stream("x.jsonl", r#"{"seq":0}"#).unwrap_err();
        assert!(matches!(err, StreamError::MissingSchema { line: 1, .. }));
        let err = parse_stream("x.jsonl", r#"{"schema":"podium.lint/1","rule":"r"}"#).unwrap_err();
        assert!(matches!(err, StreamError::MissingSeq { line: 1, .. }));
    }

    #[test]
    fn rejects_seq_regression() {
        let text = format!(
            "{}\n{}\n{}\n",
            row("podium.lint/1", 0),
            row("podium.lint/1", 1),
            row("podium.lint/1", 1)
        );
        let err = parse_stream("l.jsonl", &text).unwrap_err();
        match err {
            StreamError::NonMonotoneSeq {
                line, prev, found, ..
            } => {
                assert_eq!((line, prev, found), (3, 1, 1));
            }
            other => panic!("expected NonMonotoneSeq, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_and_empty() {
        let err = parse_stream("g.jsonl", "not json\n").unwrap_err();
        assert!(matches!(err, StreamError::Parse { line: 1, .. }));
        let err = parse_stream("e.jsonl", "\n\n").unwrap_err();
        assert!(matches!(err, StreamError::Empty { .. }));
        let err = parse_stream("a.jsonl", "[1,2]\n").unwrap_err();
        assert!(matches!(err, StreamError::Parse { .. }));
    }

    #[test]
    fn seq_gaps_are_fine_only_regressions_reject() {
        // bench-serve appends across runs; seq may jump but not regress.
        let text = format!(
            "{}\n{}\n",
            row("podium.bench-serve/1", 3),
            row("podium.bench-serve/1", 10)
        );
        assert!(parse_stream("b.jsonl", &text).is_ok());
    }
}
