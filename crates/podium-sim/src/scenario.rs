//! Versioned scenario definitions.
//!
//! A scenario is a JSON document (checked in under `configs/`) tagged
//! `"schema": "podium.scenario/1"` that fixes every stochastic knob of
//! a simulation: population shape, process rates, the opinion-drift
//! Markov matrix, session mix, and the service configuration under
//! test. Together with a `--seed` it fully determines the event trace.

use serde_json::Value;

use crate::SimError;

/// The scenario schema tag this build understands.
pub const SCENARIO_SCHEMA: &str = "podium.scenario/1";

/// Initial-population shape.
#[derive(Debug, Clone)]
pub struct PopulationSpec {
    /// Users present at virtual time zero.
    pub users: usize,
    /// Distinct properties (`topic-0 … topic-{n-1}`).
    pub properties: usize,
    /// Scores per user (rotating property window, like the bench).
    pub scores_per_user: usize,
}

/// Opinion-drift process: per-(user, property) bucket states stepped by
/// a Markov transition matrix; a bucket change emits `update-profile`.
#[derive(Debug, Clone)]
pub struct DriftSpec {
    /// Drift-batch events per virtual second (Poisson).
    pub rate_hz: f64,
    /// Markov steps attempted per drift event (batching knob).
    pub batch: usize,
    /// Representative score for each bucket; `bucket_scores[i]` must
    /// fall inside equal-width bucket `i` of `[0, 1)`.
    pub bucket_scores: Vec<f64>,
    /// Row-stochastic transition matrix over the buckets.
    pub matrix: Vec<Vec<f64>>,
}

/// Session process: open → selects → refines → close.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Session arrivals per virtual second (Poisson).
    pub rate_hz: f64,
    /// Plain selects per session before refinement starts.
    pub selects: usize,
    /// Refine rounds per session.
    pub refines: usize,
    /// Selection budget `B` for every select/refine in the session.
    pub budget: usize,
    /// Virtual think time between session steps, in milliseconds.
    pub think_ms: u64,
    /// Probability a select opts into bounded-staleness reads.
    pub stale_ok_prob: f64,
}

/// Service-under-test configuration.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Executor worker threads.
    pub workers: usize,
    /// Bounded queue capacity (admission control).
    pub queue_capacity: usize,
    /// Default per-request deadline in milliseconds.
    pub deadline_ms: u64,
}

/// A fully validated scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (reported in the rollup).
    pub name: String,
    /// Simulated horizon in virtual seconds.
    pub duration_s: f64,
    /// Initial population.
    pub population: PopulationSpec,
    /// User arrivals per virtual second (Poisson).
    pub arrival_rate_hz: f64,
    /// User departures per virtual second (Poisson).
    pub churn_rate_hz: f64,
    /// Opinion drift.
    pub drift: DriftSpec,
    /// Session mix.
    pub session: SessionSpec,
    /// Monitoring `stats` polls per virtual second.
    pub observer_rate_hz: f64,
    /// Service-under-test knobs.
    pub service: ServiceSpec,
}

fn bad(msg: impl Into<String>) -> SimError {
    SimError::Scenario(msg.into())
}

fn get_f64(obj: &Value, key: &str, default: f64) -> Result<f64, SimError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| bad(format!("field '{key}' must be a number"))),
    }
}

fn get_usize(obj: &Value, key: &str, default: usize) -> Result<usize, SimError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .map(|n| n.min(usize::MAX as u64) as usize) // podium-lint: allow(as-cast) — clamped to usize::MAX first
            .ok_or_else(|| bad(format!("field '{key}' must be a non-negative integer"))),
    }
}

fn get_u64(obj: &Value, key: &str, default: u64) -> Result<u64, SimError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad(format!("field '{key}' must be a non-negative integer"))),
    }
}

fn section<'v>(root: &'v Value, key: &str) -> Result<Option<&'v Value>, SimError> {
    match root.get(key) {
        None => Ok(None),
        Some(v) if v.is_object() => Ok(Some(v)),
        Some(_) => Err(bad(format!("section '{key}' must be an object"))),
    }
}

/// Default drift matrix: sticky diagonal with symmetric spill.
fn default_matrix(k: usize) -> Vec<Vec<f64>> {
    let mut rows = Vec::with_capacity(k);
    for i in 0..k {
        let mut row = vec![0.0; k];
        let spill = 0.2 / ((k.saturating_sub(1)).max(1) as f64);
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = if i == j { 0.8 } else { spill };
        }
        rows.push(row);
    }
    rows
}

/// Equal-width bucket midpoints for `k` buckets of `[0, 1)`.
fn default_bucket_scores(k: usize) -> Vec<f64> {
    (0..k).map(|i| (i as f64 + 0.5) / k as f64).collect()
}

/// Parses and validates a scenario document.
pub fn parse_scenario(text: &str) -> Result<Scenario, SimError> {
    let root: Value =
        serde_json::from_str(text).map_err(|e| bad(format!("scenario is not valid JSON: {e}")))?;
    if !root.is_object() {
        return Err(bad("scenario must be a JSON object"));
    }
    let schema = root
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("scenario is missing the 'schema' tag"))?;
    if schema != SCENARIO_SCHEMA {
        return Err(bad(format!(
            "unsupported scenario schema '{schema}' (this build reads '{SCENARIO_SCHEMA}')"
        )));
    }
    let name = root
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("scenario is missing 'name'"))?
        .to_owned();
    let duration_s = get_f64(&root, "duration_s", 0.0)?;
    if duration_s <= 0.0 || !duration_s.is_finite() {
        return Err(bad("'duration_s' must be a positive number"));
    }

    let pop = section(&root, "population")?.ok_or_else(|| bad("missing 'population' section"))?;
    let population = PopulationSpec {
        users: get_usize(pop, "users", 0)?,
        properties: get_usize(pop, "properties", 0)?,
        scores_per_user: get_usize(pop, "scores_per_user", 0)?,
    };
    if population.users == 0 || population.properties == 0 || population.scores_per_user == 0 {
        return Err(bad(
            "'population.users', 'population.properties' and 'population.scores_per_user' must all be >= 1",
        ));
    }
    if population.scores_per_user > population.properties {
        return Err(bad(
            "'population.scores_per_user' cannot exceed 'population.properties'",
        ));
    }

    let arrival_rate_hz = match section(&root, "arrival")? {
        Some(s) => get_f64(s, "rate_hz", 0.0)?,
        None => 0.0,
    };
    let churn_rate_hz = match section(&root, "churn")? {
        Some(s) => get_f64(s, "rate_hz", 0.0)?,
        None => 0.0,
    };

    let drift = match section(&root, "drift")? {
        None => DriftSpec {
            rate_hz: 0.0,
            batch: 1,
            bucket_scores: default_bucket_scores(3),
            matrix: default_matrix(3),
        },
        Some(s) => parse_drift(s)?,
    };

    let session = match section(&root, "session")? {
        None => SessionSpec {
            rate_hz: 0.0,
            selects: 2,
            refines: 1,
            budget: 8,
            think_ms: 50,
            stale_ok_prob: 0.0,
        },
        Some(s) => {
            let spec = SessionSpec {
                rate_hz: get_f64(s, "rate_hz", 0.0)?,
                selects: get_usize(s, "selects", 2)?,
                refines: get_usize(s, "refines", 1)?,
                budget: get_usize(s, "budget", 8)?,
                think_ms: get_u64(s, "think_ms", 50)?,
                stale_ok_prob: get_f64(s, "stale_ok_prob", 0.0)?,
            };
            if spec.budget == 0 {
                return Err(bad("'session.budget' must be >= 1"));
            }
            if !(0.0..=1.0).contains(&spec.stale_ok_prob) {
                return Err(bad("'session.stale_ok_prob' must be in [0, 1]"));
            }
            spec
        }
    };

    let observer_rate_hz = match section(&root, "observer")? {
        Some(s) => get_f64(s, "rate_hz", 1.0)?,
        None => 1.0,
    };

    let service = match section(&root, "service")? {
        None => ServiceSpec {
            workers: 2,
            queue_capacity: 64,
            deadline_ms: 2000,
        },
        Some(s) => ServiceSpec {
            workers: get_usize(s, "workers", 2)?.max(1),
            queue_capacity: get_usize(s, "queue_capacity", 64)?.max(1),
            deadline_ms: get_u64(s, "deadline_ms", 2000)?.max(1),
        },
    };

    for (label, rate) in [
        ("arrival.rate_hz", arrival_rate_hz),
        ("churn.rate_hz", churn_rate_hz),
        ("drift.rate_hz", drift.rate_hz),
        ("session.rate_hz", session.rate_hz),
        ("observer.rate_hz", observer_rate_hz),
    ] {
        if !rate.is_finite() || rate < 0.0 {
            return Err(bad(format!("'{label}' must be a finite non-negative rate")));
        }
    }

    Ok(Scenario {
        name,
        duration_s,
        population,
        arrival_rate_hz,
        churn_rate_hz,
        drift,
        session,
        observer_rate_hz,
        service,
    })
}

fn parse_drift(s: &Value) -> Result<DriftSpec, SimError> {
    let rate_hz = get_f64(s, "rate_hz", 0.0)?;
    let batch = get_usize(s, "batch", 1)?.max(1);
    let matrix: Vec<Vec<f64>> = match s.get("matrix") {
        None => default_matrix(3),
        Some(v) => {
            let rows = v
                .as_array()
                .ok_or_else(|| bad("'drift.matrix' must be an array of rows"))?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let cells = row
                    .as_array()
                    .ok_or_else(|| bad("'drift.matrix' rows must be arrays of numbers"))?;
                let mut r = Vec::with_capacity(cells.len());
                for c in cells {
                    r.push(
                        c.as_f64()
                            .ok_or_else(|| bad("'drift.matrix' cells must be numbers"))?,
                    );
                }
                out.push(r);
            }
            out
        }
    };
    let k = matrix.len();
    if k < 2 {
        return Err(bad("'drift.matrix' needs at least 2 buckets"));
    }
    for row in &matrix {
        if row.len() != k {
            return Err(bad(format!(
                "'drift.matrix' must be square ({k} buckets, found a row of {})",
                row.len()
            )));
        }
        let mut sum = 0.0;
        for p in row {
            if !(0.0..=1.0).contains(p) {
                return Err(bad(
                    "'drift.matrix' entries must be probabilities in [0, 1]",
                ));
            }
            sum += *p;
        }
        if !(0.999..=1.001).contains(&sum) {
            return Err(bad(format!(
                "'drift.matrix' rows must sum to 1 (found {sum})"
            )));
        }
    }
    let bucket_scores: Vec<f64> = match s.get("bucket_scores") {
        None => default_bucket_scores(k),
        Some(v) => {
            let arr = v
                .as_array()
                .ok_or_else(|| bad("'drift.bucket_scores' must be an array of numbers"))?;
            let mut out = Vec::with_capacity(arr.len());
            for c in arr {
                out.push(
                    c.as_f64()
                        .ok_or_else(|| bad("'drift.bucket_scores' cells must be numbers"))?,
                );
            }
            out
        }
    };
    if bucket_scores.len() != k {
        return Err(bad(format!(
            "'drift.bucket_scores' must have one score per bucket ({k})"
        )));
    }
    for (i, score) in bucket_scores.iter().enumerate() {
        let lo = i as f64 / k as f64;
        let hi = (i as f64 + 1.0) / k as f64;
        if !(*score >= lo && *score < hi) {
            return Err(bad(format!(
                "'drift.bucket_scores[{i}]' = {score} must land inside equal-width bucket {i} \
                 ([{lo}, {hi}) for {k} buckets), so repository grouping matches drift state"
            )));
        }
    }
    Ok(DriftSpec {
        rate_hz,
        batch,
        bucket_scores,
        matrix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
        "schema": "podium.scenario/1",
        "name": "t",
        "duration_s": 1.0,
        "population": {"users": 10, "properties": 4, "scores_per_user": 2}
    }"#;

    #[test]
    fn minimal_scenario_defaults() {
        let s = parse_scenario(MINIMAL).unwrap();
        assert_eq!(s.name, "t");
        assert_eq!(s.population.users, 10);
        assert_eq!(s.arrival_rate_hz, 0.0);
        assert_eq!(s.drift.matrix.len(), 3);
        assert_eq!(s.drift.bucket_scores.len(), 3);
        assert_eq!(s.observer_rate_hz, 1.0);
        assert_eq!(s.service.workers, 2);
    }

    #[test]
    fn rejects_missing_or_wrong_schema() {
        let e = parse_scenario(r#"{"name":"x"}"#).unwrap_err();
        assert!(e.to_string().contains("schema"), "{e}");
        let e = parse_scenario(
            r#"{"schema":"podium.scenario/99","name":"x","duration_s":1,
                "population":{"users":1,"properties":1,"scores_per_user":1}}"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("podium.scenario/99"), "{e}");
    }

    #[test]
    fn rejects_non_square_matrix() {
        let text = r#"{
            "schema": "podium.scenario/1", "name": "t", "duration_s": 1,
            "population": {"users": 2, "properties": 2, "scores_per_user": 1},
            "drift": {"rate_hz": 1.0, "matrix": [[0.5, 0.5], [1.0]]}
        }"#;
        let e = parse_scenario(text).unwrap_err();
        assert!(e.to_string().contains("square"), "{e}");
    }

    #[test]
    fn rejects_non_stochastic_rows() {
        let text = r#"{
            "schema": "podium.scenario/1", "name": "t", "duration_s": 1,
            "population": {"users": 2, "properties": 2, "scores_per_user": 1},
            "drift": {"rate_hz": 1.0, "matrix": [[0.9, 0.2], [0.5, 0.5]]}
        }"#;
        let e = parse_scenario(text).unwrap_err();
        assert!(e.to_string().contains("sum to 1"), "{e}");
    }

    #[test]
    fn rejects_bucket_scores_outside_their_bucket() {
        let text = r#"{
            "schema": "podium.scenario/1", "name": "t", "duration_s": 1,
            "population": {"users": 2, "properties": 2, "scores_per_user": 1},
            "drift": {"rate_hz": 1.0, "matrix": [[0.5,0.5],[0.5,0.5]],
                      "bucket_scores": [0.8, 0.9]}
        }"#;
        let e = parse_scenario(text).unwrap_err();
        assert!(e.to_string().contains("bucket_scores[0]"), "{e}");
    }

    #[test]
    fn rejects_oversubscribed_scores_per_user() {
        let text = r#"{
            "schema": "podium.scenario/1", "name": "t", "duration_s": 1,
            "population": {"users": 2, "properties": 2, "scores_per_user": 3}
        }"#;
        assert!(parse_scenario(text).is_err());
    }

    #[test]
    fn default_matrix_is_row_stochastic() {
        for k in 2..6 {
            for row in default_matrix(k) {
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "k={k} sum={sum}");
            }
        }
    }
}
