//! The unified observability dashboard: one pass over every stream the
//! workspace emits.
//!
//! `podium sim report` feeds this module bench-serve rows, experiment
//! harness status rows, podium-lint findings, and simulator
//! trace/request logs — in any combination — and gets back two views of
//! the same aggregation:
//!
//! * a human text dashboard, sectioned per stream kind, and
//! * a machine rollup (`podium.dashboard-rollup/1`) checked in as
//!   `BENCH_8.json`: req/s and p50/p99 per op, failure breakdown, cache
//!   hit rate, WAL/recovery stats, and the lint suppression-debt count.
//!
//! Aggregation rules are deliberately simple and documented here so the
//! numbers are auditable: bench-serve headline stats come from the row
//! with the highest `seq` (the newest run) while failure counters sum
//! over all rows; experiment and lint sections count rows; the sim
//! section recomputes latency percentiles from the raw request log.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use podium_service::protocol::{num_f64, num_u64};
use serde_json::Value;

use crate::driver::percentiles;
use crate::stream::{JsonlStream, StreamKind};

/// Schema tag of the machine rollup this module produces.
pub const DASHBOARD_SCHEMA: &str = "podium.dashboard-rollup/1";

/// Per-op accumulator for the sim section.
#[derive(Default)]
struct OpStats {
    count: u64,
    ok: u64,
    failed: u64,
    latencies_us: Vec<u64>,
    max_staleness: u64,
}

/// Renders the dashboard over validated streams. Returns the human text
/// and the machine rollup; either is useful without the other.
pub fn render(streams: &[JsonlStream]) -> (String, Value) {
    let mut human = String::new();
    let mut rollup: Vec<(String, Value)> = vec![
        (
            "schema".to_owned(),
            Value::String(DASHBOARD_SCHEMA.to_owned()),
        ),
        ("bench".to_owned(), Value::String("sim-report".to_owned())),
    ];

    let _ = writeln!(human, "==== podium dashboard ====");
    let mut source_pairs: Vec<(String, Value)> = Vec::new();
    for kind in [
        StreamKind::BenchServe,
        StreamKind::ExperimentStatus,
        StreamKind::Lint,
        StreamKind::SimTrace,
        StreamKind::SimRequests,
    ] {
        let files: Vec<&JsonlStream> = streams.iter().filter(|s| s.kind == kind).collect();
        if files.is_empty() {
            continue;
        }
        let rows: usize = files.iter().map(|s| s.rows.len()).sum();
        let _ = writeln!(
            human,
            "source: {:<18} {} row(s) from {} file(s)",
            kind.schema(),
            rows,
            files.len()
        );
        source_pairs.push((
            kind.schema().to_owned(),
            num_u64(u64::try_from(rows).unwrap_or(u64::MAX)),
        ));
    }
    rollup.push(("sources".to_owned(), Value::Object(source_pairs)));

    if let Some(section) = bench_serve_section(streams, &mut human) {
        rollup.push(("bench_serve".to_owned(), section));
    }
    if let Some(section) = experiments_section(streams, &mut human) {
        rollup.push(("experiments".to_owned(), section));
    }
    if let Some(section) = lint_section(streams, &mut human) {
        rollup.push(("lint".to_owned(), section));
    }
    if let Some(section) = sim_section(streams, &mut human) {
        rollup.push(("sim".to_owned(), section));
    }

    (human, Value::Object(rollup))
}

/// All rows of one kind, across files, in file order.
fn rows_of(streams: &[JsonlStream], kind: StreamKind) -> Vec<&Value> {
    streams
        .iter()
        .filter(|s| s.kind == kind)
        .flat_map(|s| s.rows.iter())
        .collect()
}

fn get_u64(row: &Value, key: &str) -> u64 {
    row.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn get_f64(row: &Value, key: &str) -> f64 {
    row.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

/// Serving health: headline stats from the newest row (highest `seq`),
/// failure counters summed over every row.
fn bench_serve_section(streams: &[JsonlStream], human: &mut String) -> Option<Value> {
    let rows = rows_of(streams, StreamKind::BenchServe);
    let latest = rows.iter().max_by_key(|r| get_u64(r, "seq"))?;

    let mut failed = 0u64;
    let mut failed_deadline = 0u64;
    let mut failed_transport = 0u64;
    let mut failed_other = 0u64;
    let mut overloaded = 0u64;
    let mut inconsistent = 0u64;
    let mut served = 0u64;
    for row in &rows {
        served += get_u64(row, "served");
        failed += get_u64(row, "failed");
        failed_deadline += get_u64(row, "failed_deadline");
        failed_transport += get_u64(row, "failed_transport");
        failed_other += get_u64(row, "failed_other");
        overloaded += get_u64(row, "overloaded");
        inconsistent += get_u64(row, "inconsistent");
    }
    let cache_hits = get_u64(latest, "cache_hits");
    let cache_misses = get_u64(latest, "cache_misses");
    let cache_total = cache_hits + cache_misses;
    let cache_hit_rate = if cache_total > 0 {
        // podium-lint: allow(as-cast) — cache counters are far below 2^53
        cache_hits as f64 / cache_total as f64
    } else {
        0.0
    };

    let _ = writeln!(human, "\n-- serving (bench-serve) --");
    let _ = writeln!(
        human,
        "latest run: {:.1} req/s, p50 {}us p99 {}us over {}",
        get_f64(latest, "throughput_rps"),
        get_u64(latest, "p50_us"),
        get_u64(latest, "p99_us"),
        latest
            .get("transport")
            .and_then(Value::as_str)
            .unwrap_or("?"),
    );
    let _ = writeln!(
        human,
        "all runs:   served {served}, failed {failed} (deadline {failed_deadline}, transport {failed_transport}, other {failed_other}), overloaded {overloaded}, inconsistent {inconsistent}"
    );
    let _ = writeln!(
        human,
        "cache:      {:.1}% hit rate ({cache_hits}/{cache_total}); wal {} bytes, checkpoint epoch {}, recovery {:.1} ms to epoch {}",
        cache_hit_rate * 100.0,
        get_u64(latest, "wal_bytes"),
        get_u64(latest, "last_checkpoint_epoch"),
        get_f64(latest, "recovery_ms"),
        get_u64(latest, "recovered_epoch"),
    );

    Some(Value::Object(vec![
        (
            "rows".to_owned(),
            num_u64(u64::try_from(rows.len()).unwrap_or(u64::MAX)),
        ),
        (
            "throughput_rps".to_owned(),
            num_f64(get_f64(latest, "throughput_rps")),
        ),
        ("p50_us".to_owned(), num_u64(get_u64(latest, "p50_us"))),
        ("p99_us".to_owned(), num_u64(get_u64(latest, "p99_us"))),
        ("served".to_owned(), num_u64(served)),
        ("failed".to_owned(), num_u64(failed)),
        ("failed_deadline".to_owned(), num_u64(failed_deadline)),
        ("failed_transport".to_owned(), num_u64(failed_transport)),
        ("failed_other".to_owned(), num_u64(failed_other)),
        ("overloaded".to_owned(), num_u64(overloaded)),
        ("inconsistent".to_owned(), num_u64(inconsistent)),
        ("cache_hit_rate".to_owned(), num_f64(cache_hit_rate)),
        (
            "wal_bytes".to_owned(),
            num_u64(get_u64(latest, "wal_bytes")),
        ),
        (
            "last_checkpoint_epoch".to_owned(),
            num_u64(get_u64(latest, "last_checkpoint_epoch")),
        ),
        (
            "recovery_ms".to_owned(),
            num_f64(get_f64(latest, "recovery_ms")),
        ),
        (
            "recovered_epoch".to_owned(),
            num_u64(get_u64(latest, "recovered_epoch")),
        ),
        (
            "publish_p50_us".to_owned(),
            num_u64(get_u64(latest, "publish_p50_us")),
        ),
        (
            "publish_p99_us".to_owned(),
            num_u64(get_u64(latest, "publish_p99_us")),
        ),
    ]))
}

/// Experiment sweep health: outcome counts and which experiments failed.
fn experiments_section(streams: &[JsonlStream], human: &mut String) -> Option<Value> {
    let rows = rows_of(streams, StreamKind::ExperimentStatus);
    if rows.is_empty() {
        return None;
    }
    let mut ok = 0u64;
    let mut panicked = 0u64;
    let mut timed_out = 0u64;
    let mut total_seconds = 0.0f64;
    let mut failures: Vec<String> = Vec::new();
    for row in &rows {
        let name = row.get("name").and_then(Value::as_str).unwrap_or("?");
        let outcome = row.get("outcome").and_then(Value::as_str).unwrap_or("?");
        total_seconds += get_f64(row, "seconds");
        match outcome {
            "ok" => ok += 1,
            "panicked" => {
                panicked += 1;
                failures.push(format!("{name} (panicked)"));
            }
            "timed_out" => {
                timed_out += 1;
                failures.push(format!("{name} (timed out)"));
            }
            other => failures.push(format!("{name} ({other})")),
        }
    }
    let _ = writeln!(human, "\n-- experiments --");
    let _ = writeln!(
        human,
        "{ok} ok, {panicked} panicked, {timed_out} timed out in {total_seconds:.1}s total"
    );
    if !failures.is_empty() {
        let _ = writeln!(human, "failures: {}", failures.join(", "));
    }
    Some(Value::Object(vec![
        ("ok".to_owned(), num_u64(ok)),
        ("panicked".to_owned(), num_u64(panicked)),
        ("timed_out".to_owned(), num_u64(timed_out)),
        ("total_seconds".to_owned(), num_f64(total_seconds)),
    ]))
}

/// Hygiene: denied findings and the suppression-debt count (findings
/// carrying an `allowed: true` justification).
fn lint_section(streams: &[JsonlStream], human: &mut String) -> Option<Value> {
    let rows = rows_of(streams, StreamKind::Lint);
    if rows.is_empty() {
        return None;
    }
    let mut denied = 0u64;
    let mut suppressed_debt = 0u64;
    let mut by_rule: BTreeMap<String, u64> = BTreeMap::new();
    for row in &rows {
        let rule = row.get("rule").and_then(Value::as_str).unwrap_or("?");
        *by_rule.entry(rule.to_owned()).or_insert(0) += 1;
        if row.get("allowed").and_then(Value::as_bool) == Some(true) {
            suppressed_debt += 1;
        } else {
            denied += 1;
        }
    }
    let _ = writeln!(human, "\n-- lint --");
    let _ = writeln!(
        human,
        "{denied} denied, {suppressed_debt} suppressed with justification (suppression debt)"
    );
    let top: Vec<String> = by_rule
        .iter()
        .map(|(rule, n)| format!("{rule} {n}"))
        .collect();
    let _ = writeln!(human, "by rule: {}", top.join(", "));
    Some(Value::Object(vec![
        (
            "total".to_owned(),
            num_u64(u64::try_from(rows.len()).unwrap_or(u64::MAX)),
        ),
        ("denied".to_owned(), num_u64(denied)),
        ("suppressed_debt".to_owned(), num_u64(suppressed_debt)),
    ]))
}

/// Simulator section: per-op latency percentiles and outcome breakdown
/// recomputed from the raw request log; trace rows counted if present.
fn sim_section(streams: &[JsonlStream], human: &mut String) -> Option<Value> {
    let requests = rows_of(streams, StreamKind::SimRequests);
    let trace_rows = rows_of(streams, StreamKind::SimTrace).len();
    if requests.is_empty() && trace_rows == 0 {
        return None;
    }
    let mut per_op: BTreeMap<String, OpStats> = BTreeMap::new();
    let mut outcomes: BTreeMap<String, u64> = BTreeMap::new();
    for row in &requests {
        let op = row.get("op").and_then(Value::as_str).unwrap_or("?");
        let outcome = row.get("outcome").and_then(Value::as_str).unwrap_or("?");
        let stats = per_op.entry(op.to_owned()).or_default();
        stats.count += 1;
        if outcome == "ok" {
            stats.ok += 1;
        } else {
            stats.failed += 1;
        }
        stats.latencies_us.push(get_u64(row, "latency_us"));
        stats.max_staleness = stats.max_staleness.max(get_u64(row, "staleness"));
        *outcomes.entry(outcome.to_owned()).or_insert(0) += 1;
    }
    let _ = writeln!(human, "\n-- simulator --");
    let _ = writeln!(
        human,
        "{} request(s), {} trace event(s)",
        requests.len(),
        trace_rows
    );
    let mut op_pairs: Vec<(String, Value)> = Vec::new();
    for (op, stats) in &per_op {
        let (p50, p99) = percentiles(&stats.latencies_us);
        let _ = writeln!(
            human,
            "  {op:<15} n={:<6} ok={:<6} failed={:<4} p50={p50}us p99={p99}us max-staleness={}",
            stats.count, stats.ok, stats.failed, stats.max_staleness
        );
        op_pairs.push((
            op.clone(),
            Value::Object(vec![
                ("count".to_owned(), num_u64(stats.count)),
                ("ok".to_owned(), num_u64(stats.ok)),
                ("failed".to_owned(), num_u64(stats.failed)),
                ("p50_us".to_owned(), num_u64(p50)),
                ("p99_us".to_owned(), num_u64(p99)),
                ("max_staleness".to_owned(), num_u64(stats.max_staleness)),
            ]),
        ));
    }
    let outcome_line: Vec<String> = outcomes.iter().map(|(t, n)| format!("{t} {n}")).collect();
    if !outcome_line.is_empty() {
        let _ = writeln!(human, "  outcomes: {}", outcome_line.join(", "));
    }
    let outcome_pairs: Vec<(String, Value)> =
        outcomes.into_iter().map(|(t, n)| (t, num_u64(n))).collect();
    Some(Value::Object(vec![
        (
            "requests".to_owned(),
            num_u64(u64::try_from(requests.len()).unwrap_or(u64::MAX)),
        ),
        (
            "trace_events".to_owned(),
            num_u64(u64::try_from(trace_rows).unwrap_or(u64::MAX)),
        ),
        ("per_op".to_owned(), Value::Object(op_pairs)),
        ("outcomes".to_owned(), Value::Object(outcome_pairs)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::parse_stream;

    fn bench_rows() -> JsonlStream {
        let text = concat!(
            "{\"schema\":\"podium.bench-serve/1\",\"seq\":0,\"bench\":\"serve\",\"transport\":\"inproc\",\"served\":100,\"failed\":2,\"failed_deadline\":1,\"failed_transport\":1,\"failed_other\":0,\"overloaded\":0,\"inconsistent\":0,\"throughput_rps\":500.0,\"p50_us\":90,\"p99_us\":400,\"cache_hits\":10,\"cache_misses\":10,\"wal_bytes\":0,\"last_checkpoint_epoch\":0,\"recovery_ms\":0.0,\"recovered_epoch\":0,\"publish_p50_us\":5,\"publish_p99_us\":9}\n",
            "{\"schema\":\"podium.bench-serve/1\",\"seq\":1,\"bench\":\"serve\",\"transport\":\"tcp\",\"served\":200,\"failed\":0,\"failed_deadline\":0,\"failed_transport\":0,\"failed_other\":0,\"overloaded\":0,\"inconsistent\":0,\"throughput_rps\":800.0,\"p50_us\":120,\"p99_us\":900,\"cache_hits\":30,\"cache_misses\":10,\"wal_bytes\":4096,\"last_checkpoint_epoch\":7,\"recovery_ms\":1.5,\"recovered_epoch\":9,\"publish_p50_us\":6,\"publish_p99_us\":11}\n",
        );
        parse_stream("bench.jsonl", text).unwrap()
    }

    #[test]
    fn bench_serve_headline_is_latest_failures_sum() {
        let streams = vec![bench_rows()];
        let (human, rollup) = render(&streams);
        let bench = rollup.get("bench_serve").unwrap();
        // Headline from seq=1 (the tcp run) …
        assert_eq!(
            bench.get("throughput_rps").and_then(Value::as_f64),
            Some(800.0)
        );
        assert_eq!(bench.get("p99_us").and_then(Value::as_u64), Some(900));
        assert_eq!(bench.get("wal_bytes").and_then(Value::as_u64), Some(4096));
        // … failure breakdown summed over both runs.
        assert_eq!(bench.get("served").and_then(Value::as_u64), Some(300));
        assert_eq!(bench.get("failed").and_then(Value::as_u64), Some(2));
        assert_eq!(
            bench.get("cache_hit_rate").and_then(Value::as_f64),
            Some(0.75)
        );
        assert!(human.contains("-- serving (bench-serve) --"), "{human}");
        assert!(human.contains("800.0 req/s"), "{human}");
    }

    #[test]
    fn experiments_and_lint_sections_count_rows() {
        let exp = parse_stream(
            "status.jsonl",
            concat!(
                "{\"schema\":\"podium.experiment-status/1\",\"seq\":0,\"name\":\"fig3a\",\"outcome\":\"ok\",\"seconds\":1.5}\n",
                "{\"schema\":\"podium.experiment-status/1\",\"seq\":1,\"name\":\"drift\",\"outcome\":\"panicked\",\"seconds\":0.5,\"message\":\"boom\"}\n",
            ),
        )
        .unwrap();
        let lint = parse_stream(
            "lint.jsonl",
            concat!(
                "{\"schema\":\"podium.lint/1\",\"seq\":0,\"file\":\"a.rs\",\"line\":1,\"col\":1,\"rule\":\"unwrap\",\"message\":\"m\",\"allowed\":false}\n",
                "{\"schema\":\"podium.lint/1\",\"seq\":1,\"file\":\"b.rs\",\"line\":2,\"col\":1,\"rule\":\"index\",\"message\":\"m\",\"allowed\":true,\"justification\":\"why\"}\n",
            ),
        )
        .unwrap();
        let (human, rollup) = render(&[exp, lint]);
        let e = rollup.get("experiments").unwrap();
        assert_eq!(e.get("ok").and_then(Value::as_u64), Some(1));
        assert_eq!(e.get("panicked").and_then(Value::as_u64), Some(1));
        let l = rollup.get("lint").unwrap();
        assert_eq!(l.get("denied").and_then(Value::as_u64), Some(1));
        assert_eq!(l.get("suppressed_debt").and_then(Value::as_u64), Some(1));
        assert!(human.contains("drift (panicked)"), "{human}");
        assert!(human.contains("suppression debt"), "{human}");
        // No bench-serve stream → no bench_serve section.
        assert!(rollup.get("bench_serve").is_none());
    }

    #[test]
    fn sim_section_recomputes_percentiles_per_op() {
        let reqs = parse_stream(
            "requests.jsonl",
            concat!(
                "{\"schema\":\"podium.sim-requests/1\",\"seq\":0,\"vt_us\":10,\"op\":\"select\",\"outcome\":\"ok\",\"latency_us\":100,\"epoch\":3,\"staleness\":1}\n",
                "{\"schema\":\"podium.sim-requests/1\",\"seq\":1,\"vt_us\":20,\"op\":\"select\",\"outcome\":\"ok\",\"latency_us\":300,\"epoch\":4,\"staleness\":0}\n",
                "{\"schema\":\"podium.sim-requests/1\",\"seq\":2,\"vt_us\":30,\"op\":\"update-profile\",\"outcome\":\"timeout\",\"latency_us\":2000}\n",
            ),
        )
        .unwrap();
        let (human, rollup) = render(&[reqs]);
        let sim = rollup.get("sim").unwrap();
        assert_eq!(sim.get("requests").and_then(Value::as_u64), Some(3));
        let select = sim.get("per_op").and_then(|o| o.get("select")).unwrap();
        assert_eq!(select.get("count").and_then(Value::as_u64), Some(2));
        assert_eq!(select.get("ok").and_then(Value::as_u64), Some(2));
        assert_eq!(select.get("max_staleness").and_then(Value::as_u64), Some(1));
        let update = sim
            .get("per_op")
            .and_then(|o| o.get("update-profile"))
            .unwrap();
        assert_eq!(update.get("failed").and_then(Value::as_u64), Some(1));
        assert_eq!(
            sim.get("outcomes")
                .and_then(|o| o.get("timeout"))
                .and_then(Value::as_u64),
            Some(1)
        );
        assert!(human.contains("-- simulator --"), "{human}");
    }

    #[test]
    fn rollup_is_tagged_and_serializable() {
        let (_, rollup) = render(&[bench_rows()]);
        assert_eq!(
            rollup.get("schema").and_then(Value::as_str),
            Some(DASHBOARD_SCHEMA)
        );
        let text = serde_json::to_string(&rollup).unwrap();
        assert!(text.starts_with("{\"schema\":\"podium.dashboard-rollup/1\""));
    }
}
