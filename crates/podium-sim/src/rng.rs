//! The simulator's deterministic random streams.
//!
//! Everything random in a simulation flows through [`SimRng`], a
//! splitmix64 generator (the same kernel used by `podium-service`'s
//! bench and chaos modules). Each stochastic process (arrival, drift,
//! churn, sessions) derives its own stream with [`SimRng::derive`] so
//! that adding draws to one process never perturbs another — the key to
//! keeping event traces byte-identical across refactors of a single
//! process.

/// A splitmix64 pseudo-random stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

/// splitmix64's additive constant (the 64-bit golden ratio).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// A stream seeded directly from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// A child stream keyed by `stream`: independent per key, stable
    /// across runs. The parent is not advanced.
    pub fn derive(&self, stream: u64) -> Self {
        // Mix the key through one splitmix round so adjacent keys land
        // far apart in the parent's sequence space.
        let mut s = self.state ^ stream.wrapping_mul(GOLDEN);
        let mixed = splitmix64(&mut s);
        Self { state: mixed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        // podium-lint: allow(as-cast) — u64 >> 11 fits f64's 53-bit mantissa exactly
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// An exponential inter-arrival gap for a Poisson process of
    /// `rate_hz` events per virtual second, in virtual microseconds.
    /// Clamped to at least 1µs so time always advances; a non-positive
    /// rate means "never" and returns `u64::MAX`.
    pub fn exp_gap_us(&mut self, rate_hz: f64) -> u64 {
        if rate_hz.is_nan() || rate_hz <= 0.0 {
            return u64::MAX;
        }
        let u = self.unit();
        let seconds = -(1.0 - u).ln() / rate_hz;
        let us = seconds * 1_000_000.0;
        if us >= 9.0e18 {
            return u64::MAX;
        }
        // podium-lint: allow(as-cast) — bounded above by the 9e18 guard and below by 0 (exp draw)
        (us as u64).max(1)
    }

    /// Walks a cumulative step along `row` (a probability row summing to
    /// ~1) and returns the chosen index. Falls back to the last index on
    /// rounding shortfall; returns 0 for an empty row.
    pub fn pick_row(&mut self, row: &[f64]) -> usize {
        let draw = self.unit();
        let mut acc = 0.0;
        for (i, p) in row.iter().enumerate() {
            acc += *p;
            if draw < acc {
                return i;
            }
        }
        row.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_are_independent() {
        let root = SimRng::new(42);
        let mut a = root.derive(1);
        let mut b = root.derive(2);
        assert_ne!(a.next_u64(), b.next_u64());
        // Deriving does not advance the parent.
        let mut c = root.derive(1);
        let mut d = root.derive(1);
        assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exp_gap_mean_tracks_rate() {
        let mut r = SimRng::new(11);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| r.exp_gap_us(100.0)).sum();
        let mean = total / n; // expect ~10_000µs at 100 Hz
        assert!((8_000..12_000).contains(&mean), "mean {mean}");
    }

    #[test]
    fn exp_gap_zero_rate_means_never() {
        let mut r = SimRng::new(1);
        assert_eq!(r.exp_gap_us(0.0), u64::MAX);
        assert_eq!(r.exp_gap_us(-1.0), u64::MAX);
        assert_eq!(r.exp_gap_us(f64::NAN), u64::MAX);
    }

    #[test]
    fn pick_row_respects_cumulative_bounds() {
        let mut r = SimRng::new(5);
        let row = [0.0, 1.0, 0.0];
        for _ in 0..100 {
            assert_eq!(r.pick_row(&row), 1);
        }
        assert_eq!(r.pick_row(&[]), 0);
    }
}
