//! Deterministic workload simulation and unified observability for the
//! Podium serving layer.
//!
//! The paper's procurement setting is temporal: users arrive, opinions
//! drift, and the selector is re-queried as the population changes
//! (§9's "may be easily executed multiple times, e.g., to incorporate
//! data updates"). This crate turns that into a reproducible workload:
//!
//! * [`rng`] — splitmix64 streams, one per stochastic process;
//! * [`events`] — the virtual-clock event heap (min-heap on
//!   `(virtual_time, seq)`), the discrete-event core;
//! * [`scenario`] — versioned JSON scenario definitions
//!   (`podium.scenario/1`): rates, drift matrices, session mix;
//! * [`population`] — the synthetic population and its per-(user,
//!   property) Markov bucket states, mirrored into the repository;
//! * [`transport`] — how generated requests reach the real service:
//!   in-process, Unix socket, or TCP via [`podium_service::client::PodiumClient`]
//!   (optionally through the virtual-clock chaos proxy);
//! * [`driver`] — the simulation loop: pops events, emits real
//!   protocol requests, records the event trace (byte-identical per
//!   seed), the per-request latency/outcome/staleness log, and a
//!   deterministic rollup;
//! * [`stream`] — schema-validated JSONL ingestion with typed errors
//!   (mixed versions and non-monotone sequence numbers are rejected,
//!   not panicked over);
//! * [`report`] — the unified dashboard: one pass over bench-serve,
//!   experiment-status, lint, and simulator streams, producing a
//!   human-readable dashboard plus the machine `BENCH_*.json` rollup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod events;
pub mod population;
pub mod report;
pub mod rng;
pub mod scenario;
pub mod stream;
pub mod transport;

pub use driver::{run_sim, SimOptions, SimOutput};
pub use scenario::{parse_scenario, Scenario};
pub use stream::{read_streams, StreamError};
pub use transport::TransportSpec;

/// Why a simulation or report could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The scenario document failed to parse or validate.
    Scenario(String),
    /// Transport setup failed (bind, connect, socket).
    Transport(String),
    /// A dashboard input stream was rejected.
    Stream(stream::StreamError),
    /// Filesystem-level failure.
    Io(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Scenario(m) => write!(f, "scenario error: {m}"),
            SimError::Transport(m) => write!(f, "transport error: {m}"),
            SimError::Stream(e) => write!(f, "stream error: {e}"),
            SimError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<stream::StreamError> for SimError {
    fn from(e: stream::StreamError) -> Self {
        SimError::Stream(e)
    }
}
