//! The simulation loop.
//!
//! [`run_sim`] pops events off the virtual-clock heap, turns them into
//! real protocol requests against a real [`PodiumService`], and records
//! three artifacts:
//!
//! * an **event trace** (`podium.sim-trace/1` JSONL) — virtual time,
//!   event kind, and the exact request line. A pure function of
//!   `(seed, scenario)` for healthy transports, so two runs with the
//!   same seed produce *byte-identical* traces;
//! * a **request log** (`podium.sim-requests/1` JSONL) — per-request
//!   wall latency, outcome tag, response epoch, and epoch staleness
//!   (how far the answering snapshot lagged the newest epoch the
//!   driver has observed);
//! * a **rollup** (`podium.sim-rollup/1` JSON) — deterministic
//!   counters only (no wall-clock fields), byte-identical per seed for
//!   healthy runs.
//!
//! Wall-clock performance numbers (req/s, percentiles) go to the human
//! summary and the dashboard, never into the trace or rollup.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use podium_core::weights::{CovScheme, WeightScheme};
use podium_service::protocol::{encode_request, num_u64, Request};
use podium_service::service::{PodiumService, ServiceConfig};
use podium_service::session::FeedbackDelta;
use podium_service::snapshot::{ProfileUpdate, SelectParams};
use serde_json::Value;

use crate::events::{Event, EventQueue};
use crate::population::{assigned_property, bucket_score, Population, SimUser};
use crate::rng::SimRng;
use crate::scenario::Scenario;
use crate::transport::{outcome_tag, Transport, TransportSpec};
use crate::SimError;

/// Schema tag of event-trace rows.
pub const TRACE_SCHEMA: &str = "podium.sim-trace/1";
/// Schema tag of request-log rows.
pub const REQUESTS_SCHEMA: &str = "podium.sim-requests/1";
/// Schema tag of the deterministic rollup document.
pub const ROLLUP_SCHEMA: &str = "podium.sim-rollup/1";

/// Everything that parameterizes a run besides the scenario.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Master seed; every stochastic stream derives from it.
    pub seed: u64,
    /// How requests reach the service.
    pub transport: TransportSpec,
}

/// The three artifacts of a run plus a human summary.
#[derive(Debug)]
pub struct SimOutput {
    /// Event-trace JSONL (deterministic).
    pub trace: String,
    /// Request-log JSONL (wall-clock latencies).
    pub requests: String,
    /// Deterministic rollup document.
    pub rollup: Value,
    /// Wall-clock summary for stdout.
    pub human: String,
}

/// Stream keys for [`SimRng::derive`]; fixed so adding a process never
/// reseeds the others.
mod streams {
    pub const POPULATION: u64 = 1;
    pub const ARRIVAL: u64 = 2;
    pub const CHURN: u64 = 3;
    pub const DRIFT: u64 = 4;
    pub const SESSION: u64 = 5;
}

struct SessionState {
    server_id: u64,
    selects_left: usize,
    refines_left: usize,
}

/// The mutable heart of a run.
struct Driver {
    scenario: Scenario,
    transport: Transport,
    arrival_rng: SimRng,
    churn_rng: SimRng,
    drift_rng: SimRng,
    session_rng: SimRng,
    population: Population,
    sessions: BTreeMap<u64, SessionState>,
    next_sid: u64,
    group_count: u64,
    max_epoch: u64,
    // Artifacts under construction.
    trace: String,
    trace_seq: u64,
    requests: String,
    request_seq: u64,
    // Deterministic counters.
    events_processed: u64,
    by_op: BTreeMap<&'static str, u64>,
    outcomes: BTreeMap<String, u64>,
    latencies_us: BTreeMap<&'static str, Vec<u64>>,
    users_created: u64,
    users_churned: u64,
    drift_steps: u64,
    drift_moves: u64,
    sessions_opened: u64,
    sessions_completed: u64,
    max_staleness: u64,
    staleness_sum: u64,
}

/// Runs one simulation to completion.
pub fn run_sim(scenario: &Scenario, options: &SimOptions) -> Result<SimOutput, SimError> {
    let root = SimRng::new(options.seed);
    let mut pop_rng = root.derive(streams::POPULATION);
    let (repo, buckets, population) = crate::population::build_initial(scenario, &mut pop_rng);
    let service = Arc::new(PodiumService::new(
        repo,
        &buckets,
        ServiceConfig {
            workers: scenario.service.workers,
            queue_capacity: scenario.service.queue_capacity,
            default_deadline_ms: scenario.service.deadline_ms,
            ..ServiceConfig::default()
        },
    ));
    let transport = match &options.transport {
        TransportSpec::Inproc => Transport::inproc(service),
        TransportSpec::Unix => Transport::unix(service, &format!("s{}", options.seed))?,
        TransportSpec::Tcp { chaos } => {
            Transport::tcp(service, *chaos, scenario.service.deadline_ms, options.seed)?
        }
    };

    let mut driver = Driver {
        scenario: scenario.clone(),
        transport,
        arrival_rng: root.derive(streams::ARRIVAL),
        churn_rng: root.derive(streams::CHURN),
        drift_rng: root.derive(streams::DRIFT),
        session_rng: root.derive(streams::SESSION),
        population,
        sessions: BTreeMap::new(),
        next_sid: 0,
        group_count: 0,
        max_epoch: 0,
        trace: String::new(),
        trace_seq: 0,
        requests: String::new(),
        request_seq: 0,
        events_processed: 0,
        by_op: BTreeMap::new(),
        outcomes: BTreeMap::new(),
        latencies_us: BTreeMap::new(),
        users_created: 0,
        users_churned: 0,
        drift_steps: 0,
        drift_moves: 0,
        sessions_opened: 0,
        sessions_completed: 0,
        max_staleness: 0,
        staleness_sum: 0,
    };

    let end_us = duration_us(scenario.duration_s);
    let mut queue = EventQueue::new();
    // The observer polls first (at t=0) so the driver knows the group
    // count and starting epoch before any session asks for refinements.
    queue.schedule(0, Event::Observer);
    let first_arrival = driver.arrival_rng.exp_gap_us(scenario.arrival_rate_hz);
    schedule_before(&mut queue, first_arrival, end_us, Event::Arrival);
    let first_churn = driver.churn_rng.exp_gap_us(scenario.churn_rate_hz);
    schedule_before(&mut queue, first_churn, end_us, Event::Churn);
    let first_drift = driver.drift_rng.exp_gap_us(scenario.drift.rate_hz);
    schedule_before(&mut queue, first_drift, end_us, Event::Drift);
    let first_session = driver.session_rng.exp_gap_us(scenario.session.rate_hz);
    schedule_before(&mut queue, first_session, end_us, Event::OpenSession);
    queue.schedule(end_us, Event::End);

    let wall_start = Instant::now();
    while let Some(scheduled) = queue.pop() {
        if matches!(scheduled.event, Event::End) {
            break;
        }
        driver.events_processed += 1;
        driver.dispatch(&mut queue, scheduled.at_us, end_us, &scheduled.event);
    }
    // Drain: close whatever sessions are still open, in sid order, at
    // the horizon.
    let open: Vec<u64> = driver.sessions.keys().copied().collect();
    for sid in open {
        driver.close_session(end_us, sid);
    }
    let wall_s = wall_start.elapsed().as_secs_f64();

    let rollup = driver.rollup(options);
    let human = driver.human_summary(options, wall_s);
    Ok(SimOutput {
        trace: driver.trace,
        requests: driver.requests,
        rollup,
        human,
    })
}

/// `duration_s` in virtual microseconds, saturating.
fn duration_us(duration_s: f64) -> u64 {
    let us = duration_s * 1_000_000.0;
    if us >= 9.0e18 {
        u64::MAX
    } else {
        // podium-lint: allow(as-cast) — bounded by the 9e18 guard, non-negative by scenario validation
        us as u64
    }
}

/// Schedules `event` at absolute `at_us` unless it lies at/past the
/// horizon (or the gap overflowed to "never").
fn schedule_before(queue: &mut EventQueue, at_us: u64, end_us: u64, event: Event) {
    if at_us < end_us {
        queue.schedule(at_us, event);
    }
}

impl Driver {
    fn dispatch(&mut self, queue: &mut EventQueue, now_us: u64, end_us: u64, event: &Event) {
        match event {
            Event::Arrival => {
                self.arrival(now_us);
                let gap = self.arrival_rng.exp_gap_us(self.scenario.arrival_rate_hz);
                schedule_before(queue, now_us.saturating_add(gap), end_us, Event::Arrival);
            }
            Event::Churn => {
                self.churn(now_us);
                let gap = self.churn_rng.exp_gap_us(self.scenario.churn_rate_hz);
                schedule_before(queue, now_us.saturating_add(gap), end_us, Event::Churn);
            }
            Event::Drift => {
                self.drift(now_us);
                let gap = self.drift_rng.exp_gap_us(self.scenario.drift.rate_hz);
                schedule_before(queue, now_us.saturating_add(gap), end_us, Event::Drift);
            }
            Event::OpenSession => {
                self.open_session(queue, now_us, end_us);
                let gap = self.session_rng.exp_gap_us(self.scenario.session.rate_hz);
                schedule_before(
                    queue,
                    now_us.saturating_add(gap),
                    end_us,
                    Event::OpenSession,
                );
            }
            Event::SessionStep { sid } => self.session_step(queue, now_us, end_us, *sid),
            Event::Observer => {
                self.observe(now_us);
                let next = observer_gap_us(self.scenario.observer_rate_hz);
                if next < u64::MAX {
                    schedule_before(queue, now_us.saturating_add(next), end_us, Event::Observer);
                }
            }
            Event::End => {}
        }
    }

    /// One user joins: create the mirror record and stream its scores.
    fn arrival(&mut self, now_us: u64) {
        let ordinal = self.population.users.len();
        let spu = self.scenario.population.scores_per_user;
        let properties = self.scenario.population.properties;
        let buckets = self.scenario.drift.bucket_scores.len();
        let mut user = SimUser {
            name: format!("sim-user-{ordinal}"),
            props: Vec::with_capacity(spu),
            alive: true,
        };
        // Draw all randomness up front so the stream is independent of
        // transport outcomes.
        let mut writes = Vec::with_capacity(spu);
        for slot in 0..spu {
            let p = assigned_property(ordinal, slot, properties, spu);
            // podium-lint: allow(as-cast) — bucket count is a small scenario constant
            let bucket = self.arrival_rng.below(buckets as u64) as usize;
            user.props.push((p, bucket));
            writes.push((p, bucket_score(&self.scenario, bucket)));
        }
        let name = user.name.clone();
        self.population.push(user);
        self.users_created += 1;
        for (p, score) in writes {
            let request = Request::UpdateProfile {
                update: ProfileUpdate {
                    user: name.clone(),
                    property: format!("topic-{p}"),
                    score: Some(score),
                },
            };
            self.emit(now_us, "arrival", Some(&name), &request);
        }
    }

    /// One user leaves: retract every score and deactivate the mirror.
    fn churn(&mut self, now_us: u64) {
        let Some(user_idx) = self.population.pick_active(&mut self.churn_rng) else {
            return;
        };
        let Some(user) = self.population.users.get(user_idx) else {
            return;
        };
        let name = user.name.clone();
        let props: Vec<usize> = user.props.iter().map(|(p, _)| *p).collect();
        self.population.deactivate(user_idx);
        self.users_churned += 1;
        for p in props {
            let request = Request::UpdateProfile {
                update: ProfileUpdate {
                    user: name.clone(),
                    property: format!("topic-{p}"),
                    score: None,
                },
            };
            self.emit(now_us, "churn", Some(&name), &request);
        }
    }

    /// A batch of Markov drift steps; only bucket *changes* emit
    /// protocol traffic (same-bucket steps are free).
    fn drift(&mut self, now_us: u64) {
        for _ in 0..self.scenario.drift.batch {
            let Some(user_idx) = self.population.pick_active(&mut self.drift_rng) else {
                return;
            };
            let Some(user) = self.population.users.get(user_idx) else {
                return;
            };
            let slot = self.drift_rng.below(user.props.len() as u64);
            // podium-lint: allow(as-cast) — slot < props.len() by construction
            let Some(&(prop, bucket)) = user.props.get(slot as usize) else {
                continue;
            };
            self.drift_steps += 1;
            let row = self
                .scenario
                .drift
                .matrix
                .get(bucket)
                .cloned()
                .unwrap_or_default();
            let next = self.drift_rng.pick_row(&row);
            if next == bucket {
                continue;
            }
            self.drift_moves += 1;
            let name = {
                let Some(user) = self.population.users.get_mut(user_idx) else {
                    continue;
                };
                // podium-lint: allow(as-cast) — slot < props.len() by construction
                if let Some(entry) = user.props.get_mut(slot as usize) {
                    entry.1 = next;
                }
                user.name.clone()
            };
            let request = Request::UpdateProfile {
                update: ProfileUpdate {
                    user: name.clone(),
                    property: format!("topic-{prop}"),
                    score: Some(bucket_score(&self.scenario, next)),
                },
            };
            self.emit(now_us, "drift", Some(&name), &request);
        }
    }

    /// Opens a customization session and schedules its first step.
    fn open_session(&mut self, queue: &mut EventQueue, now_us: u64, end_us: u64) {
        let sid = self.next_sid;
        self.next_sid += 1;
        let response = self.emit(now_us, "open-session", None, &Request::OpenSession);
        let Some(response) = response else { return };
        let Some(server_id) = response.get("session").and_then(Value::as_u64) else {
            return;
        };
        self.sessions.insert(
            sid,
            SessionState {
                server_id,
                selects_left: self.scenario.session.selects,
                refines_left: self.scenario.session.refines,
            },
        );
        self.sessions_opened += 1;
        let think = self.scenario.session.think_ms.saturating_mul(1_000);
        schedule_before(
            queue,
            now_us.saturating_add(think),
            end_us,
            Event::SessionStep { sid },
        );
    }

    /// Advances one session: select → refine → close.
    fn session_step(&mut self, queue: &mut EventQueue, now_us: u64, end_us: u64, sid: u64) {
        let Some(state) = self.sessions.get(&sid) else {
            return;
        };
        let server_id = state.server_id;
        let params = SelectParams {
            budget: self.scenario.session.budget,
            weight: WeightScheme::LinearBySize,
            cov: CovScheme::Single,
        };
        let mut reschedule = true;
        if state.selects_left > 0 {
            // Draw before sending so the stream shape is outcome-free.
            let stale_ok = self.session_rng.unit() < self.scenario.session.stale_ok_prob;
            if let Some(s) = self.sessions.get_mut(&sid) {
                s.selects_left -= 1;
            }
            let request = Request::Select {
                params,
                deadline_ms: None,
                stale_ok,
            };
            self.emit(now_us, "select", None, &request);
        } else if state.refines_left > 0 {
            let (must_have, must_not) = self.draw_feedback();
            if let Some(s) = self.sessions.get_mut(&sid) {
                s.refines_left -= 1;
            }
            let request = Request::Refine {
                session: server_id,
                delta: FeedbackDelta {
                    must_have,
                    must_not,
                    priority: Vec::new(),
                    standard: None,
                    reset: false,
                },
                params,
            };
            let response = self.emit(now_us, "refine", None, &request);
            // A dead server-side session cannot progress: abandon it.
            if let Some(r) = &response {
                let tag = outcome_tag(r);
                if tag == "unknown_session" || tag == "session_retired" {
                    self.sessions.remove(&sid);
                    reschedule = false;
                }
            }
        } else {
            self.close_session(now_us, sid);
            self.sessions_completed += 1;
            reschedule = false;
        }
        if reschedule {
            let think = self.scenario.session.think_ms.saturating_mul(1_000);
            schedule_before(
                queue,
                now_us.saturating_add(think),
                end_us,
                Event::SessionStep { sid },
            );
        }
    }

    /// Draws refine feedback group ids from the last observed group
    /// count. Empty when the observer has not yet seen any groups.
    fn draw_feedback(&mut self) -> (Vec<u32>, Vec<u32>) {
        if self.group_count == 0 {
            // Keep the draw count fixed regardless of group knowledge,
            // so later observer timing never shifts the stream.
            let _ = self.session_rng.next_u64();
            let _ = self.session_rng.next_u64();
            return (Vec::new(), Vec::new());
        }
        let a = self.session_rng.below(self.group_count);
        let b = self.session_rng.below(self.group_count);
        // podium-lint: allow(as-cast) — group ids are u32 by the dense-id construction
        let must_have = vec![a as u32];
        let must_not = if b == a {
            Vec::new()
        } else {
            // podium-lint: allow(as-cast) — group ids are u32 by the dense-id construction
            vec![b as u32]
        };
        (must_have, must_not)
    }

    fn close_session(&mut self, now_us: u64, sid: u64) {
        let Some(state) = self.sessions.remove(&sid) else {
            return;
        };
        let request = Request::CloseSession {
            session: state.server_id,
        };
        self.emit(now_us, "close-session", None, &request);
    }

    /// Monitoring poll: refreshes the driver's epoch and group count.
    fn observe(&mut self, now_us: u64) {
        let response = self.emit(now_us, "observer", None, &Request::Stats);
        if let Some(r) = response {
            if let Some(groups) = r.get("groups").and_then(Value::as_u64) {
                self.group_count = groups;
            }
        }
    }

    /// Emits one request: trace row → transport call → request-log row.
    /// Returns the response object when the transport delivered one
    /// (even an `"ok":false` one).
    fn emit(
        &mut self,
        vt_us: u64,
        event: &str,
        user: Option<&str>,
        request: &Request,
    ) -> Option<Value> {
        let line = encode_request(request);
        let op = op_tag(request);
        // Trace row: deterministic fields only.
        let mut trace_pairs = vec![
            ("schema".to_owned(), Value::String(TRACE_SCHEMA.to_owned())),
            ("seq".to_owned(), num_u64(self.trace_seq)),
            ("vt_us".to_owned(), num_u64(vt_us)),
            ("event".to_owned(), Value::String(event.to_owned())),
        ];
        if let Some(u) = user {
            trace_pairs.push(("user".to_owned(), Value::String(u.to_owned())));
        }
        trace_pairs.push(("request".to_owned(), Value::String(line.clone())));
        self.push_row(true, Value::Object(trace_pairs));
        self.trace_seq += 1;

        let started = Instant::now();
        let result = self.transport.call(&line);
        let latency_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);

        let (outcome, response) = match result {
            Ok(value) => (outcome_tag(&value), Some(value)),
            Err(e) => (e.tag().to_owned(), None),
        };
        *self.by_op.entry(op).or_insert(0) += 1;
        *self.outcomes.entry(outcome.clone()).or_insert(0) += 1;
        self.latencies_us.entry(op).or_default().push(latency_us);

        let mut request_pairs = vec![
            (
                "schema".to_owned(),
                Value::String(REQUESTS_SCHEMA.to_owned()),
            ),
            ("seq".to_owned(), num_u64(self.request_seq)),
            ("vt_us".to_owned(), num_u64(vt_us)),
            ("op".to_owned(), Value::String(op.to_owned())),
            ("outcome".to_owned(), Value::String(outcome)),
            ("latency_us".to_owned(), num_u64(latency_us)),
        ];
        if let Some(epoch) = response
            .as_ref()
            .and_then(|r| r.get("epoch"))
            .and_then(Value::as_u64)
        {
            // Staleness: how far this answer's snapshot lags the newest
            // epoch the driver has seen so far (before merging this one).
            let staleness = self.max_epoch.saturating_sub(epoch);
            self.max_epoch = self.max_epoch.max(epoch);
            request_pairs.push(("epoch".to_owned(), num_u64(epoch)));
            if matches!(op, "select" | "refine") {
                request_pairs.push(("staleness".to_owned(), num_u64(staleness)));
                self.max_staleness = self.max_staleness.max(staleness);
                self.staleness_sum += staleness;
            }
        }
        self.push_row(false, Value::Object(request_pairs));
        self.request_seq += 1;
        response
    }

    fn push_row(&mut self, trace: bool, row: Value) {
        // podium-lint: allow(expect) — value trees built from plain strings/numbers cannot fail to serialize
        let line = serde_json::to_string(&row).expect("row serialization is infallible");
        let sink = if trace {
            &mut self.trace
        } else {
            &mut self.requests
        };
        sink.push_str(&line);
        sink.push('\n');
    }

    /// The deterministic rollup: counters only, no wall-clock fields.
    fn rollup(&self, options: &SimOptions) -> Value {
        let by_op: Vec<(String, Value)> = self
            .by_op
            .iter()
            .map(|(op, n)| ((*op).to_owned(), num_u64(*n)))
            .collect();
        let outcomes: Vec<(String, Value)> = self
            .outcomes
            .iter()
            .map(|(tag, n)| (tag.clone(), num_u64(*n)))
            .collect();
        Value::Object(vec![
            ("schema".to_owned(), Value::String(ROLLUP_SCHEMA.to_owned())),
            (
                "scenario".to_owned(),
                Value::String(self.scenario.name.clone()),
            ),
            ("seed".to_owned(), num_u64(options.seed)),
            (
                "transport".to_owned(),
                Value::String(options.transport.tag().to_owned()),
            ),
            (
                "virtual_duration_s".to_owned(),
                Value::Number(serde_json::Number::Float(self.scenario.duration_s)),
            ),
            ("events".to_owned(), num_u64(self.events_processed)),
            ("requests".to_owned(), num_u64(self.request_seq)),
            ("requests_by_op".to_owned(), Value::Object(by_op)),
            ("outcomes".to_owned(), Value::Object(outcomes)),
            ("users_created".to_owned(), num_u64(self.users_created)),
            ("users_churned".to_owned(), num_u64(self.users_churned)),
            ("drift_steps".to_owned(), num_u64(self.drift_steps)),
            ("drift_moves".to_owned(), num_u64(self.drift_moves)),
            ("sessions_opened".to_owned(), num_u64(self.sessions_opened)),
            (
                "sessions_completed".to_owned(),
                num_u64(self.sessions_completed),
            ),
            ("final_epoch".to_owned(), num_u64(self.max_epoch)),
            ("max_staleness".to_owned(), num_u64(self.max_staleness)),
            ("staleness_sum".to_owned(), num_u64(self.staleness_sum)),
        ])
    }

    /// Wall-clock summary for stdout; never part of the rollup.
    fn human_summary(&self, options: &SimOptions, wall_s: f64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sim '{}' seed {} transport {}: {} events, {} requests in {:.2}s wall ({:.0} req/s)",
            self.scenario.name,
            options.seed,
            options.transport.tag(),
            self.events_processed,
            self.request_seq,
            wall_s,
            // podium-lint: allow(as-cast) — request counts are far below 2^53
            if wall_s > 0.0 {
                self.request_seq as f64 / wall_s
            } else {
                0.0
            },
        );
        for (op, lats) in &self.latencies_us {
            let (p50, p99) = percentiles(lats);
            let _ = writeln!(
                out,
                "  {op:<15} n={:<6} p50={p50}us p99={p99}us",
                lats.len()
            );
        }
        let outcomes: Vec<String> = self
            .outcomes
            .iter()
            .map(|(tag, n)| format!("{tag} {n}"))
            .collect();
        let _ = writeln!(out, "  outcomes: {}", outcomes.join(", "));
        let _ = writeln!(
            out,
            "  epoch {} | max staleness {} | sessions {}/{} completed | users +{} -{}",
            self.max_epoch,
            self.max_staleness,
            self.sessions_completed,
            self.sessions_opened,
            self.users_created,
            self.users_churned,
        );
        out
    }
}

/// The fixed observer period (regular, not Poisson: monitoring is a
/// cron job, not a user).
fn observer_gap_us(rate_hz: f64) -> u64 {
    if rate_hz.is_nan() || rate_hz <= 0.0 {
        return u64::MAX;
    }
    let us = 1_000_000.0 / rate_hz;
    if us >= 9.0e18 {
        u64::MAX
    } else {
        // podium-lint: allow(as-cast) — bounded by the 9e18 guard, positive by the rate check
        (us as u64).max(1)
    }
}

/// `(p50, p99)` of a latency sample by nearest-rank.
pub fn percentiles(samples: &[u64]) -> (u64, u64) {
    if samples.is_empty() {
        return (0, 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = |q: usize| -> u64 {
        let idx = (sorted.len().saturating_sub(1)) * q / 100;
        sorted.get(idx).copied().unwrap_or(0)
    };
    (rank(50), rank(99))
}

fn op_tag(request: &Request) -> &'static str {
    match request {
        Request::Select { .. } => "select",
        Request::Explain { .. } => "explain",
        Request::OpenSession => "open-session",
        Request::CloseSession { .. } => "close-session",
        Request::Refine { .. } => "refine",
        Request::UpdateProfile { .. } => "update-profile",
        Request::Stats => "stats",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::parse_scenario;

    const SCENARIO: &str = r#"{
        "schema": "podium.scenario/1",
        "name": "unit",
        "duration_s": 2.0,
        "population": {"users": 40, "properties": 8, "scores_per_user": 3},
        "arrival": {"rate_hz": 4.0},
        "churn": {"rate_hz": 2.0},
        "drift": {"rate_hz": 30.0, "batch": 2},
        "session": {"rate_hz": 6.0, "selects": 2, "refines": 1, "budget": 5,
                    "think_ms": 20, "stale_ok_prob": 0.3},
        "observer": {"rate_hz": 4.0},
        "service": {"workers": 2, "queue_capacity": 64, "deadline_ms": 2000}
    }"#;

    fn run(seed: u64) -> SimOutput {
        let scenario = parse_scenario(SCENARIO).unwrap();
        run_sim(
            &scenario,
            &SimOptions {
                seed,
                transport: TransportSpec::Inproc,
            },
        )
        .unwrap()
    }

    #[test]
    fn healthy_inproc_run_is_all_ok_and_busy() {
        let out = run(7);
        assert!(out.trace.lines().count() > 50, "trace too small");
        assert_eq!(out.trace.lines().count(), out.requests.lines().count());
        let outcomes = out.rollup.get("outcomes").unwrap();
        let ok = outcomes.get("ok").and_then(Value::as_u64).unwrap_or(0);
        let total = out
            .rollup
            .get("requests")
            .and_then(Value::as_u64)
            .unwrap_or(0);
        assert_eq!(ok, total, "healthy inproc run must be all-ok: {outcomes:?}");
        assert!(out.rollup.get("final_epoch").unwrap().as_u64().unwrap() > 0);
        assert!(out.rollup.get("sessions_opened").unwrap().as_u64().unwrap() > 0);
    }

    #[test]
    fn every_trace_row_is_schema_tagged_with_monotone_seq() {
        let out = run(7);
        let mut expect = 0u64;
        for line in out.trace.lines() {
            let row: Value = serde_json::from_str(line).unwrap();
            assert_eq!(
                row.get("schema").and_then(Value::as_str),
                Some(TRACE_SCHEMA)
            );
            assert_eq!(row.get("seq").and_then(Value::as_u64), Some(expect));
            expect += 1;
        }
        assert!(expect > 0);
    }

    #[test]
    fn request_rows_carry_latency_outcome_epoch() {
        let out = run(7);
        let mut saw_staleness_field = false;
        for line in out.requests.lines() {
            let row: Value = serde_json::from_str(line).unwrap();
            assert_eq!(
                row.get("schema").and_then(Value::as_str),
                Some(REQUESTS_SCHEMA)
            );
            assert!(row.get("latency_us").and_then(Value::as_u64).is_some());
            assert!(row.get("outcome").and_then(Value::as_str).is_some());
            if row.get("staleness").is_some() {
                saw_staleness_field = true;
            }
        }
        assert!(saw_staleness_field, "selects must report staleness");
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentiles(&[]), (0, 0));
        assert_eq!(percentiles(&[5]), (5, 5));
        let many: Vec<u64> = (1..=100).collect();
        let (p50, p99) = percentiles(&many);
        assert_eq!(p50, 50);
        assert_eq!(p99, 99);
    }
}
