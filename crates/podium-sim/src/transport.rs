//! How simulated requests reach the service under test.
//!
//! The generator half of the simulator is transport-agnostic: it emits
//! protocol lines and classifies the answer. Three transports are
//! supported — in-process dispatch (`handle_line`), a Unix domain
//! socket, and TCP through the resilient [`PodiumClient`], optionally
//! behind the deterministic [`ChaosProxy`].

use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use podium_service::chaos::{ChaosClock, ChaosConfig, ChaosProxy};
use podium_service::client::{ClientConfig, ClientError, PodiumClient};
use podium_service::service::PodiumService;
use podium_service::tcp::{TcpServer, TcpServerConfig};
use serde_json::Value;

use crate::SimError;

/// Which transport a simulation drives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportSpec {
    /// Direct in-process dispatch; no sockets, fastest, fully
    /// deterministic.
    Inproc,
    /// A Unix domain socket served by a background thread.
    Unix,
    /// Loopback TCP through [`PodiumClient`]; `chaos` interposes the
    /// deterministic proxy (virtual-clock stalls) between client and
    /// server.
    Tcp {
        /// Inject the chaos proxy.
        chaos: bool,
    },
}

impl TransportSpec {
    /// Parses a `--transport` flag value.
    pub fn parse(name: &str, chaos: bool) -> Result<Self, String> {
        match name {
            "inproc" => Ok(Self::Inproc),
            "unix" => Ok(Self::Unix),
            "tcp" => Ok(Self::Tcp { chaos }),
            other => Err(format!(
                "unknown transport '{other}' (expected inproc|unix|tcp)"
            )),
        }
    }

    /// The stable tag used in rollups.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::Inproc => "inproc",
            Self::Unix => "unix",
            Self::Tcp { chaos: false } => "tcp",
            Self::Tcp { chaos: true } => "tcp+chaos",
        }
    }
}

/// Why a call produced no usable response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallError {
    /// Bytes did not make it there and back.
    Transport(String),
    /// The client's per-request deadline expired.
    Timeout,
    /// The client's circuit breaker failed the call fast.
    BreakerOpen,
    /// The server answered with something that is not a JSON object.
    Protocol(String),
}

impl CallError {
    /// The stable outcome tag recorded in the request log.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::Transport(_) => "transport",
            Self::Timeout => "timeout",
            Self::BreakerOpen => "breaker_open",
            Self::Protocol(_) => "protocol",
        }
    }
}

enum Inner {
    Inproc(Arc<PodiumService>),
    Unix(BufReader<UnixStream>),
    Tcp(Box<PodiumClient>),
}

/// A connected transport, keeping any background server/proxy alive for
/// its own lifetime.
pub struct Transport {
    inner: Inner,
    // Held for their Drop side effects (shutdown on scope exit).
    _tcp_server: Option<TcpServer>,
    _proxy: Option<ChaosProxy>,
    socket_path: Option<PathBuf>,
}

impl Transport {
    /// In-process dispatch against `service`.
    pub fn inproc(service: Arc<PodiumService>) -> Self {
        Self {
            inner: Inner::Inproc(service),
            _tcp_server: None,
            _proxy: None,
            socket_path: None,
        }
    }

    /// Serves `service` on a fresh Unix socket under the system temp
    /// directory and connects to it. The serving thread is detached; it
    /// lives until the process exits (matching `serve_unix`'s
    /// accept-forever contract).
    pub fn unix(service: Arc<PodiumService>, tag: &str) -> Result<Self, SimError> {
        let path =
            std::env::temp_dir().join(format!("podium-sim-{}-{tag}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let serve_path = path.clone();
        std::thread::spawn(move || {
            let _ = podium_service::server::serve_unix(service, &serve_path);
        });
        // The listener creates the socket file; poll briefly for it.
        for _ in 0..200 {
            if path.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let stream = UnixStream::connect(&path)
            .map_err(|e| SimError::Transport(format!("unix connect {}: {e}", path.display())))?;
        Ok(Self {
            inner: Inner::Unix(BufReader::new(stream)),
            _tcp_server: None,
            _proxy: None,
            socket_path: Some(path),
        })
    }

    /// Serves `service` on loopback TCP (ephemeral port) and connects a
    /// [`PodiumClient`] to it — through a virtual-clock [`ChaosProxy`]
    /// when `chaos` is set. `deadline_ms` bounds each client call;
    /// `seed` drives the client's backoff jitter and the proxy's fault
    /// schedule.
    pub fn tcp(
        service: Arc<PodiumService>,
        chaos: bool,
        deadline_ms: u64,
        seed: u64,
    ) -> Result<Self, SimError> {
        let server = TcpServer::bind(service, "127.0.0.1:0", TcpServerConfig::default())
            .map_err(|e| SimError::Transport(format!("tcp bind: {e}")))?;
        let upstream: SocketAddr = server.local_addr();
        let (proxy, target) = if chaos {
            // Virtual-clock stalls: fault timing is bookkept, not slept,
            // so chaotic runs stay fast and deterministic.
            let config = ChaosConfig {
                seed,
                split_writes: true,
                disconnect_per_chunk: 0.002,
                stall_per_chunk: 0.01,
                stall: Duration::from_millis(500),
                refuse_per_conn: 0.002,
                clock: ChaosClock::virtual_clock(),
            };
            let proxy = ChaosProxy::bind(upstream, config)
                .map_err(|e| SimError::Transport(format!("chaos bind: {e}")))?;
            let addr = proxy.local_addr();
            (Some(proxy), addr)
        } else {
            (None, upstream)
        };
        let client = PodiumClient::new(
            target,
            ClientConfig {
                request_timeout: Duration::from_millis(deadline_ms.max(1)),
                seed,
                ..ClientConfig::default()
            },
        );
        Ok(Self {
            inner: Inner::Tcp(Box::new(client)),
            _tcp_server: Some(server),
            _proxy: proxy,
            socket_path: None,
        })
    }

    /// Sends one protocol line and parses the response object.
    pub fn call(&mut self, line: &str) -> Result<Value, CallError> {
        match &mut self.inner {
            Inner::Inproc(service) => parse_response(&service.handle_line(line)),
            Inner::Unix(stream) => {
                stream
                    .get_mut()
                    .write_all(line.as_bytes())
                    .and_then(|()| stream.get_mut().write_all(b"\n"))
                    .map_err(|e| CallError::Transport(format!("unix write: {e}")))?;
                let mut response = String::new();
                let n = stream
                    .read_line(&mut response)
                    .map_err(|e| CallError::Transport(format!("unix read: {e}")))?;
                if n == 0 {
                    return Err(CallError::Transport("unix peer closed".to_owned()));
                }
                parse_response(response.trim_end())
            }
            Inner::Tcp(client) => client.call(line).map_err(|e| match e {
                ClientError::Timeout => CallError::Timeout,
                ClientError::BreakerOpen => CallError::BreakerOpen,
                ClientError::Transport(m) => CallError::Transport(m),
                ClientError::Protocol(m) => CallError::Protocol(m),
            }),
        }
    }
}

impl Drop for Transport {
    fn drop(&mut self) {
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn parse_response(line: &str) -> Result<Value, CallError> {
    let value: Value = serde_json::from_str(line)
        .map_err(|e| CallError::Protocol(format!("unparseable response: {e}")))?;
    if value.is_object() {
        Ok(value)
    } else {
        Err(CallError::Protocol("response is not an object".to_owned()))
    }
}

/// Classifies a response object into the request log's outcome tag:
/// `"ok"` for successes, the server's error code otherwise.
pub fn outcome_tag(response: &Value) -> String {
    if response.get("ok").and_then(Value::as_bool) == Some(true) {
        return "ok".to_owned();
    }
    response
        .get("error")
        .and_then(Value::as_str)
        .unwrap_or("unknown_error")
        .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_classifies_ok_and_error() {
        let ok = parse_response(r#"{"ok":true,"epoch":3}"#).unwrap();
        assert_eq!(outcome_tag(&ok), "ok");
        let err = parse_response(r#"{"ok":false,"error":"overloaded","message":"m"}"#).unwrap();
        assert_eq!(outcome_tag(&err), "overloaded");
        assert!(parse_response("not json").is_err());
        assert!(parse_response("[1,2]").is_err());
    }

    #[test]
    fn transport_spec_parses() {
        assert_eq!(
            TransportSpec::parse("inproc", false),
            Ok(TransportSpec::Inproc)
        );
        assert_eq!(
            TransportSpec::parse("tcp", true),
            Ok(TransportSpec::Tcp { chaos: true })
        );
        assert_eq!(TransportSpec::Tcp { chaos: true }.tag(), "tcp+chaos");
        assert!(TransportSpec::parse("smoke-signals", false).is_err());
    }
}
