//! The virtual-clock event heap.
//!
//! A discrete-event simulation advances a virtual clock from one
//! scheduled event to the next instead of sleeping through real time.
//! The queue is a min-heap keyed by `(virtual_time_us, seq)`: the
//! monotone `seq` breaks ties between events scheduled for the same
//! instant in scheduling order, which makes the pop order — and
//! therefore the whole simulation — fully deterministic.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One schedulable occurrence in the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A new user joins the population.
    Arrival,
    /// An active user leaves (their scores are retracted).
    Churn,
    /// A batch of Markov opinion-drift steps.
    Drift,
    /// A client opens a customization session.
    OpenSession,
    /// The next step of an open session (select / refine / close),
    /// keyed by the simulator-local session number.
    SessionStep {
        /// Simulator-local session key (not the server's session id).
        sid: u64,
    },
    /// A monitoring poll: issue `stats` and refresh the driver's view
    /// of the epoch and group count.
    Observer,
    /// End of the simulated horizon.
    End,
}

/// An event bound to a virtual instant.
#[derive(Debug, Clone)]
pub struct Scheduled {
    /// Virtual time in microseconds since simulation start.
    pub at_us: u64,
    /// Scheduling order, unique per queue; the tie-breaker.
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.at_us, self.seq) == (other.at_us, other.seq)
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at_us, self.seq).cmp(&(other.at_us, other.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at virtual microsecond `at_us`; returns the
    /// assigned sequence number.
    pub fn schedule(&mut self, at_us: u64, event: Event) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at_us, seq, event }));
        seq
    }

    /// Pops the earliest event (ties broken by scheduling order).
    pub fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop().map(|Reverse(s)| s)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, Event::Churn);
        q.schedule(10, Event::Arrival);
        q.schedule(20, Event::Drift);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|s| s.at_us).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        q.schedule(5, Event::Churn);
        q.schedule(5, Event::Arrival);
        q.schedule(5, Event::Drift);
        let order: Vec<Event> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, vec![Event::Churn, Event::Arrival, Event::Drift]);
    }

    #[test]
    fn seq_is_monotone() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, Event::Arrival);
        let b = q.schedule(1, Event::Arrival);
        assert!(b > a);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
