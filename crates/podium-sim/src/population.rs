//! The synthetic population and its drift state.
//!
//! The simulator mirrors the server's view of every user: each
//! (user, property) pair carries a *bucket* state (an index into the
//! scenario's equal-width buckets), and opinion drift is a Markov step
//! over those buckets. Scores written to the repository are the
//! scenario's `bucket_scores[bucket]`, so the repository's equal-width
//! grouping and the simulator's drift state agree by construction.

use podium_core::bucket::{BucketStrategy, BucketingConfig, PropertyBuckets};
use podium_core::profile::UserRepository;

use crate::rng::SimRng;
use crate::scenario::Scenario;

/// One simulated user.
#[derive(Debug, Clone)]
pub struct SimUser {
    /// Repository user name (`sim-user-{n}`).
    pub name: String,
    /// `(property index, bucket state)` for every property the user
    /// scores on.
    pub props: Vec<(usize, usize)>,
    /// False once churned.
    pub alive: bool,
}

/// The evolving population.
#[derive(Debug, Default)]
pub struct Population {
    /// Every user ever created, arrival order.
    pub users: Vec<SimUser>,
    /// Indices into `users` that are currently alive.
    pub active: Vec<usize>,
}

impl Population {
    /// Picks a live user uniformly; `None` when everyone has churned.
    pub fn pick_active(&self, rng: &mut SimRng) -> Option<usize> {
        if self.active.is_empty() {
            return None;
        }
        let slot = rng.below(self.active.len() as u64);
        // podium-lint: allow(as-cast) — slot < active.len() by construction
        self.active.get(slot as usize).copied()
    }

    /// Removes `user` (an index into `users`) from the active list.
    /// `swap_remove` keeps removal O(1) and stays deterministic because
    /// the list is only mutated through this path and `push`.
    pub fn deactivate(&mut self, user: usize) {
        if let Some(pos) = self.active.iter().position(|&u| u == user) {
            self.active.swap_remove(pos);
        }
        if let Some(u) = self.users.get_mut(user) {
            u.alive = false;
        }
    }

    /// Appends a freshly arrived user and returns its index.
    pub fn push(&mut self, user: SimUser) -> usize {
        let idx = self.users.len();
        self.users.push(user);
        self.active.push(idx);
        idx
    }
}

/// The property assignment window used by the bench: rotate so every
/// property ends up populated.
pub fn assigned_property(user_ordinal: usize, slot: usize, properties: usize, spu: usize) -> usize {
    let stride = (properties / spu.max(1)).max(1);
    (user_ordinal + slot * stride) % properties.max(1)
}

/// Builds the initial repository plus the simulator's mirror of it, and
/// the equal-width bucketing the service will group by.
pub fn build_initial(
    scenario: &Scenario,
    rng: &mut SimRng,
) -> (UserRepository, PropertyBuckets, Population) {
    let buckets = scenario.drift.bucket_scores.len();
    let mut repo = UserRepository::new();
    let props: Vec<_> = (0..scenario.population.properties)
        .map(|p| repo.intern_property(format!("topic-{p}")))
        .collect();
    let mut pop = Population::default();
    for i in 0..scenario.population.users {
        let mut user = SimUser {
            name: format!("sim-user-{i}"),
            props: Vec::with_capacity(scenario.population.scores_per_user),
            alive: true,
        };
        let uid = repo.add_user(user.name.clone());
        for s in 0..scenario.population.scores_per_user {
            let p = assigned_property(
                i,
                s,
                scenario.population.properties,
                scenario.population.scores_per_user,
            );
            // podium-lint: allow(as-cast) — bucket count is a small scenario constant
            let bucket = rng.below(buckets as u64) as usize;
            let score = bucket_score(scenario, bucket);
            if let Some(pid) = props.get(p) {
                if repo.set_score(uid, *pid, score).is_ok() {
                    user.props.push((p, bucket));
                }
            }
        }
        pop.push(user);
    }
    // Equal-width bucketing with exactly the scenario's bucket count, so
    // the server's group structure matches the drift-state model.
    let config = BucketingConfig {
        strategy: BucketStrategy::EqualWidth,
        buckets_per_property: buckets,
        detect_boolean: false,
    };
    let property_buckets = config.bucketize(&repo);
    (repo, property_buckets, pop)
}

/// The representative score of `bucket` under `scenario`.
pub fn bucket_score(scenario: &Scenario, bucket: usize) -> f64 {
    scenario
        .drift
        .bucket_scores
        .get(bucket)
        .copied()
        .unwrap_or(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::parse_scenario;

    fn scenario() -> Scenario {
        parse_scenario(
            r#"{
            "schema": "podium.scenario/1", "name": "t", "duration_s": 1,
            "population": {"users": 20, "properties": 6, "scores_per_user": 3}
        }"#,
        )
        .unwrap()
    }

    #[test]
    fn initial_population_is_deterministic() {
        let s = scenario();
        let (repo_a, _, pop_a) = build_initial(&s, &mut SimRng::new(9));
        let (repo_b, _, pop_b) = build_initial(&s, &mut SimRng::new(9));
        assert_eq!(repo_a.user_count(), repo_b.user_count());
        assert_eq!(pop_a.users.len(), pop_b.users.len());
        for (a, b) in pop_a.users.iter().zip(pop_b.users.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.props, b.props);
        }
    }

    #[test]
    fn every_property_gets_populated() {
        let s = scenario();
        let (_, _, pop) = build_initial(&s, &mut SimRng::new(9));
        let mut seen = vec![false; s.population.properties];
        for u in &pop.users {
            for (p, _) in &u.props {
                seen[*p] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }

    #[test]
    fn deactivate_removes_from_active() {
        let s = scenario();
        let (_, _, mut pop) = build_initial(&s, &mut SimRng::new(9));
        let n = pop.active.len();
        pop.deactivate(3);
        assert_eq!(pop.active.len(), n - 1);
        assert!(!pop.users[3].alive);
        assert!(!pop.active.contains(&3));
    }

    #[test]
    fn pick_active_is_none_when_everyone_churned() {
        let mut pop = Population::default();
        assert!(pop.pick_active(&mut SimRng::new(1)).is_none());
        pop.push(SimUser {
            name: "u".into(),
            props: vec![],
            alive: true,
        });
        assert_eq!(pop.pick_active(&mut SimRng::new(1)), Some(0));
    }
}
