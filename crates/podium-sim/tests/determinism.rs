//! Tier-1 determinism contract of the simulator: the same seed and
//! scenario must reproduce the event trace and rollup byte-for-byte,
//! distinct seeds must diverge, and the emitted streams must round-trip
//! through the dashboard's validating reader.

use podium_sim::driver::{run_sim, SimOptions, SimOutput};
use podium_sim::report::render;
use podium_sim::scenario::parse_scenario;
use podium_sim::stream::{parse_stream, StreamKind};
use podium_sim::transport::TransportSpec;

fn smoke_scenario() -> podium_sim::Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../configs/sim_smoke.json");
    let text = std::fs::read_to_string(path).expect("read configs/sim_smoke.json");
    parse_scenario(&text).expect("checked-in scenario parses")
}

fn run(seed: u64, transport: TransportSpec) -> SimOutput {
    run_sim(&smoke_scenario(), &SimOptions { seed, transport }).expect("sim runs")
}

#[test]
fn same_seed_same_trace_and_rollup() {
    let a = run(42, TransportSpec::Inproc);
    let b = run(42, TransportSpec::Inproc);
    assert_eq!(a.trace, b.trace, "event trace must be byte-identical");
    let ra = serde_json::to_string(&a.rollup).unwrap();
    let rb = serde_json::to_string(&b.rollup).unwrap();
    assert_eq!(ra, rb, "rollup must be byte-identical");
    assert!(!a.trace.is_empty());
}

#[test]
fn distinct_seeds_distinct_traces() {
    let a = run(1, TransportSpec::Inproc);
    let b = run(2, TransportSpec::Inproc);
    assert_ne!(a.trace, b.trace, "different seeds must diverge");
}

#[test]
fn trace_is_transport_independent_for_healthy_transports() {
    // The trace records what the generator *asked*, which is fixed by
    // the seed before any response arrives; a healthy (non-chaos)
    // transport answers every request, so the schedule never forks.
    let inproc = run(7, TransportSpec::Inproc);
    let unix = run(7, TransportSpec::Unix);
    assert_eq!(inproc.trace, unix.trace);
}

#[test]
fn emitted_streams_round_trip_through_the_dashboard_reader() {
    let out = run(9, TransportSpec::Inproc);
    let trace = parse_stream("trace.jsonl", &out.trace).expect("trace stream validates");
    assert_eq!(trace.kind, StreamKind::SimTrace);
    let requests = parse_stream("requests.jsonl", &out.requests).expect("request stream validates");
    assert_eq!(requests.kind, StreamKind::SimRequests);
    let (human, rollup) = render(&[trace, requests]);
    assert!(human.contains("-- simulator --"), "{human}");
    let sim = rollup.get("sim").expect("sim section present");
    let n = sim
        .get("requests")
        .and_then(serde_json::Value::as_u64)
        .expect("request count");
    assert!(n > 0);
}
