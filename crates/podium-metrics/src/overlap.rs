//! Pairwise property-overlap statistics of a selected subset.
//!
//! §8.4 explains the behavioral gap between Podium and the distance-based
//! S-Model through this quantity: "the main difference between the
//! distance-based approach and ours is the pairwise intersection in user
//! properties — e.g., 2 versus tens on average that we get for the Yelp
//! dataset. Consequently, when there are a few prevalent categories that
//! are shared by many users, the distance-based approach tends to seek the
//! few users that do not have these categories, which comes at the expense
//! of coverage."

use podium_core::ids::UserId;
use podium_core::profile::UserRepository;

/// Overlap statistics over all pairs of a subset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapStats {
    /// Mean pairwise property-set intersection size.
    pub mean_intersection: f64,
    /// Smallest pairwise intersection.
    pub min_intersection: usize,
    /// Largest pairwise intersection.
    pub max_intersection: usize,
    /// Mean pairwise Jaccard distance (1 − |∩|/|∪|).
    pub mean_jaccard_distance: f64,
    /// Number of pairs measured.
    pub pairs: usize,
}

/// Computes pairwise overlap statistics of `subset`'s profiles. Subsets
/// with fewer than two users yield zeroed statistics.
pub fn overlap_stats(repo: &UserRepository, subset: &[UserId]) -> OverlapStats {
    let mut pairs = 0usize;
    let mut sum_inter = 0usize;
    let mut min_inter = usize::MAX;
    let mut max_inter = 0usize;
    let mut sum_jaccard = 0.0f64;
    for i in 0..subset.len() {
        let pi = repo.profile(subset[i]).expect("valid user");
        for &uj in &subset[(i + 1)..] {
            let pj = repo.profile(uj).expect("valid user");
            let jd = pi.jaccard_distance(pj);
            // Recover |∩| from the Jaccard distance and set sizes:
            // jd = 1 − inter/union, union = |a| + |b| − inter.
            let a = pi.len() as f64;
            let b = pj.len() as f64;
            let inter = if a + b == 0.0 {
                0.0
            } else {
                (1.0 - jd) * (a + b) / (2.0 - jd)
            };
            let inter = inter.round() as usize;
            pairs += 1;
            sum_inter += inter;
            min_inter = min_inter.min(inter);
            max_inter = max_inter.max(inter);
            sum_jaccard += jd;
        }
    }
    if pairs == 0 {
        return OverlapStats {
            mean_intersection: 0.0,
            min_intersection: 0,
            max_intersection: 0,
            mean_jaccard_distance: 0.0,
            pairs: 0,
        };
    }
    OverlapStats {
        mean_intersection: sum_inter as f64 / pairs as f64,
        min_intersection: min_inter,
        max_intersection: max_inter,
        mean_jaccard_distance: sum_jaccard / pairs as f64,
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use podium_core::ids::PropertyId;

    fn repo() -> UserRepository {
        let mut r = UserRepository::new();
        let users: Vec<UserId> = (0..3).map(|i| r.add_user(format!("u{i}"))).collect();
        let ps: Vec<PropertyId> = (0..4).map(|i| r.intern_property(format!("p{i}"))).collect();
        // u0: {p0, p1, p2}; u1: {p1, p2, p3}; u2: {p3}
        for &p in &ps[0..3] {
            r.set_score(users[0], p, 0.5).unwrap();
        }
        for &p in &ps[1..4] {
            r.set_score(users[1], p, 0.5).unwrap();
        }
        r.set_score(users[2], ps[3], 0.5).unwrap();
        r
    }

    #[test]
    fn exact_intersections() {
        let r = repo();
        let s = overlap_stats(&r, &[UserId(0), UserId(1)]);
        assert_eq!(s.pairs, 1);
        assert_eq!(s.mean_intersection, 2.0, "p1, p2 shared");
        assert_eq!((s.min_intersection, s.max_intersection), (2, 2));
        assert!((s.mean_jaccard_distance - 0.5).abs() < 1e-9, "2 of 4 union");
    }

    #[test]
    fn all_pairs_counted() {
        let r = repo();
        let all: Vec<UserId> = (0..3).map(UserId::from_index).collect();
        let s = overlap_stats(&r, &all);
        assert_eq!(s.pairs, 3);
        // intersections: (0,1)=2, (0,2)=0, (1,2)=1 -> mean 1.
        assert!((s.mean_intersection - 1.0).abs() < 1e-9);
        assert_eq!(s.min_intersection, 0);
        assert_eq!(s.max_intersection, 2);
    }

    #[test]
    fn degenerate_subsets() {
        let r = repo();
        assert_eq!(overlap_stats(&r, &[]).pairs, 0);
        assert_eq!(overlap_stats(&r, &[UserId(0)]).pairs, 0);
    }

    #[test]
    fn disjoint_profiles_have_max_distance() {
        let r = repo();
        let s = overlap_stats(&r, &[UserId(0), UserId(2)]);
        assert_eq!(s.mean_intersection, 0.0);
        assert!((s.mean_jaccard_distance - 1.0).abs() < 1e-9);
    }
}
