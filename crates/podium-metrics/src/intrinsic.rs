//! Intrinsic diversity metrics (§8.2): how well the selected subset
//! represents the source population, judged from profiles alone.

use podium_core::group::{GroupSet, SimpleGroup};
use podium_core::ids::{GroupId, UserId};
use podium_core::instance::DiversificationInstance;
use podium_core::score::ScoreValue;

use crate::cdsim::cd_sim;

/// The intrinsic metric bundle reported in Figures 3a/3c.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntrinsicMetrics {
    /// Selection total score (Definition 3.3) under the evaluation instance.
    pub total_score: f64,
    /// Fraction of the `k` largest groups with a selected representative
    /// (the paper uses k = 200).
    pub top_k_coverage: f64,
    /// Fraction of large *intersections* of simple groups covered.
    pub intersected_coverage: f64,
    /// Group-bucket distribution similarity (top-20 CD-sim average).
    pub distribution_similarity: f64,
}

impl IntrinsicMetrics {
    /// Evaluates all four metrics for one selection.
    pub fn evaluate<W: ScoreValue>(
        inst: &DiversificationInstance<'_, W>,
        selection: &[UserId],
        top_k: usize,
    ) -> Self {
        let groups = inst.groups();
        Self {
            total_score: inst.score_of(selection).as_f64(),
            top_k_coverage: top_k_coverage(groups, selection, top_k),
            intersected_coverage: intersected_coverage(groups, selection, top_k),
            distribution_similarity: distribution_similarity(groups, selection, 20),
        }
    }
}

fn selected_mask(groups: &GroupSet, selection: &[UserId]) -> Vec<bool> {
    let mut mask = vec![false; groups.user_count()];
    for &u in selection {
        if u.index() < mask.len() {
            mask[u.index()] = true;
        }
    }
    mask
}

fn covered(group: &SimpleGroup, mask: &[bool]) -> bool {
    group.members.iter().any(|&u| mask[u.index()])
}

fn selected_count(group: &SimpleGroup, mask: &[bool]) -> usize {
    group.members.iter().filter(|&&u| mask[u.index()]).count()
}

/// Group ids sorted by decreasing size (ties by id for determinism).
fn groups_by_size(groups: &GroupSet) -> Vec<GroupId> {
    let mut ids: Vec<GroupId> = groups.ids().collect();
    ids.sort_by_key(|&g| {
        (
            std::cmp::Reverse(groups.group(g).map(|gr| gr.size()).unwrap_or(0)),
            g,
        )
    });
    ids
}

/// *Top-k groups coverage*: the fraction of the `k` largest groups that have
/// at least one selected representative.
pub fn top_k_coverage(groups: &GroupSet, selection: &[UserId], k: usize) -> f64 {
    if groups.is_empty() || k == 0 {
        return 0.0;
    }
    let mask = selected_mask(groups, selection);
    let ids = groups_by_size(groups);
    let k = k.min(ids.len());
    let covered_count = ids[..k]
        .iter()
        .filter(|&&g| covered(groups.group(g).expect("listed id"), &mask))
        .count();
    covered_count as f64 / k as f64
}

/// *Intersected-property coverage*: like top-k coverage, but over pairwise
/// intersections of simple groups that are at least as large as the k-th
/// largest simple group. Captures complex groups ("Tokyo residents who are
/// also Mexican food lovers") that no algorithm targets explicitly.
pub fn intersected_coverage(groups: &GroupSet, selection: &[UserId], k: usize) -> f64 {
    if groups.is_empty() || k == 0 {
        return 0.0;
    }
    let ids = groups_by_size(groups);
    let k_idx = k.min(ids.len()) - 1;
    let threshold = groups
        .group(ids[k_idx])
        .map(|g| g.size())
        .unwrap_or(1)
        .max(1);

    // Only groups of size >= threshold can intersect to >= threshold.
    let candidates: Vec<GroupId> = ids
        .iter()
        .copied()
        .take_while(|&g| groups.group(g).map(|gr| gr.size()).unwrap_or(0) >= threshold)
        .collect();
    let mask = selected_mask(groups, selection);
    let mut total = 0usize;
    let mut hit = 0usize;
    for i in 0..candidates.len() {
        let gi = groups.group(candidates[i]).expect("listed id");
        for gj_id in &candidates[(i + 1)..] {
            let gj = groups.group(*gj_id).expect("listed id");
            let inter = podium_core::group::intersect_sorted(&gi.members, &gj.members);
            if inter.len() < threshold {
                continue;
            }
            total += 1;
            if inter.iter().any(|&u| mask[u.index()]) {
                hit += 1;
            }
        }
    }
    if total == 0 {
        // No large intersections exist; vacuous full coverage.
        1.0
    } else {
        hit as f64 / total as f64
    }
}

/// *Group-bucket distribution similarity*: for each property underlying the
/// `top` largest groups, compare the population's bucket distribution with
/// the subset's via CD-sim (weights = group sizes, i.e. LBS), then average.
pub fn distribution_similarity(groups: &GroupSet, selection: &[UserId], top: usize) -> f64 {
    if groups.is_empty() || top == 0 {
        return 0.0;
    }
    let mask = selected_mask(groups, selection);
    // Properties of the `top` largest simple groups, deduplicated, in order.
    let mut properties: Vec<podium_core::ids::PropertyId> = Vec::new();
    for g in groups_by_size(groups).into_iter().take(top) {
        if let podium_core::group::GroupKind::Simple { property, .. } =
            &groups.group(g).expect("listed id").kind
        {
            if !properties.contains(property) {
                properties.push(*property);
            }
        }
    }
    if properties.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut counted = 0usize;
    for p in properties {
        let prop_groups = groups.groups_of_property(p);
        if prop_groups.is_empty() {
            continue;
        }
        let sizes: Vec<f64> = prop_groups
            .iter()
            .map(|&g| groups.group(g).expect("listed id").size() as f64)
            .collect();
        let sel_sizes: Vec<f64> = prop_groups
            .iter()
            .map(|&g| selected_count(groups.group(g).expect("listed id"), &mask) as f64)
            .collect();
        let pop_total: f64 = sizes.iter().sum();
        let sel_total: f64 = sel_sizes.iter().sum();
        if pop_total == 0.0 {
            continue;
        }
        let f_all: Vec<f64> = sizes.iter().map(|s| s / pop_total).collect();
        let f_sub: Vec<f64> = if sel_total == 0.0 {
            vec![0.0; sel_sizes.len()]
        } else {
            sel_sizes.iter().map(|s| s / sel_total).collect()
        };
        sum += cd_sim(&f_sub, &f_all);
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        sum / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use podium_core::bucket::BucketingConfig;
    use podium_core::weights::{CovScheme, WeightScheme};

    fn table2_groups() -> (podium_core::profile::UserRepository, GroupSet) {
        let repo = podium_data::table2::table2();
        let buckets = BucketingConfig::paper_default().bucketize(&repo);
        let groups = GroupSet::build(&repo, &buckets);
        (repo, groups)
    }

    #[test]
    fn top_k_coverage_on_table2() {
        let (_, groups) = table2_groups();
        // Alice+Eve cover: Tokyo, Paris, age?, avgMex high, visitMex high/med,
        // avgCheap low/med, visitCheap med/low. Largest 3 groups have sizes
        // 3,2,2,...; with k=3 check coverage of the top-3 by size.
        let alice_eve = vec![UserId(0), UserId(4)];
        let cov = top_k_coverage(&groups, &alice_eve, 3);
        assert!(cov > 0.6, "top-3 mostly covered: {cov}");
        let nobody: Vec<UserId> = vec![];
        assert_eq!(top_k_coverage(&groups, &nobody, 3), 0.0);
        let everyone: Vec<UserId> = (0..5).map(UserId::from_index).collect();
        assert_eq!(top_k_coverage(&groups, &everyone, 200), 1.0);
    }

    #[test]
    fn intersected_coverage_counts_complex_groups() {
        let (_, groups) = table2_groups();
        // Threshold = size of 16th largest group = 1 -> all non-empty
        // pairwise intersections count.
        let everyone: Vec<UserId> = (0..5).map(UserId::from_index).collect();
        assert_eq!(intersected_coverage(&groups, &everyone, 16), 1.0);
        let nobody: Vec<UserId> = vec![];
        assert_eq!(intersected_coverage(&groups, &nobody, 16), 0.0);
        // Alice alone covers exactly the intersections containing her.
        let alice = vec![UserId(0)];
        let c = intersected_coverage(&groups, &alice, 16);
        assert!(c > 0.0 && c < 1.0, "{c}");
    }

    #[test]
    fn intersected_coverage_vacuous_when_no_large_intersections() {
        // Two disjoint groups: no intersections at threshold 2.
        let groups = GroupSet::from_memberships(
            4,
            vec![vec![UserId(0), UserId(1)], vec![UserId(2), UserId(3)]],
        );
        assert_eq!(intersected_coverage(&groups, &[UserId(0)], 2), 1.0);
    }

    #[test]
    fn distribution_similarity_perfect_for_full_selection() {
        let (_, groups) = table2_groups();
        let everyone: Vec<UserId> = (0..5).map(UserId::from_index).collect();
        let d = distribution_similarity(&groups, &everyone, 20);
        assert!(
            (d - 1.0).abs() < 1e-12,
            "full selection matches exactly: {d}"
        );
    }

    #[test]
    fn distribution_similarity_penalizes_skew() {
        let (_, groups) = table2_groups();
        let balanced: Vec<UserId> = vec![UserId(0), UserId(4)]; // Alice, Eve
        let skewed: Vec<UserId> = vec![UserId(1)]; // Bob only (eccentric)
        let db = distribution_similarity(&groups, &balanced, 20);
        let ds = distribution_similarity(&groups, &skewed, 20);
        assert!(db > ds, "balanced {db} > skewed {ds}");
    }

    #[test]
    fn evaluate_bundle() {
        let (_, groups) = table2_groups();
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            2,
        );
        let sel = podium_core::greedy::greedy_select(&inst, 2);
        let m = IntrinsicMetrics::evaluate(&inst, &sel.users, 200);
        assert_eq!(m.total_score, 17.0);
        assert!(m.top_k_coverage > 0.0 && m.top_k_coverage <= 1.0);
        assert!(m.intersected_coverage > 0.0 && m.intersected_coverage <= 1.0);
        assert!(m.distribution_similarity > 0.0 && m.distribution_similarity <= 1.0);
    }

    #[test]
    fn empty_group_set_is_safe() {
        let groups = GroupSet::from_memberships(3, vec![]);
        assert_eq!(top_k_coverage(&groups, &[UserId(0)], 5), 0.0);
        assert_eq!(intersected_coverage(&groups, &[UserId(0)], 5), 0.0);
        assert_eq!(distribution_similarity(&groups, &[UserId(0)], 5), 0.0);
    }
}
