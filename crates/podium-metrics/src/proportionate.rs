//! Proportionate allocation (Definition 2.1) as a measurable quantity.
//!
//! A subset `U` is a proportionate allocation of groups `𝒢` when
//! `|g ∩ U| / |U| = |g| / |𝒰|` for every `g ∈ 𝒢`. §2 argues this is
//! generally *impossible* in high-dimensional repositories — there are too
//! many overlapping groups for any small subset to match all shares. These
//! helpers quantify how close a selection comes, which the tests use to
//! demonstrate that §2 claim empirically and which complements CD-sim
//! (which taxes only under-representation).

use podium_core::group::GroupSet;
use podium_core::ids::UserId;

/// Per-group allocation error: `| |g ∩ U|/|U| − |g|/|𝒰| |`, indexed by
/// group id. Empty selections give each group its full population share as
/// error.
pub fn allocation_errors(groups: &GroupSet, selection: &[UserId]) -> Vec<f64> {
    let n = groups.user_count().max(1) as f64;
    let mut selected = vec![false; groups.user_count()];
    let mut count = 0usize;
    for &u in selection {
        if u.index() < selected.len() && !std::mem::replace(&mut selected[u.index()], true) {
            count += 1;
        }
    }
    let b = count.max(1) as f64;
    groups
        .iter()
        .map(|(_, g)| {
            let in_sel = g.members.iter().filter(|&&u| selected[u.index()]).count() as f64;
            let subset_share = if count == 0 { 0.0 } else { in_sel / b };
            let pop_share = g.size() as f64 / n;
            (subset_share - pop_share).abs()
        })
        .collect()
}

/// Whether `selection` is an *exact* proportionate allocation of every
/// group (Definition 2.1) up to `tol`.
pub fn is_proportionate(groups: &GroupSet, selection: &[UserId], tol: f64) -> bool {
    allocation_errors(groups, selection)
        .into_iter()
        .all(|e| e <= tol)
}

/// Mean allocation error over all groups — a scalar "distance from
/// proportionate allocation".
pub fn mean_allocation_error(groups: &GroupSet, selection: &[UserId]) -> f64 {
    let errors = allocation_errors(groups, selection);
    if errors.is_empty() {
        0.0
    } else {
        errors.iter().sum::<f64>() / errors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_selection_is_proportionate() {
        let groups =
            GroupSet::from_memberships(4, vec![vec![UserId(0), UserId(1)], vec![UserId(2)]]);
        let everyone: Vec<UserId> = (0..4).map(UserId::from_index).collect();
        assert!(is_proportionate(&groups, &everyone, 1e-12));
        assert_eq!(mean_allocation_error(&groups, &everyone), 0.0);
    }

    #[test]
    fn exact_half_sample_of_disjoint_halves() {
        // Groups {0,1} and {2,3}; selecting one from each is proportionate.
        let groups = GroupSet::from_memberships(
            4,
            vec![vec![UserId(0), UserId(1)], vec![UserId(2), UserId(3)]],
        );
        assert!(is_proportionate(&groups, &[UserId(0), UserId(2)], 1e-12));
        // Both from one half: each group off by 1/2 - ... = |1 - 0.5| = 0.5.
        assert!(!is_proportionate(&groups, &[UserId(0), UserId(1)], 1e-12));
        assert!((mean_allocation_error(&groups, &[UserId(0), UserId(1)]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlapping_groups_make_proportionality_impossible() {
        // The §2 phenomenon in miniature: user 0 is in both groups, user 1
        // in one, user 2 in the other; |𝒰| = 3. Groups have sizes 2 and 2.
        // For |U| = 1 the shares 2/3 cannot be matched by 0-or-1 counts.
        let groups = GroupSet::from_memberships(
            3,
            vec![vec![UserId(0), UserId(1)], vec![UserId(0), UserId(2)]],
        );
        for u in 0..3 {
            assert!(!is_proportionate(&groups, &[UserId(u)], 1e-9), "u={u}");
        }
    }

    #[test]
    fn empty_selection_errors_equal_population_shares() {
        let groups = GroupSet::from_memberships(4, vec![vec![UserId(0), UserId(1)]]);
        let errs = allocation_errors(&groups, &[]);
        assert_eq!(errs, vec![0.5]);
    }

    #[test]
    fn duplicates_in_selection_ignored() {
        let groups = GroupSet::from_memberships(2, vec![vec![UserId(0)]]);
        let a = allocation_errors(&groups, &[UserId(0), UserId(0)]);
        let b = allocation_errors(&groups, &[UserId(0)]);
        assert_eq!(a, b);
    }
}
