//! Normalize-to-leader comparison tables — the presentation form of the
//! paper's Figure 3 ("all scores are normalized relative to the leading
//! algorithm's score; the value of the leading score is denoted on the
//! relevant bar").

/// A metric × algorithm comparison table.
#[derive(Debug, Clone, Default)]
pub struct ComparisonTable {
    algorithms: Vec<String>,
    metrics: Vec<String>,
    /// `values[m][a]` = raw value of metric `m` for algorithm `a`.
    values: Vec<Vec<f64>>,
}

impl ComparisonTable {
    /// Creates a table for the given algorithm names.
    pub fn new<S: Into<String>>(algorithms: impl IntoIterator<Item = S>) -> Self {
        Self {
            algorithms: algorithms.into_iter().map(Into::into).collect(),
            metrics: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Adds one metric row; `values` must align with the algorithm order.
    ///
    /// # Panics
    /// Panics if the value count differs from the algorithm count.
    pub fn add_metric(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.algorithms.len(),
            "one value per algorithm"
        );
        self.metrics.push(name.into());
        self.values.push(values);
    }

    /// Algorithm names.
    pub fn algorithms(&self) -> &[String] {
        &self.algorithms
    }

    /// Metric names.
    pub fn metrics(&self) -> &[String] {
        &self.metrics
    }

    /// The raw value of `(metric, algorithm)`.
    pub fn raw(&self, metric: usize, algorithm: usize) -> f64 {
        self.values[metric][algorithm]
    }

    /// Values of one metric normalized to the leader (leader = 1.0). An
    /// all-zero (or non-positive-leader) row normalizes to zeros.
    pub fn normalized(&self, metric: usize) -> Vec<f64> {
        let row = &self.values[metric];
        let leader = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if leader <= 0.0 {
            return vec![0.0; row.len()];
        }
        row.iter().map(|v| v / leader).collect()
    }

    /// Index of the leading algorithm for one metric (first maximum).
    pub fn leader(&self, metric: usize) -> usize {
        let row = &self.values[metric];
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Whether one algorithm leads (or ties the leader on) *every* metric —
    /// the headline claim of Figure 3 ("Podium outperforms its alternatives
    /// in every tested diversity metric").
    pub fn leads_everywhere(&self, algorithm: usize) -> bool {
        (0..self.metrics.len()).all(|m| {
            let row = &self.values[m];
            let leader = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            row[algorithm] >= leader - 1e-12
        })
    }

    /// Averages several tables cell-wise. All tables must share the same
    /// algorithms and metrics (used to average experiment repetitions over
    /// different dataset seeds).
    ///
    /// # Panics
    /// Panics on empty input or mismatched table shapes.
    pub fn average(tables: &[ComparisonTable]) -> ComparisonTable {
        let first = tables.first().expect("at least one table");
        let mut out = ComparisonTable::new(first.algorithms.iter().cloned());
        for m in 0..first.metrics.len() {
            let mut row = vec![0.0; first.algorithms.len()];
            for t in tables {
                assert_eq!(t.algorithms, first.algorithms, "same algorithms");
                assert_eq!(t.metrics, first.metrics, "same metrics");
                for (acc, v) in row.iter_mut().zip(&t.values[m]) {
                    *acc += v;
                }
            }
            for v in row.iter_mut() {
                *v /= tables.len() as f64;
            }
            out.add_metric(first.metrics[m].clone(), row);
        }
        out
    }

    /// Renders the table as aligned text: normalized values with the raw
    /// leader value per row, Figure-3 style.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let name_w = self
            .metrics
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(6)
            .max(6);
        let col_w = self
            .algorithms
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(8)
            .max(8);
        let _ = write!(out, "{:name_w$}", "metric");
        for a in &self.algorithms {
            let _ = write!(out, " | {a:>col_w$}");
        }
        let _ = writeln!(out, " | leader (raw)");
        let _ = write!(out, "{:-<name_w$}", "");
        for _ in &self.algorithms {
            let _ = write!(out, "-+-{:-<col_w$}", "");
        }
        let _ = writeln!(out, "-+-------------");
        for m in 0..self.metrics.len() {
            let norm = self.normalized(m);
            let _ = write!(out, "{:name_w$}", self.metrics[m]);
            for &v in &norm {
                let _ = write!(out, " | {v:>col_w$.3}");
            }
            let leader = self.leader(m);
            let _ = writeln!(
                out,
                " | {} ({:.4})",
                self.algorithms[leader], self.values[m][leader]
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ComparisonTable {
        let mut t = ComparisonTable::new(["Podium", "Random", "Clustering"]);
        t.add_metric("total score", vec![17.0, 10.0, 8.5]);
        t.add_metric("coverage", vec![0.9, 0.6, 0.3]);
        t
    }

    #[test]
    fn normalization_to_leader() {
        let t = table();
        let n = t.normalized(0);
        assert!((n[0] - 1.0).abs() < 1e-12);
        assert!((n[1] - 10.0 / 17.0).abs() < 1e-12);
        assert_eq!(t.leader(0), 0);
    }

    #[test]
    fn leads_everywhere() {
        let t = table();
        assert!(t.leads_everywhere(0));
        assert!(!t.leads_everywhere(1));
    }

    #[test]
    fn ties_count_as_leading() {
        let mut t = ComparisonTable::new(["A", "B"]);
        t.add_metric("m", vec![1.0, 1.0]);
        assert!(t.leads_everywhere(0));
        assert!(t.leads_everywhere(1));
    }

    #[test]
    fn render_contains_values() {
        let t = table();
        let s = t.render();
        assert!(s.contains("Podium"));
        assert!(s.contains("total score"));
        assert!(s.contains("17.0000"));
        assert!(s.contains("1.000"));
    }

    #[test]
    fn zero_rows_normalize_to_zero() {
        let mut t = ComparisonTable::new(["A", "B"]);
        t.add_metric("m", vec![0.0, 0.0]);
        assert_eq!(t.normalized(0), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "one value per algorithm")]
    fn mismatched_row_panics() {
        let mut t = ComparisonTable::new(["A", "B"]);
        t.add_metric("m", vec![1.0]);
    }

    #[test]
    fn average_is_cellwise_mean() {
        let mut a = ComparisonTable::new(["A", "B"]);
        a.add_metric("m", vec![1.0, 3.0]);
        let mut b = ComparisonTable::new(["A", "B"]);
        b.add_metric("m", vec![3.0, 5.0]);
        let avg = ComparisonTable::average(&[a, b]);
        assert_eq!(avg.raw(0, 0), 2.0);
        assert_eq!(avg.raw(0, 1), 4.0);
    }

    #[test]
    #[should_panic(expected = "same metrics")]
    fn average_rejects_mismatched_metrics() {
        let mut a = ComparisonTable::new(["A"]);
        a.add_metric("m", vec![1.0]);
        let mut b = ComparisonTable::new(["A"]);
        b.add_metric("other", vec![1.0]);
        ComparisonTable::average(&[a, b]);
    }
}
