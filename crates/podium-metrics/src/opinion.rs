//! Diverse opinion metrics (§8.2): the diversity of the *procured opinions*
//! themselves, computed from held-out ground-truth reviews.
//!
//! All metrics are defined per destination; the experiment harness selects a
//! user subset per destination (from its reviewer population, using
//! held-out-free profiles) and averages over destinations.

use podium_core::ids::UserId;
use podium_data::reviews::{Review, ReviewCorpus, Sentiment};

use crate::cdsim::cd_sim;

/// The opinion metric bundle reported in Figures 3b/3d.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpinionMetrics {
    /// Topic+Sentiment coverage: 1.0 means every prevalent topic of the
    /// destination appears in both a positive and a negative selected
    /// review.
    pub topic_sentiment_coverage: f64,
    /// Sum of "useful" votes of the selected reviews (Yelp only).
    pub usefulness: f64,
    /// CD-sim between the selected subset's rating distribution and the full
    /// reviewer population's (over ratings 1..=5).
    pub rating_distribution_similarity: f64,
    /// Variance of the selected subset's ratings.
    pub rating_variance: f64,
}

impl OpinionMetrics {
    /// Averages a list of per-destination metric bundles.
    pub fn mean(metrics: &[OpinionMetrics]) -> OpinionMetrics {
        if metrics.is_empty() {
            return OpinionMetrics::default();
        }
        let n = metrics.len() as f64;
        OpinionMetrics {
            topic_sentiment_coverage: metrics
                .iter()
                .map(|m| m.topic_sentiment_coverage)
                .sum::<f64>()
                / n,
            usefulness: metrics.iter().map(|m| m.usefulness).sum::<f64>() / n,
            rating_distribution_similarity: metrics
                .iter()
                .map(|m| m.rating_distribution_similarity)
                .sum::<f64>()
                / n,
            rating_variance: metrics.iter().map(|m| m.rating_variance).sum::<f64>() / n,
        }
    }
}

/// *Topic+Sentiment coverage* of a set of selected reviews against the
/// destination's prevalent topic list: each topic contributes one point for
/// appearing in a positive mention and one for a negative mention.
pub fn topic_sentiment_coverage(
    selected_reviews: &[&Review],
    destination_topics: &[podium_data::reviews::TopicId],
) -> f64 {
    if destination_topics.is_empty() {
        return 0.0;
    }
    let mut points = 0usize;
    for &t in destination_topics {
        let mut pos = false;
        let mut neg = false;
        for r in selected_reviews {
            for &(rt, s) in &r.topics {
                if rt == t {
                    match s {
                        Sentiment::Positive => pos = true,
                        Sentiment::Negative => neg = true,
                    }
                }
            }
        }
        points += usize::from(pos) + usize::from(neg);
    }
    points as f64 / (2 * destination_topics.len()) as f64
}

/// *Usefulness*: total "useful" votes over the selected reviews ("computed
/// by summing over individual reviews usefulness levels").
pub fn usefulness(selected_reviews: &[&Review]) -> f64 {
    selected_reviews
        .iter()
        .map(|r| f64::from(r.useful_votes))
        .sum()
}

/// Histogram of ratings `1..=5` over reviews.
pub fn rating_histogram<'a>(reviews: impl Iterator<Item = &'a Review>) -> [usize; 5] {
    let mut h = [0usize; 5];
    for r in reviews {
        let idx = (r.rating.clamp(1, 5) - 1) as usize;
        h[idx] += 1;
    }
    h
}

/// *Rating distribution similarity*: CD-sim between the selected reviews'
/// rating distribution and the full population's, over `B = {1..5}`.
pub fn rating_distribution_similarity(
    selected_reviews: &[&Review],
    all_reviews: &[&Review],
) -> f64 {
    let sel = rating_histogram(selected_reviews.iter().copied());
    let all = rating_histogram(all_reviews.iter().copied());
    let sel_f = crate::cdsim::frequencies(&sel);
    let all_f = crate::cdsim::frequencies(&all);
    cd_sim(&sel_f, &all_f)
}

/// *Rating variance* of the selected reviews (population variance; 0 for
/// fewer than two reviews).
pub fn rating_variance(selected_reviews: &[&Review]) -> f64 {
    if selected_reviews.len() < 2 {
        return 0.0;
    }
    let n = selected_reviews.len() as f64;
    let mean = selected_reviews
        .iter()
        .map(|r| f64::from(r.rating))
        .sum::<f64>()
        / n;
    selected_reviews
        .iter()
        .map(|r| {
            let d = f64::from(r.rating) - mean;
            d * d
        })
        .sum::<f64>()
        / n
}

/// Evaluates all opinion metrics for one destination: `selection` is the
/// procured user subset; their reviews of `destination` are the simulated
/// procured opinions.
pub fn evaluate_destination(
    corpus: &ReviewCorpus,
    destination: podium_data::reviews::DestinationId,
    selection: &[UserId],
) -> OpinionMetrics {
    let all: Vec<&Review> = corpus.reviews_of(destination).collect();
    let sel: Vec<&Review> = all
        .iter()
        .copied()
        .filter(|r| selection.contains(&r.user))
        .collect();
    let topics = &corpus.destinations[destination.index()].topics;
    OpinionMetrics {
        topic_sentiment_coverage: topic_sentiment_coverage(&sel, topics),
        usefulness: usefulness(&sel),
        rating_distribution_similarity: rating_distribution_similarity(&sel, &all),
        rating_variance: rating_variance(&sel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use podium_data::reviews::{Destination, DestinationId, TopicId};
    use podium_data::taxonomy::CategoryId;

    fn review(user: u32, rating: u8, topics: Vec<(TopicId, Sentiment)>, votes: u32) -> Review {
        Review {
            user: UserId(user),
            destination: DestinationId(0),
            rating,
            topics,
            useful_votes: votes,
        }
    }

    fn corpus() -> ReviewCorpus {
        ReviewCorpus {
            destinations: vec![Destination {
                name: "d0".into(),
                category: CategoryId(0),
                city: 0,
                topics: vec![TopicId(0), TopicId(1)],
                base_quality: 3.5,
            }],
            reviews: vec![
                review(0, 5, vec![(TopicId(0), Sentiment::Positive)], 2),
                review(1, 1, vec![(TopicId(0), Sentiment::Negative)], 1),
                review(2, 3, vec![(TopicId(1), Sentiment::Positive)], 0),
                review(3, 4, vec![], 5),
            ],
            topic_names: vec!["food".into(), "service".into()],
        }
    }

    #[test]
    fn topic_sentiment_coverage_definition() {
        let c = corpus();
        let all: Vec<&Review> = c.reviews.iter().collect();
        // topic0: pos+neg; topic1: pos only -> 3 of 4 points.
        assert!((topic_sentiment_coverage(&all, &c.destinations[0].topics) - 0.75).abs() < 1e-12);
        let none: Vec<&Review> = vec![];
        assert_eq!(
            topic_sentiment_coverage(&none, &c.destinations[0].topics),
            0.0
        );
        assert_eq!(topic_sentiment_coverage(&all, &[]), 0.0);
    }

    #[test]
    fn usefulness_sums_votes() {
        let c = corpus();
        let all: Vec<&Review> = c.reviews.iter().collect();
        assert_eq!(usefulness(&all), 8.0);
    }

    #[test]
    fn rating_variance_basics() {
        let c = corpus();
        let all: Vec<&Review> = c.reviews.iter().collect();
        // ratings 5,1,3,4: mean 3.25, var = (3.0625+5.0625+0.0625+0.5625)/4
        assert!((rating_variance(&all) - 2.1875).abs() < 1e-12);
        assert_eq!(rating_variance(&all[..1]), 0.0);
    }

    #[test]
    fn rating_distribution_similarity_full_selection_is_one() {
        let c = corpus();
        let all: Vec<&Review> = c.reviews.iter().collect();
        assert!((rating_distribution_similarity(&all, &all) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_destination_filters_by_selection() {
        let c = corpus();
        let m = evaluate_destination(&c, DestinationId(0), &[UserId(0), UserId(1)]);
        // Selected reviews: ratings 5 and 1 — topic0 covered both ways.
        assert!((m.topic_sentiment_coverage - 0.5).abs() < 1e-12);
        assert_eq!(m.usefulness, 3.0);
        assert!((m.rating_variance - 4.0).abs() < 1e-12);
        assert!(m.rating_distribution_similarity > 0.0);
        // Nobody selected: all metrics zero except distribution (total miss).
        let z = evaluate_destination(&c, DestinationId(0), &[]);
        assert_eq!(z.topic_sentiment_coverage, 0.0);
        assert_eq!(z.usefulness, 0.0);
        assert_eq!(z.rating_variance, 0.0);
    }

    #[test]
    fn mean_aggregation() {
        let a = OpinionMetrics {
            topic_sentiment_coverage: 0.5,
            usefulness: 2.0,
            rating_distribution_similarity: 0.8,
            rating_variance: 1.0,
        };
        let b = OpinionMetrics {
            topic_sentiment_coverage: 1.0,
            usefulness: 4.0,
            rating_distribution_similarity: 0.6,
            rating_variance: 3.0,
        };
        let m = OpinionMetrics::mean(&[a, b]);
        assert!((m.topic_sentiment_coverage - 0.75).abs() < 1e-12);
        assert!((m.usefulness - 3.0).abs() < 1e-12);
        assert!((m.rating_distribution_similarity - 0.7).abs() < 1e-12);
        assert!((m.rating_variance - 2.0).abs() < 1e-12);
        assert_eq!(OpinionMetrics::mean(&[]), OpinionMetrics::default());
    }

    #[test]
    fn rating_histogram_clamps() {
        let r = review(0, 5, vec![], 0);
        let h = rating_histogram([&r].into_iter());
        assert_eq!(h, [0, 0, 0, 0, 1]);
    }
}
