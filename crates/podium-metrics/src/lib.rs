//! # podium-metrics
//!
//! The evaluation metric suite of the paper's experimental study (§8.2):
//!
//! * [`cdsim`] — the coverage-oriented distribution similarity of
//!   Definition 8.1, which penalizes only *under*-representation;
//! * [`intrinsic`] — metrics over the selected users' profiles: total
//!   selection score, top-k group coverage, intersected-property coverage,
//!   and group-bucket distribution similarity;
//! * [`opinion`] — metrics over procured opinions: topic+sentiment
//!   coverage, usefulness, rating-distribution similarity, rating variance;
//! * [`overlap`] — pairwise property-overlap statistics of a subset (the
//!   §8.4 "2 versus tens" diagnostic);
//! * [`proportionate`] — deviation from exact proportionate allocation
//!   (Definition 2.1), quantifying §2's impossibility argument;
//! * [`significance`] — paired bootstrap confidence intervals for
//!   algorithm comparisons;
//! * [`report`] — normalize-to-leader comparison tables (the presentation
//!   form of Figure 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdsim;
pub mod intrinsic;
pub mod opinion;
pub mod overlap;
pub mod proportionate;
pub mod report;
pub mod significance;

/// Commonly used items.
pub mod prelude {
    pub use crate::cdsim::cd_sim;
    pub use crate::intrinsic::{
        distribution_similarity, intersected_coverage, top_k_coverage, IntrinsicMetrics,
    };
    pub use crate::opinion::{evaluate_destination, OpinionMetrics};
    pub use crate::overlap::{overlap_stats, OverlapStats};
    pub use crate::proportionate::{is_proportionate, mean_allocation_error};
    pub use crate::report::ComparisonTable;
    pub use crate::significance::{paired_bootstrap, BootstrapResult};
}
