//! Coverage-oriented distribution similarity — CD-sim (Definition 8.1).
//!
//! Standard goodness-of-fit metrics are inadequate for coverage-based
//! selection because small groups *must* be over-represented to be covered
//! at all. CD-sim therefore taxes only under-representation:
//!
//! ```text
//! cd-sim(f_subset, f_all) = 1 − (1/k) · Σ_{f_subset(b) < f_all(b)}
//!                               (f_all(b) − f_subset(b)) / f_all(b)
//! ```
//!
//! Normalizing each term by `f_all(b)` makes missing users of *large*
//! groups cheaper per capita, "since the relative tax each missing user
//! incurs is smaller".

//! ```
//! use podium_metrics::cdsim::cd_sim;
//!
//! // Example 8.2 of the paper: penalty only for under-representation.
//! let score = cd_sim(&[0.4, 0.5, 0.1], &[0.23, 0.4, 0.37]);
//! assert!((score - 0.7568).abs() < 1e-3);
//! ```

/// Computes CD-sim between a subset distribution and a population
/// distribution over the same discrete domain.
///
/// Both slices must have the same length `k > 0`. Values are typically
/// relative frequencies but any non-negative functions work. Domain values
/// with `f_all(b) = 0` cannot be under-represented and contribute nothing.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn cd_sim(f_subset: &[f64], f_all: &[f64]) -> f64 {
    assert_eq!(f_subset.len(), f_all.len(), "domains must match");
    assert!(!f_all.is_empty(), "domain must be non-empty");
    let k = f_all.len() as f64;
    let penalty: f64 = f_subset
        .iter()
        .zip(f_all)
        .filter(|&(&s, &a)| a > 0.0 && s < a)
        .map(|(&s, &a)| (a - s) / a)
        .sum();
    1.0 - penalty / k
}

/// Converts raw counts into relative frequencies; an all-zero histogram maps
/// to all-zero frequencies.
pub fn frequencies(counts: &[usize]) -> Vec<f64> {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_82_from_the_paper() {
        // Population [0.23, 0.4, 0.37], subset [0.4, 0.5, 0.1] -> 0.76
        // (penalty solely for the third bucket's under-representation).
        let score = cd_sim(&[0.4, 0.5, 0.1], &[0.23, 0.4, 0.37]);
        let expected = 1.0 - (0.37 - 0.1) / 0.37 / 3.0;
        assert!((score - expected).abs() < 1e-12);
        assert!((score - 0.7568).abs() < 1e-3, "≈0.76 as printed in Ex. 8.2");
    }

    #[test]
    fn identical_distributions_score_one() {
        let f = [0.2, 0.5, 0.3];
        assert!((cd_sim(&f, &f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn over_representation_not_penalized() {
        // Subset over-represents bucket 0, matches bucket 1, empty bucket 2
        // had no population mass: no penalty anywhere.
        let score = cd_sim(&[0.8, 0.2, 0.0], &[0.5, 0.2, 0.0]);
        assert!(
            (score - 1.0).abs() < 1e-12,
            "only under-representation taxes: {score}"
        );
    }

    #[test]
    fn total_miss_scores_zero() {
        let score = cd_sim(&[0.0, 0.0], &[0.5, 0.5]);
        assert!((score - 0.0).abs() < 1e-12);
    }

    #[test]
    fn larger_groups_taxed_relatively_less() {
        // Missing 0.1 mass from a large group (0.8) hurts less than missing
        // 0.1 from a small group (0.15).
        let large_miss = cd_sim(&[0.7, 0.3], &[0.8, 0.2]);
        let small_miss = cd_sim(&[0.9, 0.05], &[0.85, 0.15]);
        assert!(large_miss > small_miss);
    }

    #[test]
    fn frequencies_helper() {
        assert_eq!(frequencies(&[1, 3]), vec![0.25, 0.75]);
        assert_eq!(frequencies(&[0, 0]), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "domains must match")]
    fn mismatched_domains_panic() {
        cd_sim(&[0.5], &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        cd_sim(&[], &[]);
    }

    #[test]
    fn bounded_in_unit_interval_for_frequency_inputs() {
        for trial in 0..50 {
            // pseudo-random frequency vectors
            let mut a = [0.0; 4];
            let mut b = [0.0; 4];
            let mut x = trial as u64 * 2654435761 + 1;
            let mut next = move || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) % 1000) as f64
            };
            for i in 0..4 {
                a[i] = next();
                b[i] = next();
            }
            let an: f64 = a.iter().sum();
            let bn: f64 = b.iter().sum();
            let a: Vec<f64> = a.iter().map(|v| v / an.max(1.0)).collect();
            let b: Vec<f64> = b.iter().map(|v| v / bn.max(1.0)).collect();
            let s = cd_sim(&a, &b);
            assert!((0.0..=1.0).contains(&s), "{s}");
        }
    }
}
