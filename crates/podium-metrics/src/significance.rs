//! Paired bootstrap significance testing for algorithm comparisons.
//!
//! Figure-3-style comparisons average a metric over many destinations (or
//! dataset seeds). Whether "Podium beats Random by 4%" is signal or noise
//! depends on the paired per-destination differences; this module provides
//! a deterministic paired bootstrap over those differences: confidence
//! intervals for the mean difference and the achieved significance level
//! for `mean(a − b) > 0`.

//! ```
//! use podium_metrics::significance::paired_bootstrap;
//!
//! let podium = [0.9, 0.8, 0.85, 0.9, 0.8, 0.95, 0.9, 0.85];
//! let random = [0.6, 0.7, 0.65, 0.6, 0.7, 0.55, 0.6, 0.65];
//! let r = paired_bootstrap(&podium, &random, 0.95, 1000, 42);
//! assert!(r.significant());
//! assert!(r.mean_diff > 0.2);
//! ```

/// Result of a paired bootstrap comparison of `a` vs `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapResult {
    /// Observed mean difference `mean(a − b)`.
    pub mean_diff: f64,
    /// Lower bound of the central confidence interval.
    pub ci_low: f64,
    /// Upper bound of the central confidence interval.
    pub ci_high: f64,
    /// Fraction of bootstrap resamples with mean difference ≤ 0 — a
    /// one-sided achieved significance level for "a > b".
    pub p_one_sided: f64,
    /// Number of resamples drawn.
    pub resamples: usize,
}

impl BootstrapResult {
    /// Whether the confidence interval excludes zero (a significant
    /// difference at the chosen level, in either direction).
    pub fn significant(&self) -> bool {
        self.ci_low > 0.0 || self.ci_high < 0.0
    }
}

/// Runs a paired bootstrap on per-item metric values of two algorithms.
///
/// `confidence` is the central-interval mass (e.g. `0.95`); `resamples`
/// bootstrap replicas are drawn with a deterministic splitmix64 stream
/// seeded by `seed`.
///
/// # Panics
/// Panics if the slices differ in length, are empty, or `confidence` is
/// outside `(0, 1)`.
pub fn paired_bootstrap(
    a: &[f64],
    b: &[f64],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> BootstrapResult {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    assert!(!a.is_empty(), "need at least one pair");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let n = a.len();
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean_diff = diffs.iter().sum::<f64>() / n as f64;

    let mut state = seed ^ 0x1234_5678_9ABC_DEF0;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let resamples = resamples.max(1);
    let mut means = Vec::with_capacity(resamples);
    let mut non_positive = 0usize;
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += diffs[(next() as usize) % n];
        }
        let m = sum / n as f64;
        if m <= 0.0 {
            non_positive += 1;
        }
        means.push(m);
    }
    means.sort_by(f64::total_cmp);
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((resamples as f64) * alpha).floor() as usize;
    let hi_idx = (((resamples as f64) * (1.0 - alpha)).ceil() as usize)
        .saturating_sub(1)
        .min(resamples - 1);
    BootstrapResult {
        mean_diff,
        ci_low: means[lo_idx],
        ci_high: means[hi_idx],
        p_one_sided: non_positive as f64 / resamples as f64,
        resamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_difference_is_significant() {
        let a: Vec<f64> = (0..50).map(|i| 0.8 + (i % 5) as f64 * 0.01).collect();
        let b: Vec<f64> = (0..50).map(|i| 0.5 + (i % 7) as f64 * 0.01).collect();
        let r = paired_bootstrap(&a, &b, 0.95, 2000, 1);
        assert!(r.mean_diff > 0.25);
        assert!(r.significant(), "{r:?}");
        assert!(r.p_one_sided < 0.01);
        assert!(r.ci_low <= r.mean_diff && r.mean_diff <= r.ci_high);
    }

    #[test]
    fn identical_samples_are_not_significant() {
        let a = vec![0.5; 30];
        let r = paired_bootstrap(&a, &a, 0.95, 500, 2);
        assert_eq!(r.mean_diff, 0.0);
        assert!(!r.significant());
        assert_eq!((r.ci_low, r.ci_high), (0.0, 0.0));
    }

    #[test]
    fn noisy_tie_is_not_significant() {
        // Alternating ±0.1 differences: mean 0, high variance.
        let a: Vec<f64> = (0..40)
            .map(|i| 0.5 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let b = vec![0.5; 40];
        let r = paired_bootstrap(&a, &b, 0.95, 2000, 3);
        assert!(!r.significant(), "{r:?}");
        assert!(r.p_one_sided > 0.1 && r.p_one_sided < 0.9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        let b: Vec<f64> = (0..20).map(|i| (i as f64 / 20.0) * 0.9).collect();
        let r1 = paired_bootstrap(&a, &b, 0.9, 300, 7);
        let r2 = paired_bootstrap(&a, &b, 0.9, 300, 7);
        assert_eq!(r1, r2);
    }

    #[test]
    fn wider_confidence_gives_wider_interval() {
        let a: Vec<f64> = (0..30).map(|i| 0.5 + (i % 9) as f64 * 0.02).collect();
        let b: Vec<f64> = (0..30).map(|i| 0.45 + (i % 4) as f64 * 0.03).collect();
        let narrow = paired_bootstrap(&a, &b, 0.5, 2000, 4);
        let wide = paired_bootstrap(&a, &b, 0.99, 2000, 4);
        assert!(wide.ci_high - wide.ci_low >= narrow.ci_high - narrow.ci_low);
    }

    #[test]
    #[should_panic(expected = "paired samples must align")]
    fn mismatched_lengths_panic() {
        paired_bootstrap(&[1.0], &[1.0, 2.0], 0.95, 10, 0);
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0, 1)")]
    fn bad_confidence_panics() {
        paired_bootstrap(&[1.0], &[1.0], 1.5, 10, 0);
    }
}
