//! Regression net for the paper's headline experimental claims, asserted on
//! small fixed-seed datasets so the suite stays fast. If one of these goes
//! red, a change has altered an experimentally relevant behavior — compare
//! with EXPERIMENTS.md before accepting it.

use podium::baselines::prelude::*;
use podium::core::greedy::greedy_select;
use podium::metrics::intrinsic::IntrinsicMetrics;
use podium::metrics::opinion::evaluate_destination;
use podium::metrics::opinion::OpinionMetrics;
use podium::prelude::*;

fn select_with(
    selector: &dyn Selector,
    repo: &podium::core::profile::UserRepository,
    b: usize,
) -> Vec<UserId> {
    selector.select(repo, b)
}

/// §8.4: "Podium outperforms its alternatives in every tested diversity
/// metric" — asserted for total score and the two coverage metrics, which
/// are stable at this scale (distribution similarity is a near-tie and is
/// checked with a tolerance).
#[test]
fn podium_leads_intrinsic_metrics() {
    let dataset = podium::data::synth::tripadvisor(0.04, 2020).generate();
    let repo = &dataset.repo;
    let buckets = BucketingConfig::adaptive_default().bucketize(repo);
    let groups = GroupSet::build(repo, &buckets);
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        8,
    );

    let podium = greedy_select(&inst, 8).users;
    let pm = IntrinsicMetrics::evaluate(&inst, &podium, 100);

    let baselines: Vec<Box<dyn Selector>> = vec![
        Box::new(RandomSelector::new(2020)),
        Box::new(KMeansSelector::new(2020)),
        Box::new(DistanceSelector::new(2020)),
    ];
    for b in &baselines {
        let sel = select_with(b.as_ref(), repo, 8);
        let m = IntrinsicMetrics::evaluate(&inst, &sel, 100);
        assert!(
            pm.total_score >= m.total_score,
            "{}: total score {} > podium {}",
            b.name(),
            m.total_score,
            pm.total_score
        );
        assert!(
            pm.top_k_coverage >= m.top_k_coverage - 1e-9,
            "{}: top-k {} > podium {}",
            b.name(),
            m.top_k_coverage,
            pm.top_k_coverage
        );
        assert!(
            pm.intersected_coverage >= m.intersected_coverage - 1e-9,
            "{}: intersected {} > podium {}",
            b.name(),
            m.intersected_coverage,
            pm.intersected_coverage
        );
        assert!(
            pm.distribution_similarity >= m.distribution_similarity - 0.05,
            "{}: dist-sim {} far above podium {}",
            b.name(),
            m.distribution_similarity,
            pm.distribution_similarity
        );
    }
}

/// §8.4: diverse users provide diverse opinions — Podium's procured
/// opinions must beat Random's on topic+sentiment coverage (averaged over
/// held-out destinations).
#[test]
fn diverse_profiles_give_diverse_opinions() {
    let dataset = podium::data::synth::yelp(0.006, 2020).generate();
    let split = holdout_split(&dataset, 12, 6);
    assert!(
        split.eval_destinations.len() >= 8,
        "enough eval destinations"
    );

    let run = |selector: &dyn Selector| -> OpinionMetrics {
        let per_dest: Vec<OpinionMetrics> = split
            .eval_destinations
            .iter()
            .map(|&d| {
                let mut reviewers: Vec<UserId> =
                    dataset.corpus.reviews_of(d).map(|r| r.user).collect();
                reviewers.sort();
                reviewers.dedup();
                let pool = split.selection_repo.restrict(&reviewers);
                let local = selector.select(&pool, 8);
                let global: Vec<UserId> = local.iter().map(|u| reviewers[u.index()]).collect();
                evaluate_destination(&dataset.corpus, d, &global)
            })
            .collect();
        OpinionMetrics::mean(&per_dest)
    };

    let podium = run(&podium_bench_free_podium());
    let random = run(&RandomSelector::new(2020));
    assert!(
        podium.topic_sentiment_coverage >= random.topic_sentiment_coverage - 1e-9,
        "podium {} vs random {}",
        podium.topic_sentiment_coverage,
        random.topic_sentiment_coverage
    );
    assert!(podium.rating_distribution_similarity > 0.0);
}

/// A Podium selector built from the facade only (the bench crate's
/// `PodiumSelector` is intentionally not a dependency of these tests).
fn podium_bench_free_podium() -> impl Selector {
    struct P;
    impl Selector for P {
        fn name(&self) -> &str {
            "Podium"
        }
        fn select(&self, repo: &podium::core::profile::UserRepository, b: usize) -> Vec<UserId> {
            Podium::new().fit(repo).select(b).users
        }
    }
    P
}

/// §8.4 text: greedy is near-optimal in practice (0.998 reported; we
/// require ≥ 0.95 on a 30-user sample) and never below the (1 − 1/e)
/// bound.
#[test]
fn greedy_near_optimal_in_practice() {
    let dataset = podium::data::synth::tripadvisor(0.02, 2020).generate();
    let ids: Vec<UserId> = (0..30).map(UserId::from_index).collect();
    let repo = dataset.repo.restrict(&ids);
    let buckets = BucketingConfig::adaptive_default().bucketize(&repo);
    let groups = GroupSet::build(&repo, &buckets);
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        4,
    );
    let greedy = greedy_select(&inst, 4);
    let opt = exact_select(&inst, 4, 1 << 32).unwrap();
    let ratio = greedy.score / opt.score;
    assert!(ratio >= 0.95, "ratio {ratio}");
    assert!(ratio >= 1.0 - 1.0 / std::f64::consts::E);
}

/// §8.5: the clustering baseline is the slow one; Podium's end-to-end
/// selection must not be slower than k-means clustering on the same data.
#[test]
fn podium_not_slower_than_clustering() {
    let dataset = podium::data::synth::tripadvisor(0.06, 2020).generate();
    let repo = &dataset.repo;
    let t0 = std::time::Instant::now();
    let _ = Podium::new().fit(repo).select(8);
    let podium_t = t0.elapsed();
    let t1 = std::time::Instant::now();
    let _ = KMeansSelector::new(2020).select(repo, 8);
    let clustering_t = t1.elapsed();
    // Generous factor to stay robust under debug builds and CI noise.
    assert!(
        podium_t < clustering_t * 3,
        "podium {podium_t:?} vs clustering {clustering_t:?}"
    );
}
