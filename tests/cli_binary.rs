//! End-to-end tests of the real `podium-cli` binary: process spawning,
//! file I/O, exit codes — the layer the in-process CLI tests cannot reach.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_podium-cli"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("podium-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

const PROFILES: &str = r#"{
  "users": [
    { "name": "Alice", "properties": { "livesIn Tokyo": 1.0, "avgRating Mexican": 0.95 } },
    { "name": "Bob",   "properties": { "livesIn NYC": 1.0,   "avgRating Mexican": 0.3 } },
    { "name": "Eve",   "properties": { "livesIn Paris": 1.0, "avgRating Mexican": 0.8 } }
  ]
}"#;

#[test]
fn no_args_prints_usage_and_exits_2() {
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn help_exits_0() {
    let out = bin().arg("--help").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn stats_runs_against_file() {
    let profiles = write_temp("stats.json", PROFILES);
    let out = bin()
        .args(["stats", "--profiles"])
        .arg(&profiles)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("users:              3"), "{text}");
}

#[test]
fn select_with_flags_and_spaces_in_labels() {
    let profiles = write_temp("select.json", PROFILES);
    let out = bin()
        .args([
            "select",
            "--strategy",
            "paper",
            "--budget",
            "2",
            "--profiles",
        ])
        .arg(&profiles)
        .args(["--must-have", "avgRating Mexican"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("selected 2 users"), "{text}");
}

#[test]
fn json_output_parses() {
    let profiles = write_temp("json.json", PROFILES);
    let out = bin()
        .args([
            "select",
            "--strategy",
            "paper",
            "--budget",
            "2",
            "--json",
            "--profiles",
        ])
        .arg(&profiles)
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("stdout is valid JSON");
    assert_eq!(v["users"].as_array().unwrap().len(), 2);
}

#[test]
fn config_file_applies() {
    let profiles = write_temp("cfgp.json", PROFILES);
    let config = write_temp(
        "cfg.json",
        r#"{ "title": "Mexican focus", "include_properties": ["avgRating Mexican"], "budget": 2 }"#,
    );
    let out = bin()
        .args(["select", "--strategy", "paper", "--profiles"])
        .arg(&profiles)
        .arg("--config")
        .arg(&config)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("configuration: Mexican focus"), "{text}");
}

#[test]
fn missing_file_exits_1_with_message() {
    let out = bin()
        .args(["stats", "--profiles", "/nonexistent/nope.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn malformed_profiles_exit_1() {
    let profiles = write_temp("bad.json", "{ not json");
    let out = bin()
        .args(["stats", "--profiles"])
        .arg(&profiles)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
}

#[test]
fn unknown_flag_exits_2() {
    let out = bin()
        .args(["stats", "--profiles", "x", "--frobnicate"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
