//! Property-based tests (proptest) for the core invariants that the
//! paper's guarantees rest on.

use podium::core::exact::exact_select;
use podium::core::greedy::{greedy_select, greedy_select_opts, TieBreak};
use podium::core::lazy_greedy::lazy_greedy_select;
use podium::core::submodular::{check_monotone_chain, check_submodular_witness};
use podium::prelude::*;
use proptest::prelude::*;

/// Strategy: a random group structure over `users` users, as membership
/// lists, plus positive integer weights and coverage sizes.
fn instance_strategy(
    max_users: usize,
    max_groups: usize,
) -> impl Strategy<Value = (usize, Vec<Vec<u32>>, Vec<u32>, Vec<u32>)> {
    (2..=max_users).prop_flat_map(move |users| {
        let groups = prop::collection::vec(
            prop::collection::btree_set(0..users as u32, 1..=users),
            1..=max_groups,
        );
        groups.prop_flat_map(move |gs| {
            let n_groups = gs.len();
            let memberships: Vec<Vec<u32>> =
                gs.into_iter().map(|s| s.into_iter().collect()).collect();
            (
                Just(users),
                Just(memberships),
                prop::collection::vec(1u32..20, n_groups),
                prop::collection::vec(1u32..4, n_groups),
            )
        })
    })
}

fn build_groups(users: usize, memberships: &[Vec<u32>]) -> GroupSet {
    GroupSet::from_memberships(
        users,
        memberships
            .iter()
            .map(|g| g.iter().map(|&u| UserId(u)).collect())
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The score function is monotone along any insertion order
    /// (Proposition 4.4, Monotonicity).
    #[test]
    fn score_is_monotone((users, memberships, weights, covs) in instance_strategy(8, 10)) {
        let groups = build_groups(users, &memberships);
        let w: Vec<f64> = weights.iter().map(|&x| f64::from(x)).collect();
        let inst = DiversificationInstance::new(&groups, w, covs);
        let order: Vec<UserId> = (0..users).map(UserId::from_index).collect();
        prop_assert!(check_monotone_chain(&inst, &order));
    }

    /// The score function is submodular for random (U ⊆ U', u) witnesses
    /// (Proposition 4.4, Submodularity) — for every weight/cov choice.
    #[test]
    fn score_is_submodular(
        (users, memberships, weights, covs) in instance_strategy(8, 10),
        picks in prop::collection::vec(any::<prop::sample::Index>(), 3),
    ) {
        let groups = build_groups(users, &memberships);
        let w: Vec<f64> = weights.iter().map(|&x| f64::from(x)).collect();
        let inst = DiversificationInstance::new(&groups, w, covs);
        // Derive U ⊆ U' and u from the random indices.
        let all: Vec<UserId> = (0..users).map(UserId::from_index).collect();
        let u = all[picks[0].index(users)];
        let mut larger: Vec<UserId> = all.iter().copied().filter(|&x| x != u).collect();
        let cut_large = picks[1].index(larger.len() + 1);
        larger.truncate(cut_large);
        let cut_small = picks[2].index(larger.len() + 1);
        let smaller: Vec<UserId> = larger[..cut_small].to_vec();
        prop_assert!(check_submodular_witness(&inst, &smaller, &larger, u));
    }

    /// Greedy achieves at least (1 - 1/e) of the exhaustive optimum
    /// (Proposition 4.4 via Nemhauser–Wolsey–Fisher).
    #[test]
    fn greedy_approximation_bound(
        (users, memberships, weights, covs) in instance_strategy(8, 8),
        b in 1usize..5,
    ) {
        let groups = build_groups(users, &memberships);
        let w: Vec<f64> = weights.iter().map(|&x| f64::from(x)).collect();
        let inst = DiversificationInstance::new(&groups, w, covs);
        let greedy = greedy_select(&inst, b);
        let opt = exact_select(&inst, b, 1 << 30).unwrap();
        prop_assert!(
            greedy.score >= (1.0 - 1.0 / std::f64::consts::E) * opt.score - 1e-9,
            "greedy {} vs optimal {}", greedy.score, opt.score
        );
        prop_assert!(greedy.score <= opt.score + 1e-9);
    }

    /// Lazy greedy (CELF) matches eager greedy's score exactly.
    #[test]
    fn lazy_equals_eager_score(
        (users, memberships, weights, covs) in instance_strategy(10, 12),
        b in 1usize..6,
    ) {
        let groups = build_groups(users, &memberships);
        let w: Vec<f64> = weights.iter().map(|&x| f64::from(x)).collect();
        let inst = DiversificationInstance::new(&groups, w, covs);
        let eager = greedy_select(&inst, b);
        let lazy = lazy_greedy_select(&inst, b);
        prop_assert_eq!(eager.score, lazy.score);
    }

    /// Seeded tie-breaking keeps every greedy guarantee: the first accepted
    /// gain is the global argmax, and the score stays within (1 - 1/e) of
    /// the optimum. (Full score equality is NOT guaranteed in general — tie
    /// paths may reach different greedy optima.)
    #[test]
    fn tie_breaking_preserves_guarantees(
        (users, memberships, weights, covs) in instance_strategy(8, 10),
        seed in any::<u64>(),
        b in 1usize..5,
    ) {
        let groups = build_groups(users, &memberships);
        let w: Vec<f64> = weights.iter().map(|&x| f64::from(x)).collect();
        let inst = DiversificationInstance::new(&groups, w, covs);
        let det = greedy_select(&inst, b);
        let rnd = greedy_select_opts(&inst, b, None, TieBreak::Seeded(seed));
        prop_assert_eq!(det.gains[0], rnd.gains[0], "first pick is the argmax");
        let opt = exact_select(&inst, b, 1 << 30).unwrap();
        prop_assert!(rnd.score >= (1.0 - 1.0 / std::f64::consts::E) * opt.score - 1e-9);
        prop_assert!(rnd.score <= opt.score + 1e-9);
    }

    /// Greedy reported score always equals a from-scratch recomputation, and
    /// gains are non-increasing.
    #[test]
    fn greedy_selfconsistency(
        (users, memberships, weights, covs) in instance_strategy(10, 12),
        b in 1usize..8,
    ) {
        let groups = build_groups(users, &memberships);
        let w: Vec<f64> = weights.iter().map(|&x| f64::from(x)).collect();
        let inst = DiversificationInstance::new(&groups, w, covs);
        let sel = greedy_select(&inst, b);
        prop_assert!((sel.score - inst.score_of(&sel.users)).abs() < 1e-9);
        for win in sel.gains.windows(2) {
            prop_assert!(win[0] >= win[1] - 1e-9);
        }
        // covered_counts matches direct membership counting.
        for (g, grp) in inst.groups().iter() {
            let direct = grp.members.iter().filter(|u| sel.users.contains(u)).count() as u32;
            prop_assert_eq!(sel.covered_counts[g.index()], direct);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every bucketing strategy yields a partition: each observed value
    /// falls in exactly one bucket.
    #[test]
    fn bucketing_partitions_values(
        mut values in prop::collection::vec(0.0f64..=1.0, 1..200),
        k in 1usize..6,
        strat_idx in 0usize..6,
    ) {
        let strategy = match strat_idx {
            0 => BucketStrategy::EqualWidth,
            1 => BucketStrategy::Quantile,
            2 => BucketStrategy::Jenks,
            3 => BucketStrategy::KMeans1D,
            4 => BucketStrategy::Kde,
            _ => BucketStrategy::Em,
        };
        let cfg = BucketingConfig { strategy, buckets_per_property: k, detect_boolean: false };
        let set = cfg.bucketize_values(&mut values);
        prop_assert!(!set.is_empty());
        prop_assert!(set.len() <= k.max(1));
        for &v in &values {
            let hits = set.buckets().iter().filter(|b| b.contains(v)).count();
            prop_assert_eq!(hits, 1, "value {} hit {} buckets", v, hits);
        }
    }

    /// CD-sim is within [0, 1] for frequency inputs, equals 1 on identical
    /// distributions, and never penalizes over-representation.
    #[test]
    fn cd_sim_properties(counts in prop::collection::vec(0usize..50, 1..10)) {
        use podium::metrics::cdsim::{cd_sim, frequencies};
        let f = frequencies(&counts);
        prop_assert!((cd_sim(&f, &f) - 1.0).abs() < 1e-12 || f.iter().all(|&x| x == 0.0));
        // Uniform subset vs arbitrary population stays in bounds.
        let uniform = vec![1.0 / f.len() as f64; f.len()];
        let s = cd_sim(&uniform, &f);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
    }

    /// EBS values order consistently with their (arbitrary-precision)
    /// numeric meaning, simulated here in f64 for small exponents.
    #[test]
    fn ebs_matches_numeric_order(
        a in prop::collection::vec(0u32..8, 1..6),
        b in prop::collection::vec(0u32..8, 1..6),
    ) {
        use podium::core::score::{EbsValue, ScoreValue};
        let base: f64 = 9.0; // B+1 with B=8; coefficients stay < 6 < base
        let numeric = |v: &[u32]| -> f64 { v.iter().map(|&e| base.powi(e as i32)).sum() };
        let mut ea = EbsValue::zero_value();
        for &e in &a { ea.add_assign(&EbsValue::power(e)); }
        let mut eb = EbsValue::zero_value();
        for &e in &b { eb.add_assign(&EbsValue::power(e)); }
        let (na, nb) = (numeric(&a), numeric(&b));
        let num_ord = na.partial_cmp(&nb).unwrap();
        let ebs_ord = ea.partial_cmp(&eb).unwrap();
        prop_assert_eq!(num_ord, ebs_ord, "{:?} vs {:?}", a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The customization refinement never selects a filtered-out user, and
    /// the lexicographic objective never sacrifices priority score for
    /// standard score.
    #[test]
    fn customization_invariants(
        (users, memberships, _w, _c) in instance_strategy(10, 10),
        must_have_idx in any::<prop::sample::Index>(),
        b in 1usize..5,
    ) {
        use podium::core::customize::{custom_select, refine_pool, Feedback};
        let groups = build_groups(users, &memberships);
        let gid = GroupId::from_index(must_have_idx.index(groups.len()));
        let feedback = Feedback {
            must_have: vec![gid],
            priority: vec![gid],
            ..Feedback::default()
        };
        let repo = {
            // A dummy repository of the right size (custom_select only uses
            // group structure here).
            let mut r = UserRepository::new();
            for i in 0..users { r.add_user(format!("u{i}")); }
            r
        };
        let eligible = refine_pool(&groups, &feedback).unwrap();
        let sel = custom_select(
            &repo, &groups, WeightScheme::LinearBySize, CovScheme::Single, b, &feedback,
        ).unwrap();
        for &u in sel.users() {
            prop_assert!(eligible[u.index()], "ineligible user selected");
            prop_assert!(groups.group(gid).unwrap().contains(u));
        }
        // Priority group non-empty => it gets covered when b >= 1.
        prop_assert!(sel.feedback_group_coverage == 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental group maintenance equals a from-scratch rebuild after any
    /// sequence of score updates.
    #[test]
    fn incremental_groups_match_rebuild(
        updates in prop::collection::vec(
            (0u32..6, 0u32..4, prop::option::of(0.0f64..=1.0)),
            1..60,
        ),
    ) {
        use podium::core::incremental::IncrementalGroups;

        // Fixed 6-user, 4-property repository with a couple of seed scores.
        let mut repo = UserRepository::new();
        let props: Vec<PropertyId> = (0..4)
            .map(|p| repo.intern_property(format!("p{p}")))
            .collect();
        for i in 0..6 {
            repo.add_user(format!("u{i}"));
        }
        repo.set_score(UserId(0), props[0], 0.9).unwrap();
        repo.set_score(UserId(1), props[1], 0.2).unwrap();

        let buckets = BucketingConfig {
            strategy: BucketStrategy::FixedEdges(vec![0.4, 0.65]),
            buckets_per_property: 3,
            detect_boolean: false,
        }
        .bucketize(&repo);
        let mut inc = IncrementalGroups::build(&repo, &buckets);

        // Mirror every update in a plain map, then rebuild a repository.
        let mut truth: std::collections::BTreeMap<(u32, u32), f64> =
            [((0, 0), 0.9), ((1, 1), 0.2)].into_iter().collect();
        for (u, p, score) in updates {
            inc.update_score(UserId(u), props[p as usize], score);
            match score {
                Some(s) => {
                    truth.insert((u, p), s);
                }
                None => {
                    truth.remove(&(u, p));
                }
            }
        }
        let mut mirror = UserRepository::new();
        for p in 0..4 {
            mirror.intern_property(format!("p{p}"));
        }
        for i in 0..6 {
            mirror.add_user(format!("u{i}"));
        }
        for (&(u, p), &s) in &truth {
            mirror.set_score(UserId(u), props[p as usize], s).unwrap();
        }

        let snapshot = inc.snapshot();
        let rebuilt = GroupSet::build(&mirror, &buckets);
        prop_assert_eq!(snapshot.len(), rebuilt.len());
        for ((_, a), (_, b)) in snapshot.iter().zip(rebuilt.iter()) {
            prop_assert_eq!(&a.members, &b.members);
            prop_assert_eq!(&a.kind, &b.kind);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pruning keeps exactly the qualifying groups, rebuilds reverse links
    /// consistently, and never changes surviving memberships.
    #[test]
    fn prune_preserves_surviving_groups(
        (users, memberships, _w, _c) in {
            // reuse the instance strategy's shape
            (2usize..10).prop_flat_map(|users| {
                let groups = prop::collection::vec(
                    prop::collection::btree_set(0..users as u32, 1..=users),
                    1..12,
                );
                groups.prop_map(move |gs| {
                    let m: Vec<Vec<u32>> = gs.into_iter().map(|s| s.into_iter().collect()).collect();
                    (users, m, Vec::<u32>::new(), Vec::<u32>::new())
                })
            })
        },
        min_size in 0usize..5,
        cap in prop::option::of(1usize..6),
    ) {
        let groups = build_groups(users, &memberships);
        let pruned = groups.prune(min_size, cap);
        // Every surviving group exists in the original with the same members.
        for (_, g) in pruned.iter() {
            prop_assert!(g.size() >= min_size);
            prop_assert!(groups.iter().any(|(_, og)| og.members == g.members));
        }
        if let Some(c) = cap {
            prop_assert!(pruned.len() <= c);
        }
        // Reverse links are consistent.
        for (gid, g) in pruned.iter() {
            for &u in &g.members {
                prop_assert!(pruned.groups_of(u).contains(&gid));
            }
        }
        // No qualifying group was dropped when no cap applies.
        if cap.is_none() {
            let expected = groups.iter().filter(|(_, g)| g.size() >= min_size).count();
            prop_assert_eq!(pruned.len(), expected);
        }
    }

    /// EBS-weighted greedy always covers the largest coverable group first:
    /// the defining Enforced-By-Size property.
    #[test]
    fn ebs_greedy_covers_largest_group_first(
        (users, memberships, _w, _c) in instance_strategy(8, 8),
    ) {
        use podium::core::weights::ebs_weights;
        let groups = build_groups(users, &memberships);
        let weights = ebs_weights(&groups);
        let covs = vec![1u32; groups.len()];
        let inst = DiversificationInstance::new(&groups, weights, covs);
        let sel = podium::core::greedy::greedy_select(&inst, 1);
        prop_assert_eq!(sel.users.len(), 1);
        let max_size = groups.iter().map(|(_, g)| g.size()).max().unwrap();
        let covered_max = groups
            .iter()
            .filter(|(_, g)| g.size() == max_size)
            .any(|(gid, _)| sel.covered_counts[gid.index()] > 0);
        prop_assert!(covered_max, "a maximum-size group must be covered by the first pick");
    }
}
