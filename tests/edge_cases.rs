//! Failure-injection and degenerate-input tests across the whole pipeline:
//! the library must degrade gracefully, never panic, on empty, tiny, or
//! pathological repositories.

use podium::core::customize::{custom_select, Feedback};
use podium::core::explain::SelectionReport;
use podium::core::greedy::greedy_select;
use podium::metrics::intrinsic::IntrinsicMetrics;
use podium::prelude::*;

fn fit(repo: &UserRepository) -> (GroupSet, podium::core::bucket::PropertyBuckets) {
    let buckets = BucketingConfig::adaptive_default().bucketize(repo);
    let groups = GroupSet::build(repo, &buckets);
    (groups, buckets)
}

#[test]
fn empty_repository_flows_through() {
    let repo = UserRepository::new();
    let (groups, _) = fit(&repo);
    assert!(groups.is_empty());
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        8,
    );
    let sel = greedy_select(&inst, 8);
    assert!(sel.users.is_empty());
    assert_eq!(sel.score, 0.0);
    let report = SelectionReport::build(&inst, &repo, &sel, 10);
    assert_eq!(report.users.len(), 0);
    let m = IntrinsicMetrics::evaluate(&inst, &sel.users, 10);
    assert_eq!(m.total_score, 0.0);
}

#[test]
fn users_without_any_properties() {
    let mut repo = UserRepository::new();
    for i in 0..5 {
        repo.add_user(format!("ghost{i}"));
    }
    let (groups, _) = fit(&repo);
    assert!(groups.is_empty(), "no properties, no groups");
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::Identical,
        CovScheme::Single,
        3,
    );
    // Users exist but carry zero marginal gain; selection still returns
    // (arbitrary) users up to budget, scored zero.
    let sel = greedy_select(&inst, 3);
    assert_eq!(sel.users.len(), 3);
    assert_eq!(sel.score, 0.0);
}

#[test]
fn identical_profiles_tie_everywhere() {
    let mut repo = UserRepository::new();
    let p = repo.intern_property("same");
    for i in 0..6 {
        let u = repo.add_user(format!("clone{i}"));
        repo.set_score(u, p, 0.5).unwrap();
    }
    let (groups, _) = fit(&repo);
    assert_eq!(groups.len(), 1, "one degenerate bucket group");
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        3,
    );
    let sel = greedy_select(&inst, 3);
    assert_eq!(sel.users.len(), 3);
    assert_eq!(sel.score, 6.0, "one covered group of weight 6");
    assert_eq!(sel.gains[1], 0.0, "second clone adds nothing");
}

#[test]
fn feedback_that_excludes_everyone() {
    let repo = table2();
    let (groups, _) = fit(&repo);
    // must_have the Tokyo group AND must_not it — contradiction is an error;
    // instead require two disjoint property families.
    let tokyo = repo.property_id("livesIn Tokyo").unwrap();
    let nyc = repo.property_id("livesIn NYC").unwrap();
    let feedback = Feedback {
        must_have: [tokyo, nyc]
            .iter()
            .flat_map(|&p| groups.groups_of_property(p))
            .collect(),
        ..Feedback::default()
    };
    // The refinement groups must-haves per property: users need livesIn
    // Tokyo AND livesIn NYC — nobody has both.
    let sel = custom_select(
        &repo,
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        4,
        &feedback,
    )
    .unwrap();
    assert_eq!(sel.pool_size, 0);
    assert!(sel.users().is_empty(), "empty pool, empty selection");
}

#[test]
fn score_boundary_values() {
    let mut repo = UserRepository::new();
    let p = repo.intern_property("edge");
    let a = repo.add_user("zero");
    let b = repo.add_user("one");
    repo.set_score(a, p, 0.0).unwrap();
    repo.set_score(b, p, 1.0).unwrap();
    let (groups, buckets) = fit(&repo);
    // 0.0 and 1.0 are Boolean-like: single true-bucket keeps only `one`.
    assert_eq!(groups.len(), 1);
    assert_eq!(groups.group(GroupId(0)).unwrap().members, vec![b]);
    assert!(buckets.of(p).bucket_of(1.0).is_some());
}

#[test]
fn single_user_population() {
    let mut repo = UserRepository::new();
    let u = repo.add_user("solo");
    let p = repo.intern_property("p");
    repo.set_score(u, p, 0.7).unwrap();
    let (groups, _) = fit(&repo);
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Proportional,
        5,
    );
    let sel = greedy_select(&inst, 5);
    assert_eq!(sel.users, vec![u]);
    let m = IntrinsicMetrics::evaluate(&inst, &sel.users, 10);
    assert_eq!(m.top_k_coverage, 1.0);
    assert_eq!(m.distribution_similarity, 1.0);
}

#[test]
fn budget_one_with_proportional_coverage() {
    let repo = table2();
    let (groups, _) = fit(&repo);
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Proportional,
        1,
    );
    let sel = greedy_select(&inst, 1);
    assert_eq!(sel.users.len(), 1);
    assert!(sel.score > 0.0);
}

#[test]
fn malformed_inputs_are_errors_not_panics() {
    use podium::data::csv::profiles_from_csv;
    use podium::data::json::profiles_from_json;
    for bad in ["", "{", "[1,2,3]", r#"{"users": 7}"#] {
        assert!(profiles_from_json(bad).is_err(), "{bad:?}");
    }
    for bad in ["", "nope\n", "user,p\nA\n", "user,p\nA,xyz\n"] {
        assert!(profiles_from_csv(bad).is_err(), "{bad:?}");
    }
}

#[test]
fn nan_and_out_of_range_scores_rejected_everywhere() {
    let mut repo = UserRepository::new();
    let u = repo.add_user("u");
    let p = repo.intern_property("p");
    for bad in [f64::NAN, f64::INFINITY, -0.1, 1.0001] {
        assert!(repo.set_score(u, p, bad).is_err(), "{bad}");
    }
    // The repository stays consistent after rejections.
    assert_eq!(repo.profile(u).unwrap().len(), 0);
    repo.set_score(u, p, 1.0).unwrap();
    assert_eq!(repo.score(u, p), Some(1.0));
}

#[test]
fn zero_weight_instance_selects_but_scores_zero() {
    let repo = table2();
    let (groups, _) = fit(&repo);
    let weights = vec![0.0; groups.len()];
    let cov = vec![1; groups.len()];
    let inst = DiversificationInstance::new(&groups, weights, cov);
    let sel = greedy_select(&inst, 3);
    assert_eq!(sel.users.len(), 3);
    assert_eq!(sel.score, 0.0);
}

#[test]
fn bucket_count_one_collapses_to_membership_groups() {
    let repo = table2();
    let cfg = BucketingConfig {
        strategy: podium::core::bucket::BucketStrategy::Quantile,
        buckets_per_property: 1,
        detect_boolean: false,
    };
    let buckets = cfg.bucketize(&repo);
    let groups = GroupSet::build(&repo, &buckets);
    // One group per property: "has this property at all".
    assert_eq!(groups.len(), repo.property_count());
}
