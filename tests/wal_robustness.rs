//! Property-based robustness tests for the durability subsystem: under
//! *arbitrary* byte mutation or truncation of the WAL and checkpoint
//! files, recovery must
//!
//! * never panic (corruption is data, not a bug),
//! * land on a valid *prefix* of the logged epochs — every frame wholly
//!   before the damage replays, nothing after it leaks through,
//! * quarantine exactly the corrupted tail (byte-accounted), leaving the
//!   truncated log immediately usable.
//!
//! The fixtures build a real WAL (and optionally a checkpoint) with the
//! production writer, then vandalize the files directly.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use podium::core::bucket::BucketingConfig;
use podium::core::profile::UserRepository;
use podium::service::bench::synthetic_repository;
use podium::service::recovery::{self, RecoveryReport};
use podium::service::snapshot::{ProfileUpdate, PublishMode};
use podium::service::wal::{self, FsyncPolicy, WalWriter};
use proptest::prelude::*;

const USERS: usize = 40;
const PROPERTIES: usize = 4;
const SCORES_PER_USER: usize = 2;
const REPO_SEED: u64 = 0xD1CE_2020;

fn genesis() -> UserRepository {
    synthetic_repository(USERS, PROPERTIES, SCORES_PER_USER, REPO_SEED)
}

/// A fresh scratch dir per proptest case.
fn scratch() -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("podium-wal-prop-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn update(i: usize) -> ProfileUpdate {
    ProfileUpdate {
        user: format!("user-{}", i % USERS),
        property: format!("topic-{}", i % PROPERTIES),
        score: Some(((i * 13) % 97) as f64 / 100.0),
    }
}

/// Writes `frames` single-update frames (epoch `i+1` each) into a fresh
/// WAL under `dir`; returns the raw log bytes.
fn build_wal(dir: &std::path::Path, frames: usize) -> Vec<u8> {
    let mut writer = WalWriter::open(dir, FsyncPolicy::Off, 1, 0).expect("open wal");
    for i in 0..frames {
        writer
            .append(i as u64 + 1, vec![update(i)])
            .expect("append frame");
    }
    writer.sync().expect("sync wal");
    std::fs::read(dir.join("wal.log")).expect("read wal back")
}

fn run_recovery(dir: &std::path::Path) -> RecoveryReport {
    let repo = genesis();
    let buckets = BucketingConfig::paper_default().bucketize(&repo);
    let (_store, _writer, report) =
        recovery::recover(dir, repo, &buckets, PublishMode::Incremental)
            .expect("recovery is total over corrupt input");
    report
}

/// Recovers the logged state and cuts a checkpoint at seq/epoch
/// `frames`, exactly as the live service would. Panics on fixture
/// failure (this is setup, not the property under test).
fn write_fixture_checkpoint(dir: &std::path::Path, frames: usize) {
    let repo = genesis();
    let buckets = BucketingConfig::paper_default().bucketize(&repo);
    let (_store, writer, report) =
        recovery::recover(dir, repo, &buckets, PublishMode::Incremental).expect("fixture recovery");
    assert_eq!(report.recovered_epoch, frames as u64, "fixture replay");
    let profiles = podium::data::json::profiles_to_json(writer.repo()).expect("profiles serialize");
    recovery::write_checkpoint(dir, frames as u64, frames as u64, &profiles)
        .expect("write checkpoint");
}

/// Frames wholly contained in the first `len` bytes of a valid log.
fn frames_before(bytes: &[u8], len: usize) -> (usize, usize) {
    let scan = wal::scan_frames(bytes);
    let mut frames = 0;
    let mut prefix = 0;
    for (i, &end) in scan.frame_ends.iter().enumerate() {
        if end <= len {
            frames = i + 1;
            prefix = end;
        }
    }
    (frames, prefix)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flip one byte anywhere in the log: every frame before the flip
    /// survives, the flipped frame and everything after is quarantined
    /// byte-for-byte, and the truncated log is exactly the valid prefix.
    #[test]
    fn byte_flip_recovers_the_prefix_and_quarantines_the_tail(
        frames in 1usize..12,
        offset_pick in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let dir = scratch();
        let clean = build_wal(&dir, frames);
        let offset = offset_pick % clean.len();
        let mut bytes = clean.clone();
        bytes[offset] ^= flip; // xor with nonzero: always a real change
        std::fs::write(dir.join("wal.log"), &bytes).expect("write mutated wal");

        let (expect_frames, expect_prefix) = frames_before(&clean, offset);
        let report = run_recovery(&dir);

        prop_assert_eq!(report.replayed_frames, expect_frames as u64);
        prop_assert_eq!(report.recovered_epoch, expect_frames as u64,
            "epoch must be the valid prefix");
        prop_assert!(report.quarantined.is_some(), "damage must be reported");
        prop_assert_eq!(
            report.quarantined_bytes,
            (clean.len() - expect_prefix) as u64,
            "quarantine exactly the corrupted tail"
        );
        let kept = std::fs::read(dir.join("wal.log")).expect("wal after recovery");
        prop_assert_eq!(&kept, &clean[..expect_prefix]);
        let quarantined = std::fs::read(dir.join("wal.quarantine")).expect("quarantine file");
        prop_assert_eq!(&quarantined, &bytes[expect_prefix..]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncate the log at an arbitrary byte: frames wholly inside the
    /// cut survive; a partial frame is quarantined; a cut on a frame
    /// boundary is not damage at all.
    #[test]
    fn truncation_recovers_the_prefix(
        frames in 1usize..12,
        cut_pick in 0usize..4096,
    ) {
        let dir = scratch();
        let clean = build_wal(&dir, frames);
        let cut = cut_pick % (clean.len() + 1);
        std::fs::write(dir.join("wal.log"), &clean[..cut]).expect("truncate wal");

        let (expect_frames, expect_prefix) = frames_before(&clean, cut);
        let report = run_recovery(&dir);

        prop_assert_eq!(report.replayed_frames, expect_frames as u64);
        prop_assert_eq!(report.recovered_epoch, expect_frames as u64);
        if cut == expect_prefix {
            prop_assert!(report.quarantined.is_none(),
                "a boundary cut is a clean (shorter) log, not corruption");
        } else {
            prop_assert_eq!(report.quarantined_bytes, (cut - expect_prefix) as u64);
        }
        let kept = std::fs::read(dir.join("wal.log")).expect("wal after recovery");
        prop_assert_eq!(&kept, &clean[..expect_prefix]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Vandalize the *profiles payload* of the newest checkpoint: the CRC
    /// must reject it and recovery must still reach the full logged epoch
    /// through genesis + WAL replay (checkpoints are accelerators, never
    /// required for correctness).
    #[test]
    fn corrupt_checkpoint_payload_falls_back_to_wal_replay(
        frames in 1usize..10,
        offset_pick in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let dir = scratch();
        let _clean = build_wal(&dir, frames);
        write_fixture_checkpoint(&dir, frames);
        let ck_path = recovery::checkpoint_path(&dir, frames as u64);
        let mut ck = std::fs::read(&ck_path).expect("read checkpoint");
        // Flip inside the profiles string: any change there either breaks
        // JSON parsing or fails the CRC — both mean rejection.
        let marker = b"\"profiles\":\"";
        let start = ck
            .windows(marker.len())
            .position(|w| w == marker)
            .expect("profiles field present")
            + marker.len();
        let end = ck.len() - 2; // closing quote + brace
        let offset = start + offset_pick % (end - start);
        ck[offset] ^= flip;
        std::fs::write(&ck_path, &ck).expect("write corrupted checkpoint");

        let report = run_recovery(&dir);
        prop_assert!(report.checkpoints_rejected >= 1, "crc must catch the flip");
        prop_assert_eq!(report.recovered_epoch, frames as u64);
        prop_assert_eq!(report.replayed_frames, frames as u64,
            "rejected checkpoint means replay from genesis");
        prop_assert!(report.quarantined.is_none(), "the wal itself is intact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flip a byte *anywhere* in the checkpoint file — including the
    /// unchecksummed seq/epoch metadata, which the recovery code treats
    /// as tamper territory. Recovery must stay total: a Result, never a
    /// panic, whatever state the tampering steers it into.
    #[test]
    fn arbitrary_checkpoint_mutation_never_panics(
        frames in 1usize..10,
        offset_pick in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let dir = scratch();
        let _clean = build_wal(&dir, frames);
        write_fixture_checkpoint(&dir, frames);
        let ck_path = recovery::checkpoint_path(&dir, frames as u64);
        let mut ck = std::fs::read(&ck_path).expect("read checkpoint");
        let offset = offset_pick % ck.len();
        ck[offset] ^= flip;
        std::fs::write(&ck_path, &ck).expect("write corrupted checkpoint");

        let report = run_recovery(&dir);
        if report.checkpoints_rejected >= 1 {
            // Rejected: identical to the payload property above.
            prop_assert_eq!(report.recovered_epoch, frames as u64);
            prop_assert_eq!(report.replayed_frames, frames as u64);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Arbitrary garbage as the whole log: recovery never panics, never
    /// replays anything (no valid first frame means epoch 0), and
    /// accounts for every byte it quarantined.
    #[test]
    fn arbitrary_garbage_never_panics(
        garbage in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let dir = scratch();
        std::fs::create_dir_all(&dir).expect("dir");
        std::fs::write(dir.join("wal.log"), &garbage).expect("write garbage");
        let report = run_recovery(&dir);
        // Garbage may accidentally decode as a frame prefix only if it is
        // a checksum-valid encoding — overwhelmingly it is not; either
        // way the report must be internally consistent.
        let kept = std::fs::read(dir.join("wal.log")).expect("wal after recovery");
        prop_assert_eq!(
            kept.len() as u64 + report.quarantined_bytes,
            garbage.len() as u64,
            "every byte is either kept or quarantined"
        );
        prop_assert_eq!(report.wal_bytes, kept.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
