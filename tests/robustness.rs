//! End-to-end robustness tests over a checked-in corruption corpus
//! (`tests/corpus/`): real defective documents, loaded through the public
//! facade in both Strict and Lenient modes.
//!
//! Each corpus file carries one characteristic defect:
//!
//! * `truncated.json` — upload cut off mid-record;
//! * `nan_score.csv` — a NaN score cell;
//! * `duplicate_user.json` — the same user name twice;
//! * `cyclic_rules.json` — an implication chain that closes on itself.

use podium::data::csv::profiles_from_csv_opts;
use podium::data::inference::rules_from_json;
use podium::data::json::profiles_from_json_opts;
use podium::data::load::{DataErrorKind, LoadOptions};

fn corpus(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn truncated_json_salvages_complete_records() {
    let text = corpus("truncated.json");

    let err = profiles_from_json_opts(&text, LoadOptions::Strict).unwrap_err();
    assert!(matches!(err.kind, DataErrorKind::Syntax { .. }), "{err}");
    assert!(
        err.provenance.line.is_some(),
        "strict rejection points at the break: {err}"
    );

    let (repo, report) = profiles_from_json_opts(&text, LoadOptions::Lenient).unwrap();
    assert_eq!(report.accepted, 2, "Alice and Bob are intact");
    assert_eq!(report.quarantined_count(), 1);
    assert!(repo.user_by_name("Alice").is_some());
    assert!(repo.user_by_name("Bob").is_some());
    assert!(repo.user_by_name("Carol").is_none(), "truncated record");
    let q = &report.quarantined[0];
    assert!(matches!(q.error.kind, DataErrorKind::Syntax { .. }));
    assert_eq!(q.error.provenance.record, Some(2));
    assert!(
        q.snippet.contains("Carol"),
        "snippet aids debugging: {}",
        q.snippet
    );
}

#[test]
fn nan_score_csv_quarantines_the_row() {
    let text = corpus("nan_score.csv");

    let err = profiles_from_csv_opts(&text, LoadOptions::Strict).unwrap_err();
    match &err.kind {
        DataErrorKind::BadScore { value, .. } => assert_eq!(value, "NaN"),
        other => panic!("expected BadScore, got {other:?}"),
    }
    assert_eq!(err.provenance.line, Some(3), "1-based line of Bob's row");
    assert_eq!(err.provenance.name.as_deref(), Some("Bob"));

    let (repo, report) = profiles_from_csv_opts(&text, LoadOptions::Lenient).unwrap();
    assert_eq!(report.accepted, 2);
    assert_eq!(report.quarantined_count(), 1);
    assert!(
        repo.user_by_name("Bob").is_none(),
        "atomic commit: no partial Bob"
    );
    let carol = repo.user_by_name("Carol").unwrap();
    assert_eq!(
        repo.profile(carol).unwrap().len(),
        1,
        "Carol's empty trailing cell means unknown, not zero"
    );
}

#[test]
fn duplicate_user_json_keeps_first_occurrence() {
    let text = corpus("duplicate_user.json");

    let err = profiles_from_json_opts(&text, LoadOptions::Strict).unwrap_err();
    assert!(
        matches!(&err.kind, DataErrorKind::Duplicate { name } if name == "Alice"),
        "{err}"
    );
    assert_eq!(err.provenance.record, Some(2));

    let (repo, report) = profiles_from_json_opts(&text, LoadOptions::Lenient).unwrap();
    assert_eq!(report.accepted, 3);
    assert_eq!(report.quarantined_count(), 1);
    let alice = repo.user_by_name("Alice").unwrap();
    let mex = repo.property_id("avgRating Mexican").unwrap();
    assert_eq!(
        repo.score(alice, mex),
        Some(0.9),
        "first occurrence wins; the duplicate's scores are not merged"
    );
}

#[test]
fn cyclic_rules_are_rejected_with_the_cycle_named() {
    let text = corpus("cyclic_rules.json");

    let err = rules_from_json(&text, LoadOptions::Strict).unwrap_err();
    match &err.kind {
        DataErrorKind::Cycle { description } => {
            assert!(description.contains("livesIn Asia"), "{description}")
        }
        other => panic!("expected Cycle, got {other:?}"),
    }
    assert_eq!(
        err.provenance.record,
        Some(2),
        "the rule that closes the loop"
    );

    let (engine, report) = rules_from_json(&text, LoadOptions::Lenient).unwrap();
    assert_eq!(
        report.accepted, 3,
        "two implications and the functional rule"
    );
    assert_eq!(report.quarantined_count(), 1);

    // The salvaged acyclic engine still runs to fixpoint.
    let mut repo = podium::core::profile::UserRepository::new();
    let u = repo.add_user("u");
    let p = repo.intern_property("livesIn Tokyo");
    repo.set_score(u, p, 1.0).unwrap();
    let written = engine.apply(&mut repo).unwrap();
    assert!(written >= 2, "Tokyo => Japan => Asia chain fires");
}

#[test]
fn quarantined_load_feeds_selection_end_to_end() {
    // The point of lenient mode: a damaged upload still produces a usable
    // repository for the selection pipeline.
    let (repo, report) =
        profiles_from_json_opts(&corpus("truncated.json"), LoadOptions::Lenient).unwrap();
    assert!(!report.is_clean());
    let fitted = podium::core::pipeline::Podium::new().fit(&repo);
    let sel = fitted.try_select(1).unwrap();
    assert_eq!(sel.users.len(), 1);
}
