//! TCP transport and chaos-resilience tests.
//!
//! The centerpiece is a deterministic soak: an in-process
//! [`PodiumService`] behind a real [`TcpServer`], with every client
//! connection routed through a seeded [`ChaosProxy`] that splits writes
//! into tiny slices, kills connections mid-frame, and stalls chunks past
//! the client deadline. A serial writer publishes profile updates while
//! resilient [`PodiumClient`]s hammer `select` (and one pins a session).
//! The assertions are the serving invariants, which no amount of
//! injected transport chaos may violate:
//!
//! * every `ok` response returns exactly `budget` users and an epoch
//!   that is monotone per client;
//! * every `ok` response is **bit-identical** to a single-threaded
//!   re-run against a mirror of that epoch's snapshot;
//! * a session's pinned epoch never moves, across reconnects included;
//! * failures only ever surface as typed client errors, never as wrong
//!   answers.
//!
//! The whole suite runs for each seed in a fixed matrix (extendable via
//! `PODIUM_CHAOS_SEED`), so a failure reproduces from the log line alone.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use podium::core::bucket::BucketingConfig;
use podium::service::bench::synthetic_repository;
use podium::service::chaos::{ChaosConfig, ChaosProxy};
use podium::service::client::{BreakerState, ClientConfig, ClientError, PodiumClient};
use podium::service::service::{PodiumService, ServiceConfig};
use podium::service::snapshot::{ProfileUpdate, RepositoryWriter, SelectParams, Snapshot};
use podium::service::tcp::{TcpServer, TcpServerConfig};
use serde_json::Value;

const USERS: usize = 300;
const PROPERTIES: usize = 12;
const SCORES_PER_USER: usize = 4;
const BUDGET: usize = 6;
const CLIENTS: usize = 3;
const SELECTS_PER_CLIENT: usize = 25;
const UPDATES: usize = 30;
const REPO_SEED: u64 = 0xD1CE_2020;

/// The fixed chaos-seed matrix. CI runs all of them; locally, set
/// `PODIUM_CHAOS_SEED` to append one more for bisection.
fn seed_matrix() -> Vec<u64> {
    let mut seeds = vec![0xC4A0_0001, 0xC4A0_0002, 0xC4A0_0003];
    if let Ok(extra) = std::env::var("PODIUM_CHAOS_SEED") {
        if let Ok(seed) = extra.trim().parse() {
            seeds.push(seed);
        }
    }
    seeds
}

fn service() -> Arc<PodiumService> {
    let repo = synthetic_repository(USERS, PROPERTIES, SCORES_PER_USER, REPO_SEED);
    let buckets = BucketingConfig::paper_default().bucketize(&repo);
    Arc::new(PodiumService::new(
        repo,
        &buckets,
        ServiceConfig {
            workers: 2,
            queue_capacity: 128,
            default_deadline_ms: 2_000,
            ..ServiceConfig::default()
        },
    ))
}

/// The deterministic update stream (mirrors `tests/service_serve.rs`):
/// each tick nudges one existing user's score on one existing property.
fn update_stream() -> Vec<ProfileUpdate> {
    (0..UPDATES)
        .map(|i| ProfileUpdate {
            user: format!("user-{}", (i * 37) % USERS),
            property: format!("topic-{}", (i * 5) % PROPERTIES),
            score: Some(((i * 13) % 97) as f64 / 100.0),
        })
        .collect()
}

/// Replays the update stream against a fresh mirror and returns the
/// per-epoch snapshots: index `e` is the state the server served epoch
/// `e` from (the writer publishes serially, one epoch per update).
fn mirror_snapshots(updates: &[ProfileUpdate]) -> Vec<Arc<Snapshot>> {
    let repo = synthetic_repository(USERS, PROPERTIES, SCORES_PER_USER, REPO_SEED);
    let buckets = BucketingConfig::paper_default().bucketize(&repo);
    let (store, mut writer) = RepositoryWriter::new(repo, &buckets);
    let mut per_epoch = vec![store.load()];
    for u in updates {
        writer.apply(u).expect("mirror update applies");
        writer.publish();
        per_epoch.push(store.load());
    }
    per_epoch
}

fn chaos_client_config(seed: u64) -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_millis(1_500),
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(50),
        max_attempts: 4,
        breaker_threshold: 8,
        breaker_cooldown: Duration::from_millis(150),
        seed,
    }
}

/// One seed's soak run. Returns (observations, failures) so the caller
/// can both mirror-check and sanity-check volume.
fn soak_one_seed(seed: u64) {
    let service = service();
    let server = TcpServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        TcpServerConfig::default(),
    )
    .expect("bind tcp server");
    let proxy = ChaosProxy::bind(
        server.local_addr(),
        ChaosConfig {
            seed,
            split_writes: true,
            disconnect_per_chunk: 0.04,
            stall_per_chunk: 0.01,
            stall: Duration::from_millis(1_700), // past the client deadline
            refuse_per_conn: 0.10,
            ..ChaosConfig::default()
        },
    )
    .expect("bind chaos proxy");
    let proxy_addr = proxy.local_addr();

    // Serial writer, in-process: epoch e = initial repo + first e updates
    // exactly, because only this thread publishes.
    let updates = update_stream();
    let writer_done = Arc::new(AtomicBool::new(false));
    let writer = {
        let service = Arc::clone(&service);
        let updates = updates.clone();
        let done = Arc::clone(&writer_done);
        std::thread::spawn(move || {
            for (i, u) in updates.iter().enumerate() {
                let line = format!(
                    r#"{{"op":"update-profile","user":"{}","property":"{}","score":{}}}"#,
                    u.user,
                    u.property,
                    u.score.unwrap()
                );
                let v: Value = serde_json::from_str(&service.handle_line(&line)).unwrap();
                assert_eq!(v["ok"].as_bool(), Some(true), "update {i}: {v:?}");
                assert_eq!(v["epoch"].as_u64(), Some(i as u64 + 1));
                std::thread::sleep(Duration::from_millis(4));
            }
            done.store(true, Ordering::Relaxed);
        })
    };

    // Select clients, each through the chaos proxy with its own
    // deterministic jitter stream.
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let client_seed = seed ^ (c as u64 + 1);
        clients.push(std::thread::spawn(move || {
            let mut client = PodiumClient::new(proxy_addr, chaos_client_config(client_seed));
            let request = format!(r#"{{"op":"select","budget":{BUDGET}}}"#);
            let mut observations: Vec<(u64, Vec<String>)> = Vec::new();
            let mut failures = 0u64;
            let mut last_epoch = 0u64;
            let mut attempts = 0usize;
            while observations.len() < SELECTS_PER_CLIENT && attempts < SELECTS_PER_CLIENT * 20 {
                attempts += 1;
                match client.call(&request) {
                    Ok(v) => {
                        assert_eq!(
                            v.get("ok").and_then(Value::as_bool),
                            Some(true),
                            "client {c}: server rejected a well-formed select: {v:?}"
                        );
                        let epoch = v.get("epoch").and_then(Value::as_u64).expect("epoch");
                        assert!(
                            epoch >= last_epoch,
                            "client {c}: epoch went backwards ({last_epoch} -> {epoch})"
                        );
                        last_epoch = epoch;
                        let users: Vec<String> = v
                            .get("users")
                            .and_then(Value::as_array)
                            .expect("users array")
                            .iter()
                            .map(|u| u.as_str().expect("user name").to_owned())
                            .collect();
                        assert_eq!(users.len(), BUDGET, "client {c}");
                        observations.push((epoch, users));
                    }
                    Err(
                        ClientError::Timeout | ClientError::Transport(_) | ClientError::BreakerOpen,
                    ) => {
                        // Injected chaos; wrong answers are forbidden,
                        // typed failures are expected.
                        failures += 1;
                        if client.breaker_state() == BreakerState::Open {
                            std::thread::sleep(Duration::from_millis(160));
                        }
                    }
                    Err(ClientError::Protocol(m)) => {
                        panic!("client {c}: protocol corruption reached the parser: {m}")
                    }
                }
            }
            (observations, failures, client.stats())
        }));
    }

    // A session client: the pinned epoch must never move, even though the
    // proxy keeps killing this client's connections (sessions live in the
    // server, not the connection).
    let session_client = std::thread::spawn(move || {
        let mut client = PodiumClient::new(proxy_addr, chaos_client_config(seed ^ 0x5E55));
        let opened = loop {
            match client.call(r#"{"op":"open-session"}"#) {
                Ok(v) => break v,
                Err(ClientError::Protocol(m)) => panic!("open-session corrupted: {m}"),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        };
        let session = opened.get("session").and_then(Value::as_u64).unwrap();
        let pinned = opened.get("epoch").and_then(Value::as_u64).unwrap();
        let refine =
            format!(r#"{{"op":"refine","session":{session},"budget":{BUDGET},"priority":[0]}}"#);
        let mut refined = 0;
        let mut tries = 0;
        while refined < 8 && tries < 160 {
            tries += 1;
            match client.call(&refine) {
                Ok(v) => {
                    assert_eq!(
                        v.get("ok").and_then(Value::as_bool),
                        Some(true),
                        "session survived reconnects: {v:?}"
                    );
                    assert_eq!(
                        v.get("epoch").and_then(Value::as_u64),
                        Some(pinned),
                        "session pinning: refine must keep serving the pinned epoch"
                    );
                    refined += 1;
                }
                Err(ClientError::Protocol(m)) => panic!("refine corrupted: {m}"),
                Err(_) => std::thread::sleep(Duration::from_millis(30)),
            }
        }
        assert!(refined > 0, "no refine ever got through the chaos");
    });

    let mut all_observations: Vec<(u64, Vec<String>)> = Vec::new();
    let mut total_failures = 0u64;
    let mut total_retries = 0u64;
    for client in clients {
        let (observations, failures, stats) = client.join().expect("select client panicked");
        assert_eq!(
            observations.len(),
            SELECTS_PER_CLIENT,
            "seed {seed:#x}: a client could not complete its quota through the chaos"
        );
        all_observations.extend(observations);
        total_failures += failures;
        total_retries += stats.retries;
    }
    session_client.join().expect("session client panicked");
    writer.join().expect("writer panicked");
    assert!(writer_done.load(Ordering::Relaxed));

    // The chaos must actually have happened (the proxy is not a no-op)…
    let stats = proxy.stats();
    assert!(
        stats.splits.load(Ordering::Relaxed) > 0,
        "seed {seed:#x}: no split writes injected"
    );
    assert!(
        stats.disconnects.load(Ordering::Relaxed) + stats.refused.load(Ordering::Relaxed) > 0,
        "seed {seed:#x}: no disconnects or refusals injected"
    );
    assert!(
        total_failures + total_retries > 0,
        "seed {seed:#x}: clients never even noticed the chaos"
    );

    // …and despite it, every served answer matches the single-threaded
    // mirror at its epoch. Zero tolerance: one divergent byte fails.
    let per_epoch = mirror_snapshots(&updates);
    let params = SelectParams {
        budget: BUDGET,
        weight: podium::core::weights::WeightScheme::LinearBySize,
        cov: podium::core::weights::CovScheme::Single,
    };
    let mut checked = 0usize;
    for (epoch, users) in &all_observations {
        let snapshot = per_epoch
            .get(*epoch as usize)
            .unwrap_or_else(|| panic!("served epoch {epoch} beyond the update stream"));
        let expected = snapshot.select(&params, None).expect("mirror select");
        assert_eq!(
            users, &expected.names,
            "seed {seed:#x}, epoch {epoch}: selection diverged under chaos"
        );
        checked += 1;
    }
    assert_eq!(checked, CLIENTS * SELECTS_PER_CLIENT);

    proxy.shutdown();
    server.shutdown();
}

#[test]
fn chaos_soak_is_consistent_for_every_seed_in_the_matrix() {
    for seed in seed_matrix() {
        soak_one_seed(seed);
    }
}

/// Blackout drill: the proxy refuses everything, the client's breaker
/// opens (observable fast-fail), service restores, the breaker half-opens
/// and closes again — full recovery without a client restart.
#[test]
fn circuit_breaker_opens_under_blackout_and_recovers() {
    let service = service();
    let server = TcpServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        TcpServerConfig::default(),
    )
    .unwrap();
    let proxy = ChaosProxy::bind(server.local_addr(), ChaosConfig::default()).unwrap();
    let config = ClientConfig {
        connect_timeout: Duration::from_millis(300),
        request_timeout: Duration::from_millis(800),
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(20),
        max_attempts: 2,
        breaker_threshold: 4,
        breaker_cooldown: Duration::from_millis(120),
        seed: 0xB1AC_0075,
    };
    let mut client = PodiumClient::new(proxy.local_addr(), config);

    // Healthy phase.
    let v = client.call(r#"{"op":"stats"}"#).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(client.breaker_state(), BreakerState::Closed);

    // Blackout: every call fails at the transport until the breaker opens.
    proxy.set_blackout(true);
    let mut opened = false;
    for _ in 0..20 {
        match client.call(r#"{"op":"stats"}"#) {
            Err(ClientError::BreakerOpen) => {
                opened = true;
                break;
            }
            Err(_) => {}
            Ok(v) => panic!("call succeeded through a blackout: {v:?}"),
        }
        if client.breaker_state() == BreakerState::Open {
            // Next non-cooled-down call must fast-fail.
            continue;
        }
    }
    assert!(opened, "breaker never produced a fast failure");
    assert_eq!(client.breaker_state(), BreakerState::Open);
    assert!(client.stats().breaker_opens >= 1);
    assert!(client.stats().fast_failures >= 1);

    // Recovery: clear the blackout, wait out the cooldown, and the
    // half-open probe closes the breaker again.
    proxy.set_blackout(false);
    std::thread::sleep(config.breaker_cooldown + Duration::from_millis(30));
    let mut recovered = false;
    for _ in 0..10 {
        if let Ok(v) = client.call(r#"{"op":"select","budget":3}"#) {
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v:?}");
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(150));
    }
    assert!(
        recovered,
        "client never recovered after the blackout lifted"
    );
    assert_eq!(client.breaker_state(), BreakerState::Closed);

    proxy.shutdown();
    server.shutdown();
}

/// Stalls past the deadline surface as `Timeout`, not as hangs: the
/// client bounds every call even when the proxy sits on the bytes.
#[test]
fn stalls_past_the_deadline_surface_as_timeouts() {
    let service = service();
    let server = TcpServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        TcpServerConfig::default(),
    )
    .unwrap();
    let proxy = ChaosProxy::bind(
        server.local_addr(),
        ChaosConfig {
            seed: 0x57A11,
            split_writes: false,
            stall_per_chunk: 1.0,
            stall: Duration::from_millis(900),
            ..ChaosConfig::default()
        },
    )
    .unwrap();
    let mut client = PodiumClient::new(
        proxy.local_addr(),
        ClientConfig {
            request_timeout: Duration::from_millis(400),
            max_attempts: 1,
            ..ClientConfig::default()
        },
    );
    let started = std::time::Instant::now();
    let err = client.call(r#"{"op":"stats"}"#).unwrap_err();
    assert_eq!(err, ClientError::Timeout, "stall must become a timeout");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "timeout was not bounded: {:?}",
        started.elapsed()
    );
    assert!(proxy.stats().stalls.load(Ordering::Relaxed) >= 1);
    proxy.shutdown();
    server.shutdown();
}

// ---------------------------------------------------------------------
// Crash injection: SIGKILL a real `podium-cli serve --data-dir` process
// at seeded points, restart it on the same directory, and prove the
// recovered state is bit-identical to a single-threaded mirror at the
// last durable epoch, with epochs monotone across the crash.

mod crash {
    use super::*;
    use std::io::{BufRead, BufReader, Read as _};
    use std::net::SocketAddr;
    use std::path::{Path, PathBuf};
    use std::process::{Child, Command, Stdio};

    use podium::core::weights::{CovScheme, WeightScheme};
    use podium::data::json::profiles_to_json;

    /// A `podium-cli serve` child process plus what it said on startup.
    pub struct ServerProc {
        child: Child,
        pub addr: SocketAddr,
        pub recovery_line: Option<String>,
    }

    impl ServerProc {
        /// SIGKILL — no graceful shutdown, no flush. The crash under test.
        pub fn kill(mut self) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }

    /// Spawns the real binary serving TCP on an ephemeral port with the
    /// given data dir, and blocks until it announces its address.
    pub fn spawn_server(profiles: &Path, data_dir: &Path, extra: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_podium-cli"))
            .arg("serve")
            .arg("--profiles")
            .arg(profiles)
            .args([
                "--strategy",
                "paper",
                "--workers",
                "2",
                "--tcp",
                "127.0.0.1:0",
            ])
            .arg("--data-dir")
            .arg(data_dir)
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn podium-cli serve");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut reader = BufReader::new(stderr);
        let mut recovery_line = None;
        let addr = loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("read server stderr");
            assert!(n > 0, "server exited before announcing its tcp address");
            if line.contains("recovered epoch") {
                recovery_line = Some(line.trim().to_owned());
            }
            if let Some(rest) = line.trim().strip_prefix("podium-cli: serving on tcp ") {
                break rest.parse().expect("tcp address");
            }
        };
        // Keep draining stderr so the child can never block on the pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            let _ = reader.read_to_string(&mut sink);
        });
        ServerProc {
            child,
            addr,
            recovery_line,
        }
    }

    pub fn crash_client(addr: SocketAddr) -> PodiumClient {
        PodiumClient::new(
            addr,
            ClientConfig {
                connect_timeout: Duration::from_millis(2_000),
                request_timeout: Duration::from_millis(2_000),
                max_attempts: 4,
                ..ClientConfig::default()
            },
        )
    }

    pub fn update_line(u: &ProfileUpdate) -> String {
        format!(
            r#"{{"op":"update-profile","user":"{}","property":"{}","score":{}}}"#,
            u.user,
            u.property,
            u.score.expect("crash updates always set a score")
        )
    }

    /// Fresh per-seed scratch dir; returns (root, profiles path, data dir).
    pub fn scratch(tag: &str, seed: u64) -> (PathBuf, PathBuf, PathBuf) {
        let root = std::env::temp_dir().join(format!(
            "podium-crash-{tag}-{}-{seed:x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("scratch dir");
        let profiles = root.join("genesis.json");
        let repo = synthetic_repository(USERS, PROPERTIES, SCORES_PER_USER, REPO_SEED);
        std::fs::write(&profiles, profiles_to_json(&repo).expect("genesis json"))
            .expect("write genesis");
        let data_dir = root.join("data");
        (root, profiles, data_dir)
    }

    pub fn select_params() -> SelectParams {
        SelectParams {
            budget: BUDGET,
            weight: WeightScheme::LinearBySize,
            cov: CovScheme::Single,
        }
    }

    /// Asserts the server's current `select` answer is byte-for-byte the
    /// mirror's answer at the server's current epoch, and returns that
    /// epoch.
    pub fn assert_bit_identical(
        client: &mut PodiumClient,
        per_epoch: &[Arc<Snapshot>],
        context: &str,
    ) -> u64 {
        let v = client
            .call(&format!(r#"{{"op":"select","budget":{BUDGET}}}"#))
            .expect("select after recovery");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v:?}");
        let epoch = v.get("epoch").and_then(Value::as_u64).expect("epoch");
        let users: Vec<String> = v
            .get("users")
            .and_then(Value::as_array)
            .expect("users")
            .iter()
            .map(|u| u.as_str().expect("name").to_owned())
            .collect();
        let snapshot = per_epoch
            .get(epoch as usize)
            .unwrap_or_else(|| panic!("{context}: recovered epoch {epoch} beyond the mirror"));
        let expected = snapshot
            .select(&select_params(), None)
            .expect("mirror select");
        assert_eq!(
            users, expected.names,
            "{context}: recovered selection diverged from the mirror at epoch {epoch}"
        );
        epoch
    }
}

/// Kill after `k` acknowledged updates (k scripted by the seed), restart,
/// and require: the recovered epoch is exactly `k` (always-fsync: an ack
/// IS durability), the recovered selection is bit-identical to the
/// mirror, and epochs continue monotonically `k+1, k+2, …` across the
/// crash — twice, to cover recovery-of-a-recovered directory.
#[test]
fn crash_after_acked_updates_recovers_bit_identically() {
    let updates = update_stream();
    let per_epoch = mirror_snapshots(&updates);
    for seed in seed_matrix() {
        let (root, profiles, data_dir) = crash::scratch("acked", seed);
        let k = 4 + (seed % 11) as usize; // scripted kill point, 4..=14
        let server = crash::spawn_server(&profiles, &data_dir, &["--fsync", "always"]);
        let mut client = crash::crash_client(server.addr);
        for (i, u) in updates[..k].iter().enumerate() {
            let v = client.call(&crash::update_line(u)).expect("update");
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v:?}");
            assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(i as u64 + 1));
        }
        server.kill();

        let server = crash::spawn_server(&profiles, &data_dir, &["--fsync", "always"]);
        let line = server.recovery_line.clone().expect("recovery line");
        assert!(
            line.contains(&format!("recovered epoch {k}")),
            "seed {seed:#x}: {line}"
        );
        let mut client = crash::crash_client(server.addr);
        let epoch = crash::assert_bit_identical(&mut client, &per_epoch, "first restart");
        assert_eq!(epoch, k as u64, "seed {seed:#x}: lost acknowledged updates");

        // Epochs stay monotone across the crash: the stream continues.
        for (i, u) in updates[k..].iter().enumerate() {
            let v = client.call(&crash::update_line(u)).expect("update");
            assert_eq!(
                v.get("epoch").and_then(Value::as_u64),
                Some((k + i) as u64 + 1),
                "seed {seed:#x}: epoch not monotone across the crash"
            );
        }
        server.kill();

        // Second crash/restart: the full stream must be durable now.
        let server = crash::spawn_server(&profiles, &data_dir, &["--fsync", "always"]);
        let mut client = crash::crash_client(server.addr);
        let epoch = crash::assert_bit_identical(&mut client, &per_epoch, "second restart");
        assert_eq!(epoch, UPDATES as u64, "seed {seed:#x}");
        server.kill();
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Kill mid-burst: pipeline the whole update stream down one raw socket
/// without waiting for acks, SIGKILL after a seeded delay (the kill can
/// land mid-frame, mid-checkpoint, or between publish and fsync), and
/// require recovery to land on a *valid prefix* of the stream —
/// bit-identical to the mirror at whatever epoch survived — with epochs
/// monotone afterwards.
#[test]
fn crash_mid_burst_recovers_a_valid_prefix() {
    use std::io::Write as _;
    let updates = update_stream();
    let per_epoch = mirror_snapshots(&updates);
    for seed in seed_matrix() {
        let (root, profiles, data_dir) = crash::scratch("burst", seed);
        // Batch fsync + tight checkpoints: the kill window covers torn
        // frames, half-written checkpoints, and unsynced tails.
        let flags = ["--fsync", "batch", "--checkpoint-every", "4"];
        let server = crash::spawn_server(&profiles, &data_dir, &flags);
        let mut stream =
            std::net::TcpStream::connect(server.addr).expect("raw connect for the burst");
        let mut burst = String::new();
        for u in &updates {
            burst.push_str(&crash::update_line(u));
            burst.push('\n');
        }
        let _ = stream.write_all(burst.as_bytes());
        let _ = stream.flush();
        // Scripted kill delay: lands at a different point of the burst
        // per seed (possibly before it, possibly after all of it).
        std::thread::sleep(Duration::from_millis(seed % 23));
        server.kill();
        drop(stream);

        let server = crash::spawn_server(&profiles, &data_dir, &flags);
        let mut client = crash::crash_client(server.addr);
        let epoch = crash::assert_bit_identical(&mut client, &per_epoch, "mid-burst restart");
        assert!(
            epoch <= UPDATES as u64,
            "seed {seed:#x}: recovered past the stream"
        );
        // Monotone across the crash: the next update gets epoch+1.
        let v = client
            .call(&crash::update_line(&updates[0]))
            .expect("post-recovery update");
        assert_eq!(
            v.get("epoch").and_then(Value::as_u64),
            Some(epoch + 1),
            "seed {seed:#x}: epoch not monotone across the mid-burst crash"
        );
        server.kill();

        // And that post-crash update is itself durable on the next boot.
        let server = crash::spawn_server(&profiles, &data_dir, &flags);
        let mut client = crash::crash_client(server.addr);
        let v = client.call(r#"{"op":"stats"}"#).expect("stats");
        assert_eq!(
            v.get("epoch").and_then(Value::as_u64),
            Some(epoch + 1),
            "seed {seed:#x}"
        );
        server.kill();
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Corrupt the WAL tail after a crash (torn frame bytes appended), then
/// restart: recovery must quarantine exactly the garbage — never panic —
/// serve the last durable epoch bit-identically, and keep the log usable
/// for new updates.
#[test]
fn crash_with_torn_wal_tail_quarantines_and_serves() {
    let updates = update_stream();
    let per_epoch = mirror_snapshots(&updates);
    for seed in seed_matrix() {
        let (root, profiles, data_dir) = crash::scratch("torn", seed);
        let k = 3 + (seed % 5) as usize;
        let server = crash::spawn_server(&profiles, &data_dir, &["--fsync", "always"]);
        let mut client = crash::crash_client(server.addr);
        for u in &updates[..k] {
            let v = client.call(&crash::update_line(u)).expect("update");
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v:?}");
        }
        server.kill();

        // Tear the tail: a plausible length prefix, a bogus checksum, and
        // a payload that cuts off mid-frame.
        let wal_path = data_dir.join("wal.log");
        let mut torn = Vec::new();
        torn.extend_from_slice(&200u32.to_le_bytes());
        torn.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
        torn.extend_from_slice(&[0xAB; 37]);
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&wal_path)
                .expect("open wal for tearing");
            f.write_all(&torn).expect("append torn tail");
        }

        let server = crash::spawn_server(&profiles, &data_dir, &["--fsync", "always"]);
        let line = server.recovery_line.clone().expect("recovery line");
        assert!(
            line.contains("quarantined"),
            "seed {seed:#x}: torn tail not quarantined: {line}"
        );
        assert!(
            data_dir.join("wal.quarantine").exists(),
            "seed {seed:#x}: quarantine file missing"
        );
        let mut client = crash::crash_client(server.addr);
        let epoch = crash::assert_bit_identical(&mut client, &per_epoch, "torn-tail restart");
        assert_eq!(
            epoch, k as u64,
            "seed {seed:#x}: torn tail ate durable epochs"
        );

        // The truncated log keeps accepting and recovering new frames.
        let v = client
            .call(&crash::update_line(&updates[k]))
            .expect("post-quarantine update");
        assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(k as u64 + 1));
        server.kill();
        let server = crash::spawn_server(&profiles, &data_dir, &["--fsync", "always"]);
        let mut client = crash::crash_client(server.addr);
        let v = client.call(r#"{"op":"stats"}"#).expect("stats");
        assert_eq!(
            v.get("epoch").and_then(Value::as_u64),
            Some(k as u64 + 1),
            "seed {seed:#x}: post-quarantine update not durable"
        );
        server.kill();
        let _ = std::fs::remove_dir_all(&root);
    }
}
