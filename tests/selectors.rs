//! Property-based postcondition tests for every selection algorithm: any
//! selector, on any repository, must return within-budget, duplicate-free,
//! in-range user sets — and must be deterministic for a fixed seed.

use podium::baselines::prelude::*;
use podium::baselines::selector::check_selection;
use podium::baselines::stratified::Strata;
use podium::core::bucket::BucketSet;
use podium::prelude::*;
use proptest::prelude::*;

/// Strategy: a random sparse repository.
fn repo_strategy() -> impl Strategy<Value = UserRepository> {
    // users: 1..20, properties: 1..12, each user gets a random subset.
    (1usize..20, 1usize..12).prop_flat_map(|(users, props)| {
        prop::collection::vec(
            prop::collection::vec((0..props as u32, 0.0f64..=1.0), 0..props),
            users,
        )
        .prop_map(move |profiles| {
            let mut repo = UserRepository::new();
            let pids: Vec<PropertyId> = (0..props)
                .map(|p| repo.intern_property(format!("p{p}")))
                .collect();
            for (i, entries) in profiles.iter().enumerate() {
                let u = repo.add_user(format!("u{i}"));
                for &(p, s) in entries {
                    repo.set_score(u, pids[p as usize], s).unwrap();
                }
            }
            repo
        })
    })
}

fn all_selectors(seed: u64) -> Vec<Box<dyn Selector>> {
    vec![
        Box::new(RandomSelector::new(seed)),
        Box::new(KMeansSelector::new(seed)),
        Box::new(DistanceSelector::new(seed)),
        Box::new(MmrSelector::new(0.5)),
        Box::new(StratifiedSelector::new(
            seed,
            Strata::PropertyFamily("p0".into()),
        )),
        Box::new(OptimalSelector::new().with_limit(1 << 22)),
        Box::new(TModelSelector::new(
            PropertyId(0),
            BucketSet::from_interior_edges(&[0.5]).unwrap(),
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn selectors_satisfy_postconditions(repo in repo_strategy(), b in 0usize..10, seed in 0u64..100) {
        for selector in all_selectors(seed) {
            let sel = selector.select(&repo, b);
            prop_assert!(
                check_selection(&repo, b, &sel),
                "{} violated postconditions: {:?} (b={}, users={})",
                selector.name(), sel, b, repo.user_count()
            );
        }
    }

    #[test]
    fn selectors_are_deterministic(repo in repo_strategy(), b in 1usize..8, seed in 0u64..100) {
        for (s1, s2) in all_selectors(seed).iter().zip(all_selectors(seed).iter()) {
            prop_assert_eq!(
                s1.select(&repo, b),
                s2.select(&repo, b),
                "{} not deterministic", s1.name()
            );
        }
    }

    #[test]
    fn podium_pipeline_postconditions(repo in repo_strategy(), b in 1usize..8) {
        let fitted = Podium::new().fit(&repo);
        let sel = fitted.select(b);
        prop_assert!(check_selection(&repo, b, &sel.users));
        // Score must equal independent recomputation.
        let inst = fitted.instance(b);
        prop_assert!((sel.score - inst.score_of(&sel.users)).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// JSON roundtrip over arbitrary repositories preserves every score.
    #[test]
    fn json_roundtrip_arbitrary(repo in repo_strategy()) {
        let json = podium::data::json::profiles_to_json(&repo).unwrap();
        let back = podium::data::json::profiles_from_json(&json).unwrap();
        prop_assert_eq!(back.user_count(), repo.user_count());
        for (u, profile) in repo.iter() {
            let name = repo.user_name(u).unwrap();
            let bu = back.user_by_name(name).unwrap();
            prop_assert_eq!(back.profile(bu).unwrap().len(), profile.len());
            for (p, s) in profile.iter() {
                let label = repo.property_label(p).unwrap();
                let bp = back.property_id(label).unwrap();
                prop_assert_eq!(back.score(bu, bp), Some(s));
            }
        }
    }

    /// Merging a repository into an empty one is a faithful copy, and
    /// re-merging changes nothing (idempotence).
    #[test]
    fn merge_roundtrip_arbitrary(repo in repo_strategy()) {
        let mut dst = UserRepository::new();
        dst.merge(&repo);
        dst.merge(&repo);
        prop_assert_eq!(dst.user_count(), repo.user_count());
        for (u, profile) in repo.iter() {
            let name = repo.user_name(u).unwrap();
            let du = dst.user_by_name(name).unwrap();
            for (p, s) in profile.iter() {
                let label = repo.property_label(p).unwrap();
                let dp = dst.property_id(label).unwrap();
                prop_assert_eq!(dst.score(du, dp), Some(s));
            }
        }
    }
}
