//! End-to-end integration tests spanning all crates: generate → derive →
//! bucket → group → select → explain → customize → evaluate.

use podium::baselines::prelude::*;
use podium::core::customize::{custom_select, Feedback};
use podium::core::explain::SelectionReport;
use podium::core::greedy::greedy_select;
use podium::data::derive::DeriveOptions;
use podium::data::synth::SynthConfig;
use podium::metrics::intrinsic::IntrinsicMetrics;
use podium::metrics::opinion::evaluate_destination;
use podium::prelude::*;

fn small_dataset(seed: u64) -> podium::data::synth::SynthDataset {
    SynthConfig {
        name: "integration".into(),
        seed,
        users: 150,
        destinations: 120,
        cities: 6,
        age_groups: 3,
        archetypes: 4,
        regions: 4,
        leaves_per_region: 5,
        topics: 12,
        mean_reviews_per_user: 10.0,
        review_dispersion: 0.6,
        rating_noise: 0.7,
        preference_gain: 0.8,
        zipf_exponent: 1.0,
        include_demographics: true,
        useful_votes: true,
        derive: DeriveOptions::default(),
    }
    .generate()
}

#[test]
fn full_pipeline_runs_and_is_consistent() {
    let dataset = small_dataset(21);
    let repo = &dataset.repo;
    assert_eq!(repo.user_count(), 150);

    let buckets = BucketingConfig::adaptive_default().bucketize(repo);
    let groups = GroupSet::build(repo, &buckets);
    assert!(groups.len() > 50, "rich group structure: {}", groups.len());

    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        8,
    );
    let sel = greedy_select(&inst, 8);
    assert_eq!(sel.users.len(), 8);
    assert_eq!(
        sel.score,
        inst.score_of(&sel.users),
        "reported = recomputed"
    );

    // Greedy gains are non-increasing (submodularity in action).
    for w in sel.gains.windows(2) {
        assert!(
            w[0] >= w[1] - 1e-9,
            "gains must be non-increasing: {:?}",
            sel.gains
        );
    }

    // Explanations cover every selected user and every group.
    let report = SelectionReport::build(&inst, repo, &sel, 50);
    assert_eq!(report.users.len(), 8);
    assert_eq!(report.groups.len(), groups.len());
    assert!(report.top_weight_coverage > 0.0);

    // Metrics bundle is sane.
    let m = IntrinsicMetrics::evaluate(&inst, &sel.users, 50);
    assert!(m.total_score > 0.0);
    assert!((0.0..=1.0).contains(&m.top_k_coverage));
    assert!((0.0..=1.0).contains(&m.intersected_coverage));
    assert!((0.0..=1.0).contains(&m.distribution_similarity));
}

#[test]
fn greedy_beats_every_baseline_on_its_own_objective() {
    let dataset = small_dataset(22);
    let repo = &dataset.repo;
    let buckets = BucketingConfig::adaptive_default().bucketize(repo);
    let groups = GroupSet::build(repo, &buckets);
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        8,
    );
    let podium_score = greedy_select(&inst, 8).score;

    let baselines: Vec<Box<dyn Selector>> = vec![
        Box::new(RandomSelector::new(22)),
        Box::new(KMeansSelector::new(22)),
        Box::new(DistanceSelector::new(22)),
        Box::new(MmrSelector::new(0.5)),
        Box::new(StratifiedSelector::new(
            22,
            podium::baselines::stratified::Strata::PropertyFamily("livesIn ".into()),
        )),
    ];
    for b in baselines {
        let score = inst.score_of(&b.select(repo, 8));
        assert!(
            podium_score >= score,
            "{} beat Podium on Podium's objective: {} > {}",
            b.name(),
            score,
            podium_score
        );
    }
}

#[test]
fn holdout_then_opinion_procurement() {
    let dataset = small_dataset(23);
    let split = holdout_split(&dataset, 3, 4);
    assert!(!split.eval_destinations.is_empty());
    for &d in &split.eval_destinations {
        let mut reviewers: Vec<_> = dataset.corpus.reviews_of(d).map(|r| r.user).collect();
        reviewers.sort();
        reviewers.dedup();
        assert!(reviewers.len() >= 4);
        let pool = split.selection_repo.restrict(&reviewers);
        let buckets = BucketingConfig::adaptive_default().bucketize(&pool);
        let groups = GroupSet::build(&pool, &buckets);
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            4,
        );
        let local = greedy_select(&inst, 4).users;
        let global: Vec<_> = local.iter().map(|u| reviewers[u.index()]).collect();
        let metrics = evaluate_destination(&dataset.corpus, d, &global);
        // Every selected user has a ground-truth review, so opinions exist.
        assert!(
            metrics.rating_distribution_similarity > 0.0,
            "procured opinions must be non-empty"
        );
    }
}

#[test]
fn customization_pipeline_respects_filters_end_to_end() {
    let dataset = small_dataset(24);
    let repo = &dataset.repo;
    let buckets = BucketingConfig::adaptive_default().bucketize(repo);
    let groups = GroupSet::build(repo, &buckets);

    // Must-have: the largest group. Must-not: the second largest (disjoint
    // part is what remains selectable).
    let mut by_size: Vec<_> = groups.ids().collect();
    by_size.sort_by_key(|&g| std::cmp::Reverse(groups.group(g).unwrap().size()));
    let must_have = by_size[0];
    let must_not = *by_size
        .iter()
        .find(|&&g| {
            // pick a group not containing all must_have members
            g != must_have
        })
        .unwrap();
    let feedback = Feedback {
        must_have: vec![must_have],
        must_not: vec![must_not],
        ..Feedback::default()
    };
    let sel = custom_select(
        repo,
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        6,
        &feedback,
    )
    .unwrap();
    let have = groups.group(must_have).unwrap();
    let not = groups.group(must_not).unwrap();
    for &u in sel.users() {
        assert!(have.contains(u), "must-have violated for {u}");
        assert!(!not.contains(u), "must-not violated for {u}");
    }
}

#[test]
fn json_roundtrip_preserves_selection_outcome() {
    let dataset = small_dataset(25);
    let json = podium::data::json::profiles_to_json(&dataset.repo).unwrap();
    let mut back = podium::data::json::profiles_from_json(&json).unwrap();
    back.rebuild_index();

    // Same selection on original and round-tripped repositories (property
    // ids may be permuted, so compare selected user *names*).
    let select_names = |repo: &podium::core::profile::UserRepository| -> Vec<String> {
        let buckets = BucketingConfig::adaptive_default().bucketize(repo);
        let groups = GroupSet::build(repo, &buckets);
        let inst = DiversificationInstance::from_schemes(
            &groups,
            WeightScheme::LinearBySize,
            CovScheme::Single,
            5,
        );
        greedy_select(&inst, 5)
            .users
            .iter()
            .map(|&u| repo.user_name(u).unwrap().to_owned())
            .collect()
    };
    assert_eq!(select_names(&dataset.repo), select_names(&back));
}

#[test]
fn inference_rules_integrate_with_selection() {
    let mut repo = table2();
    let engine = InferenceEngine::new()
        .with_rule(Rule::Implies {
            premise: "livesIn Tokyo".into(),
            conclusion: "livesIn Japan".into(),
            threshold: 1.0,
        })
        .with_rule(Rule::Functional {
            prefix: "livesIn ".into(),
        });
    engine.apply(&mut repo).unwrap();

    // Inferred properties materialize as groups.
    let buckets = BucketingConfig::paper_default().bucketize(&repo);
    let groups = GroupSet::build(&repo, &buckets);
    let japan = repo.property_id("livesIn Japan").unwrap();
    let jg = groups.groups_of_property(japan);
    assert_eq!(jg.len(), 1);
    assert_eq!(groups.group(jg[0]).unwrap().size(), 2, "Alice and David");

    // Inferred falsehoods (score 0) must NOT create spurious memberships.
    let tokyo = repo.property_id("livesIn Tokyo").unwrap();
    let tg = groups.groups_of_property(tokyo);
    assert_eq!(
        groups.group(tg[0]).unwrap().size(),
        2,
        "still only residents"
    );
}
