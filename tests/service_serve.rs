//! End-to-end test of `podium-cli serve`: spawn the real binary on a Unix
//! socket, drive it with concurrent `select` clients while another client
//! streams `update-profile` writes, then verify that
//!
//! * every client observes monotonically non-decreasing epochs,
//! * every served selection is bit-identical to a single-threaded re-run
//!   against an in-process mirror of that epoch's snapshot.
//!
//! The mirror is exact because the protocol pins everything the selection
//! depends on: the `paper` bucketing strategy is value-independent, the
//! update stream is applied serially (one publish per update, so epoch
//! `e` = initial repository + the first `e` updates), and lazy greedy
//! breaks ties deterministically.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use podium::core::bucket::BucketingConfig;
use podium::service::bench::synthetic_repository;
use podium::service::snapshot::{ProfileUpdate, RepositoryWriter, SelectParams, Snapshot};

const USERS: usize = 300;
const PROPERTIES: usize = 12;
const SCORES_PER_USER: usize = 4;
const BUDGET: usize = 6;
const CLIENTS: usize = 3;
const SELECTS_PER_CLIENT: usize = 30;
const UPDATES: usize = 25;
const SEED: u64 = 0xD1CE_2020;

/// Kills the served child on drop so a failed assertion cannot leak a
/// process (or its socket).
struct ServerGuard {
    child: Child,
    dir: PathBuf,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn spawn_server_with(
    profiles_path: &Path,
    socket_path: &Path,
    dir: PathBuf,
    extra: &[&str],
) -> ServerGuard {
    let child = Command::new(env!("CARGO_BIN_EXE_podium-cli"))
        .args([
            "serve",
            "--profiles",
            profiles_path.to_str().unwrap(),
            "--strategy",
            "paper",
            "--socket",
            socket_path.to_str().unwrap(),
            "--workers",
            "2",
            "--queue",
            "128",
        ])
        .args(extra)
        .spawn()
        .expect("spawn podium-cli serve");
    ServerGuard { child, dir }
}

fn spawn_server(profiles_path: &Path, socket_path: &Path, dir: PathBuf) -> ServerGuard {
    spawn_server_with(profiles_path, socket_path, dir, &[])
}

fn await_socket(path: &Path) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !path.exists() {
        assert!(
            Instant::now() < deadline,
            "server socket never appeared at {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One request/response round trip over an established connection.
fn round_trip(
    stream: &mut UnixStream,
    reader: &mut BufReader<UnixStream>,
    request: &str,
) -> serde_json::Value {
    writeln!(stream, "{request}").expect("write request");
    stream.flush().expect("flush request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    serde_json::from_str(line.trim()).unwrap_or_else(|e| panic!("bad response '{line}': {e}"))
}

fn connect(path: &Path) -> (UnixStream, BufReader<UnixStream>) {
    let stream = UnixStream::connect(path).expect("connect to server socket");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

/// The deterministic update stream: each tick nudges one existing user's
/// score on one existing property (never creating users or properties, so
/// group membership churns but the universe is stable).
fn update_stream() -> Vec<ProfileUpdate> {
    (0..UPDATES)
        .map(|i| ProfileUpdate {
            user: format!("user-{}", (i * 37) % USERS),
            property: format!("topic-{}", (i * 5) % PROPERTIES),
            score: Some(((i * 13) % 97) as f64 / 100.0),
        })
        .collect()
}

#[test]
fn served_selections_match_single_threaded_mirror_per_epoch() {
    let dir = std::env::temp_dir().join(format!("podium-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let repo = synthetic_repository(USERS, PROPERTIES, SCORES_PER_USER, SEED);
    let profiles_json = podium::data::json::profiles_to_json(&repo).unwrap();
    let profiles_path = dir.join("profiles.json");
    std::fs::write(&profiles_path, &profiles_json).unwrap();
    let socket_path = dir.join("serve.sock");

    let guard = spawn_server(&profiles_path, &socket_path, dir.clone());
    await_socket(&socket_path);

    // Writer client: applies the update stream serially; response `epoch`
    // must be exactly 1, 2, 3, ... because only this client publishes.
    let updates = update_stream();
    let writer_updates = updates.clone();
    let writer_socket = socket_path.clone();
    let writer = std::thread::spawn(move || {
        let (mut stream, mut reader) = connect(&writer_socket);
        for (i, u) in writer_updates.iter().enumerate() {
            let request = format!(
                r#"{{"op":"update-profile","user":"{}","property":"{}","score":{}}}"#,
                u.user,
                u.property,
                u.score.unwrap()
            );
            let v = round_trip(&mut stream, &mut reader, &request);
            assert_eq!(v["ok"].as_bool(), Some(true), "update {i}: {v:?}");
            assert_eq!(
                v["epoch"].as_u64(),
                Some(i as u64 + 1),
                "serial writer publishes one epoch per update"
            );
            // Spread the updates across the select burst.
            std::thread::sleep(Duration::from_millis(3));
        }
    });

    // Select clients: each records (epoch, users) per response.
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let client_socket = socket_path.clone();
        clients.push(std::thread::spawn(move || {
            let (mut stream, mut reader) = connect(&client_socket);
            let mut observations: Vec<(u64, Vec<String>)> = Vec::new();
            let mut last_epoch = 0u64;
            for i in 0..SELECTS_PER_CLIENT {
                let v = round_trip(
                    &mut stream,
                    &mut reader,
                    &format!(r#"{{"op":"select","budget":{BUDGET}}}"#),
                );
                assert_eq!(v["ok"].as_bool(), Some(true), "client {c} req {i}: {v:?}");
                let epoch = v["epoch"].as_u64().expect("epoch in response");
                assert!(
                    epoch >= last_epoch,
                    "client {c}: epoch went backwards ({last_epoch} -> {epoch})"
                );
                last_epoch = epoch;
                let users: Vec<String> = v["users"]
                    .as_array()
                    .expect("users array")
                    .iter()
                    .map(|u| u.as_str().expect("user name").to_owned())
                    .collect();
                assert_eq!(users.len(), BUDGET, "client {c} req {i}");
                observations.push((epoch, users));
            }
            observations
        }));
    }

    let mut observations: Vec<(u64, Vec<String>)> = Vec::new();
    for client in clients {
        observations.extend(client.join().expect("select client panicked"));
    }
    writer.join().expect("writer client panicked");
    drop(guard);

    // Mirror: same initial repository, same bucketing, same serial update
    // stream — snapshot `e` is the state the server served epoch `e` from.
    let mirror_repo = podium::data::json::profiles_from_json(&profiles_json).unwrap();
    let buckets = BucketingConfig::paper_default().bucketize(&mirror_repo);
    let (store, mut writer) = RepositoryWriter::new(mirror_repo, &buckets);
    let mut per_epoch: Vec<std::sync::Arc<Snapshot>> = vec![store.load()];
    for u in &updates {
        writer.apply(u).expect("mirror update applies");
        writer.publish();
        per_epoch.push(store.load());
    }

    let params = SelectParams {
        budget: BUDGET,
        weight: podium::core::weights::WeightScheme::LinearBySize,
        cov: podium::core::weights::CovScheme::Single,
    };
    let mut checked_epochs = std::collections::BTreeSet::new();
    for (epoch, users) in &observations {
        let snapshot = per_epoch
            .get(*epoch as usize)
            .unwrap_or_else(|| panic!("served epoch {epoch} beyond the update stream"));
        let expected = snapshot.select(&params, None).expect("mirror select");
        assert_eq!(
            users, &expected.names,
            "epoch {epoch}: served selection diverges from single-threaded re-run"
        );
        checked_epochs.insert(*epoch);
    }
    assert!(
        !observations.is_empty() && !checked_epochs.is_empty(),
        "the load actually exercised the server"
    );
}

/// Writes a tiny profiles file and returns `(dir, profiles, socket)` for
/// the lifecycle tests (they need a server, not a large repository).
fn small_fixture(tag: &str) -> (PathBuf, PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("podium-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let repo = synthetic_repository(60, 6, 3, SEED);
    let profiles_json = podium::data::json::profiles_to_json(&repo).unwrap();
    let profiles_path = dir.join("profiles.json");
    std::fs::write(&profiles_path, &profiles_json).unwrap();
    let socket_path = dir.join("serve.sock");
    (dir, profiles_path, socket_path)
}

/// Sessions live in server memory: a session id minted before a restart
/// must be rejected with the typed `unknown_session` error afterwards —
/// never silently re-created, never a crash.
#[test]
fn refine_after_server_restart_is_a_typed_unknown_session() {
    let (dir, profiles_path, socket_path) = small_fixture("restart");

    let mut first = spawn_server(&profiles_path, &socket_path, dir.clone());
    await_socket(&socket_path);
    let session = {
        let (mut stream, mut reader) = connect(&socket_path);
        let v = round_trip(&mut stream, &mut reader, r#"{"op":"open-session"}"#);
        assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
        v["session"].as_u64().expect("session id")
    };

    // Restart: kill the first server, then bind a fresh one on the same
    // socket path (the listener removes the stale socket file).
    first.child.kill().expect("kill first server");
    first.child.wait().expect("reap first server");
    let _ = std::fs::remove_file(&socket_path);
    let second = spawn_server(&profiles_path, &socket_path, dir.clone());
    await_socket(&socket_path);

    let (mut stream, mut reader) = connect(&socket_path);
    let v = round_trip(
        &mut stream,
        &mut reader,
        &format!(r#"{{"op":"refine","session":{session},"budget":3}}"#),
    );
    assert_eq!(v["ok"].as_bool(), Some(false), "{v:?}");
    assert_eq!(v["error"].as_str(), Some("unknown_session"), "{v:?}");
    drop(second);
}

/// Closing a session that never existed, and refining a session whose
/// pinned epoch fell behind the configured `--session-lag`, both surface
/// as typed errors over the wire.
#[test]
fn unknown_close_and_retired_refine_are_typed_errors() {
    let (dir, profiles_path, socket_path) = small_fixture("retire");
    let guard = spawn_server_with(&profiles_path, &socket_path, dir, &["--session-lag", "2"]);
    await_socket(&socket_path);
    let (mut stream, mut reader) = connect(&socket_path);

    // Close of an unknown session: typed, not fatal.
    let v = round_trip(
        &mut stream,
        &mut reader,
        r#"{"op":"close-session","session":424242}"#,
    );
    assert_eq!(v["ok"].as_bool(), Some(false), "{v:?}");
    assert_eq!(v["error"].as_str(), Some("unknown_session"), "{v:?}");

    // Pin a session at epoch 0, then advance the store past the lag bound.
    let opened = round_trip(&mut stream, &mut reader, r#"{"op":"open-session"}"#);
    assert_eq!(opened["ok"].as_bool(), Some(true), "{opened:?}");
    let session = opened["session"].as_u64().unwrap();
    assert_eq!(opened["epoch"].as_u64(), Some(0));
    for i in 0..3u64 {
        let v = round_trip(
            &mut stream,
            &mut reader,
            &format!(
                r#"{{"op":"update-profile","user":"user-1","property":"topic-1","score":0.{i}1}}"#
            ),
        );
        assert_eq!(v["ok"].as_bool(), Some(true), "update {i}: {v:?}");
        assert_eq!(v["epoch"].as_u64(), Some(i + 1));
    }

    // Epoch 3, pinned 0, lag 2: the refine must report retirement (and
    // retire the session — a second refine finds it gone).
    let refine = format!(r#"{{"op":"refine","session":{session},"budget":3}}"#);
    let v = round_trip(&mut stream, &mut reader, &refine);
    assert_eq!(v["ok"].as_bool(), Some(false), "{v:?}");
    assert_eq!(v["error"].as_str(), Some("session_retired"), "{v:?}");
    let v = round_trip(&mut stream, &mut reader, &refine);
    assert_eq!(v["ok"].as_bool(), Some(false), "{v:?}");
    assert_eq!(v["error"].as_str(), Some("unknown_session"), "{v:?}");
    drop(guard);
}
