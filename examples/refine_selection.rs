//! Interactive-style refinement loop: inspect a selection, ask *why not?*
//! about a user you expected, then steer the next round with feedback —
//! plus the §10 randomized-weights trick for generating alternative
//! selections.
//!
//! Run with: `cargo run --example refine_selection`

use podium::core::customize::Feedback;
use podium::core::explain::explain_why_not;
use podium::core::greedy::greedy_select;
use podium::core::instance::DiversificationInstance;
use podium::core::weights::noisy_weights;
use podium::prelude::*;

fn main() {
    let repo = table2();
    let fitted = Podium::new()
        .bucketing(BucketingConfig::paper_default())
        .fit(&repo);

    // Round 1: plain diverse selection.
    let sel = fitted.select(2);
    let names: Vec<&str> = sel
        .users
        .iter()
        .map(|&u| repo.user_name(u).unwrap())
        .collect();
    println!(
        "round 1 selection: {{{}}} (score {})",
        names.join(", "),
        sel.score
    );

    // The client expected Bob. Why not Bob?
    let inst = fitted.instance(2);
    let bob = repo.user_by_name("Bob").unwrap();
    let why_not = explain_why_not(&inst, &repo, &sel, bob).expect("Bob unselected");
    println!(
        "\nwhy not {}? residual gain {:.0} vs. the smallest accepted gain {:.0}",
        why_not.name, why_not.residual_gain, why_not.smallest_accepted_gain
    );
    println!(
        "  {} of his groups are still uncovered; {} are redundant",
        why_not.novel_groups.len(),
        why_not.redundant_groups.len()
    );
    for &g in &why_not.novel_groups {
        println!("    uncovered: {}", fitted.groups().label(g, &repo));
    }

    // Round 2: the client decides cheap-eats *enthusiasts* matter —
    // prioritize the "high" buckets of both CheapEats properties (exactly
    // the uncovered groups the why-not explanation surfaced). Bob, their
    // only member, now makes the cut.
    let priority: Vec<_> = ["avgRating CheapEats", "visitFreq CheapEats"]
        .iter()
        .filter_map(|l| repo.property_id(l))
        .flat_map(|p| fitted.groups().groups_of_property(p))
        .filter(|&g| {
            fitted
                .groups()
                .bucket_of_group(g)
                .is_some_and(|b| b.label == "high")
        })
        .collect();
    let feedback = Feedback {
        priority,
        ..Feedback::default()
    };
    let refined = fitted.select_with_feedback(2, &feedback).unwrap();
    let names: Vec<&str> = refined
        .users()
        .iter()
        .map(|&u| repo.user_name(u).unwrap())
        .collect();
    println!(
        "\nround 2 (priority on high CheapEats buckets): {{{}}}, \
         priority score {:.0}, standard score {:.0}",
        names.join(", "),
        refined.priority_score(),
        refined.standard_score()
    );
    assert!(refined.users().contains(&bob), "feedback surfaced Bob");

    // Round 3: bad requests surface as typed errors instead of panics or
    // silently-empty selections, so an interactive client can explain the
    // problem and recover. Asking for "must have high CheapEats" while also
    // forbidding it is contradictory; a zero budget is a caller bug.
    let contradictory = Feedback {
        must_have: feedback.priority.clone(),
        must_not: feedback.priority.clone(),
        ..Feedback::default()
    };
    match fitted.select_with_feedback(2, &contradictory) {
        Err(CoreError::ContradictoryFeedback(g)) => println!(
            "\nrejected contradictory feedback: {} is both required and forbidden",
            fitted.groups().label(g, &repo)
        ),
        other => panic!("expected ContradictoryFeedback, got {other:?}"),
    }
    match fitted.try_select(0) {
        Err(CoreError::ZeroBudget) => {
            println!("rejected zero-budget request; falling back to budget 1");
            let fallback = fitted.try_select(1).expect("budget 1 is valid");
            println!(
                "  fallback selection: {{{}}}",
                repo.user_name(fallback.users[0]).unwrap()
            );
        }
        other => panic!("expected ZeroBudget, got {other:?}"),
    }

    // Alternative selections via randomized weights (§10): perturb the LBS
    // weights and watch the tie structure produce different, equally good
    // subsets.
    println!("\nalternative selections from ±30% weight noise:");
    let base = WeightScheme::LinearBySize.weights(fitted.groups());
    let covs = CovScheme::Single.cov(fitted.groups(), 2);
    for seed in 0..4 {
        let noisy = noisy_weights(&base, 0.3, seed);
        let inst = DiversificationInstance::new(fitted.groups(), noisy, covs.clone());
        let alt = greedy_select(&inst, 2);
        let names: Vec<&str> = alt
            .users
            .iter()
            .map(|&u| repo.user_name(u).unwrap())
            .collect();
        // Evaluate under the *unperturbed* objective for comparability.
        let eval = fitted.instance(2).score_of(&alt.users);
        println!(
            "  seed {seed}: {{{}}} (unperturbed score {eval})",
            names.join(", ")
        );
    }
}
