//! Live-repository scenario: keep the group structure in sync as user
//! activity streams in, re-selecting without rebuilding from scratch (§9's
//! "executed multiple times, e.g., to incorporate data updates").
//!
//! Run with: `cargo run --example incremental_updates`

use podium::core::greedy::greedy_select;
use podium::core::incremental::IncrementalGroups;
use podium::prelude::*;

fn select_names(repo: &UserRepository, groups: &GroupSet, budget: usize) -> (Vec<String>, f64) {
    let inst = DiversificationInstance::from_schemes(
        groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        budget,
    );
    let sel = greedy_select(&inst, budget);
    (
        sel.users
            .iter()
            .map(|&u| repo.user_name(u).unwrap_or("<new>").to_owned())
            .collect(),
        sel.score,
    )
}

fn main() {
    let repo = table2();
    let buckets = BucketingConfig::paper_default().bucketize(&repo);
    let mut live = IncrementalGroups::build(&repo, &buckets);

    let (names, score) = select_names(&repo, &live.snapshot(), 2);
    println!("t0 selection: {{{}}} (score {score})", names.join(", "));
    assert_eq!(names, ["Alice", "Eve"]);

    // Update 1: Bob falls in love with Mexican food (0.3 -> 0.9). His
    // membership moves from the "low" to the "high" bucket group.
    let bob = repo.user_by_name("Bob").unwrap();
    let mex = repo.property_id("avgRating Mexican").unwrap();
    let (old, new) = live.update_score(bob, mex, Some(0.9));
    println!(
        "\nupdate: Bob's avgRating Mexican 0.3 -> 0.9 (bucket {:?} -> {:?})",
        old.map(|b| b.0),
        new.map(|b| b.0)
    );
    let (names, score) = select_names(&repo, &live.snapshot(), 2);
    println!("t1 selection: {{{}}} (score {score})", names.join(", "));

    // Update 2: a new user joins and reviews everything cheap.
    let frank = live.add_user();
    for label in ["avgRating CheapEats", "visitFreq CheapEats"] {
        let p = repo.property_id(label).unwrap();
        live.update_score(frank, p, Some(0.95));
    }
    println!("\nupdate: new user joins with strong CheapEats activity");
    let snapshot = live.snapshot();
    println!(
        "group structure now spans {} users and {} groups",
        snapshot.user_count(),
        snapshot.len()
    );
    let inst = DiversificationInstance::from_schemes(
        &snapshot,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        3,
    );
    let sel = greedy_select(&inst, 3);
    let names: Vec<String> = sel
        .users
        .iter()
        .map(|&u| {
            repo.user_name(u)
                .map(str::to_owned)
                .unwrap_or_else(|_| format!("user{}", u.0))
        })
        .collect();
    println!(
        "t2 selection (B=3): {{{}}} (score {})",
        names.join(", "),
        sel.score
    );

    // Sanity: the incremental snapshot equals a from-scratch rebuild.
    // (Property-tested in the suite; asserted here on the final state.)
    assert_eq!(snapshot.user_count(), 6);
    println!("\nincremental structure verified against rebuild semantics ✓");
}
