//! JSON pipeline: the prototype's input format (§7) plus the explanation
//! payload behind the Figure 2 UI.
//!
//! Loads user profiles from the JSON interchange format, runs diverse
//! selection, and prints the data each pane of the Podium UI renders: the
//! per-user top-weight groups (left pane), the top-weight coverage headline
//! (middle pane), and a population-vs-subset score distribution for one
//! property (right pane).
//!
//! Run with: `cargo run --example json_profiles`

use podium::core::explain::SelectionReport;
use podium::prelude::*;

const PROFILES: &str = r#"{
  "users": [
    { "name": "Amit",  "properties": { "livesIn Berlin": 1.0, "avgRating Thai": 0.9,  "visitFreq Thai": 0.7 } },
    { "name": "Bella", "properties": { "livesIn Berlin": 1.0, "avgRating Thai": 0.2,  "visitFreq Thai": 0.3 } },
    { "name": "Chen",  "properties": { "livesIn Paris": 1.0,  "avgRating Thai": 0.55 } },
    { "name": "Dana",  "properties": { "livesIn Paris": 1.0,  "avgRating Thai": 0.5,  "visitFreq Thai": 0.5 } },
    { "name": "Ed",    "properties": { "livesIn Oslo": 1.0,   "avgRating Thai": 0.95, "visitFreq Thai": 0.9 } },
    { "name": "Fay",   "properties": { "livesIn Oslo": 1.0 } }
  ]
}"#;

fn main() {
    let repo = profiles_from_json(PROFILES).expect("valid profile JSON");
    println!(
        "loaded {} users / {} properties from JSON",
        repo.user_count(),
        repo.property_count()
    );

    let buckets = BucketingConfig::paper_default().bucketize(&repo);
    let groups = GroupSet::build(&repo, &buckets);
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        3,
    );
    let sel = greedy_select(&inst, 3);
    let names: Vec<&str> = sel
        .users
        .iter()
        .map(|&u| repo.user_name(u).unwrap())
        .collect();
    println!("selected (B=3): {{{}}}", names.join(", "));

    // The Figure 2 panes.
    let report = SelectionReport::build(&inst, &repo, &sel, groups.len());
    print!("\n{}", report.render());

    let thai = repo.property_id("avgRating Thai").expect("interned above");
    println!("\nscore distribution for 'avgRating Thai' (population vs subset):");
    for row in SelectionReport::property_distribution(&inst, &repo, &sel, thai) {
        println!(
            "  {:<8} population {:>5.1}%   subset {:>5.1}%",
            row.bucket_label,
            row.population_share * 100.0,
            row.subset_share * 100.0
        );
    }

    // Round-trip back to JSON (deterministic key order).
    let json = profiles_to_json(&repo).expect("serializable");
    println!("\nround-tripped JSON is {} bytes", json.len());
}
