//! Restaurant-owner scenario: a preliminary customer survey with
//! customization (the introduction's second motivating example, §6).
//!
//! The owner of a new Mexican-style restaurant wants opinions from users
//! who (a) actually rate that kind of cuisine — a "must have" filter — and
//! (b) come from as many different cities as possible — "priority
//! coverage" on the livesIn properties. Everything else diversifies as a
//! tie-breaker.
//!
//! Run with: `cargo run --release --example restaurant_survey`

use podium::core::customize::{custom_select, Feedback};
use podium::core::ids::PropertyId;
use podium::prelude::*;

fn main() {
    // A Yelp-like synthetic user repository (see podium-data's DESIGN notes
    // on how it stands in for the paper's Yelp dataset).
    let dataset = podium::data::synth::yelp(0.01, 42).generate();
    let repo = &dataset.repo;
    println!(
        "population: {} users, {} properties",
        repo.user_count(),
        repo.property_count()
    );

    let buckets = BucketingConfig::adaptive_default().bucketize(repo);
    let groups = GroupSet::build(repo, &buckets);
    println!("{} simple groups materialized", groups.len());

    // The owner's target cuisine: the most reviewed leaf cuisine.
    let target = (0..repo.property_count())
        .map(PropertyId::from_index)
        .filter(|&p| {
            repo.property_label(p)
                .map(|l| l.starts_with("avgRating Cuisine"))
                .unwrap_or(false)
        })
        .max_by_key(|&p| repo.property_support(p))
        .expect("synthetic data always has rated cuisines");
    println!(
        "survey target: users who rated '{}' ({} raters)",
        repo.property_label(target).unwrap(),
        repo.property_support(target)
    );

    // Customization feedback (Example 6.2's shape): must-have = any rating
    // bucket of the target cuisine; priority = the livesIn groups.
    let must_have = groups.groups_of_property(target);
    let priority: Vec<_> = (0..repo.property_count())
        .map(PropertyId::from_index)
        .filter(|&p| {
            repo.property_label(p)
                .map(|l| l.starts_with("visitFreq"))
                .unwrap_or(false)
        })
        .flat_map(|p| groups.groups_of_property(p))
        .collect();
    let feedback = Feedback {
        must_have,
        priority,
        ..Feedback::default()
    };

    let budget = 8;
    let sel = custom_select(
        repo,
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        budget,
        &feedback,
    )
    .expect("consistent feedback");

    println!(
        "\nrefined pool: {} of {} users qualify",
        sel.pool_size,
        repo.user_count()
    );
    println!(
        "selected {} users; priority score {:.0}, standard score {:.0}, \
         feedback group coverage {:.1}%",
        sel.users().len(),
        sel.priority_score(),
        sel.standard_score(),
        sel.feedback_group_coverage * 100.0
    );
    for &u in sel.users() {
        let profile = repo.profile(u).unwrap();
        println!(
            "  {} ({} known properties)",
            repo.user_name(u).unwrap(),
            profile.len()
        );
    }

    // Sanity: every selected user really rated the target cuisine.
    for &u in sel.users() {
        assert!(
            repo.profile(u).unwrap().contains(target),
            "must-have filter violated"
        );
    }
    println!("\nall selected users satisfy the must-have filter ✓");
}
