//! Quickstart: the paper's running example (Table 2) end to end.
//!
//! Builds the five-user repository, buckets the property scores with the
//! paper's edges, materializes simple groups, selects a diverse pair of
//! users under two weight schemes, and prints explanations.
//!
//! Run with: `cargo run --example quickstart`

use podium::prelude::*;

fn main() {
    // 1. The user repository of Table 2 (Alice, Bob, Carol, David, Eve).
    let repo = table2();
    println!(
        "repository: {} users, {} properties",
        repo.user_count(),
        repo.property_count()
    );

    // 2. Bucket every property's scores: [0, .4) low, [.4, .65) medium,
    //    [.65, 1] high; Boolean properties get a single "true" bucket.
    let buckets = BucketingConfig::paper_default().bucketize(&repo);

    // 3. Materialize the simple groups G_{p,b} (Definition 3.4).
    let groups = GroupSet::build(&repo, &buckets);
    println!("groups ({}):", groups.len());
    for (gid, g) in groups.iter() {
        println!("  {:<28} size {}", groups.label(gid, &repo), g.size());
    }

    // 4. LBS weights + Single coverage (the paper's defaults), budget 2.
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        2,
    );
    let sel = greedy_select(&inst, 2);
    let names: Vec<&str> = sel
        .users
        .iter()
        .map(|&u| repo.user_name(u).unwrap())
        .collect();
    println!(
        "\nLBS + Single selection (B=2): {{{}}} with total score {}",
        names.join(", "),
        sel.score
    );
    assert_eq!(names, ["Alice", "Eve"], "Example 3.8");

    // 5. Iden weights favour eccentric users (Example 3.8's comparison).
    let iden = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::Identical,
        CovScheme::Single,
        2,
    );
    let isel = greedy_select(&iden, 2);
    let inames: Vec<&str> = isel
        .users
        .iter()
        .map(|&u| repo.user_name(u).unwrap())
        .collect();
    println!(
        "Iden + Single selection (B=2): {{{}}} with {} groups represented",
        inames.join(", "),
        isel.score
    );

    // 6. Explanations (Definition 5.1 / Figure 2).
    let report = SelectionReport::build(&inst, &repo, &sel, 5);
    println!("\nexplanations:\n{}", report.render());
}
