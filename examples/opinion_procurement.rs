//! Traveler scenario: procure diverse opinions about a destination (§8.2's
//! simulation, the introduction's first motivating example).
//!
//! A traveler wants "tips" about a popular restaurant. We hold out that
//! destination's reviews, rebuild profiles without them, select 8 of its
//! reviewers with Podium and with Random, then reveal the held-out reviews
//! and compare the diversity of the procured opinions.
//!
//! Run with: `cargo run --release --example opinion_procurement`

use podium::baselines::prelude::*;
use podium::core::greedy::greedy_select;
use podium::metrics::opinion::evaluate_destination;
use podium::prelude::*;

fn main() {
    let dataset = podium::data::synth::tripadvisor(0.15, 7).generate();
    println!(
        "population: {} users, {} reviews over {} destinations",
        dataset.repo.user_count(),
        dataset.corpus.review_count(),
        dataset.corpus.destination_count()
    );

    // Hold out the single busiest destination.
    let split = holdout_split(&dataset, 1, 5);
    let destination = split.eval_destinations[0];
    let dest = &dataset.corpus.destinations[destination.index()];
    let all_reviews: Vec<_> = dataset.corpus.reviews_of(destination).collect();
    println!(
        "\ntarget destination: {} ({} ground-truth reviews, mean rating {:.2})",
        dest.name,
        all_reviews.len(),
        dataset.corpus.mean_rating(destination)
    );

    // Candidate pool: the destination's reviewers (each has a recorded
    // ground-truth opinion), with held-out-free profiles.
    let mut reviewers: Vec<_> = all_reviews.iter().map(|r| r.user).collect();
    reviewers.sort();
    reviewers.dedup();
    let pool = split.selection_repo.restrict(&reviewers);

    let budget = 8;

    // Podium selection on the pool.
    let buckets = BucketingConfig::adaptive_default().bucketize(&pool);
    let groups = GroupSet::build(&pool, &buckets);
    let inst = DiversificationInstance::from_schemes(
        &groups,
        WeightScheme::LinearBySize,
        CovScheme::Single,
        budget,
    );
    let podium_local = greedy_select(&inst, budget).users;
    let podium_sel: Vec<_> = podium_local.iter().map(|u| reviewers[u.index()]).collect();

    // Random selection on the same pool.
    let random_local = RandomSelector::new(7).select(&pool, budget);
    let random_sel: Vec<_> = random_local.iter().map(|u| reviewers[u.index()]).collect();

    // Reveal the held-out opinions and score them.
    println!("\n{:<22} {:>8} {:>8}", "opinion metric", "Podium", "Random");
    let pm = evaluate_destination(&dataset.corpus, destination, &podium_sel);
    let rm = evaluate_destination(&dataset.corpus, destination, &random_sel);
    println!(
        "{:<22} {:>8.3} {:>8.3}",
        "topic+sentiment cov.", pm.topic_sentiment_coverage, rm.topic_sentiment_coverage
    );
    println!(
        "{:<22} {:>8.3} {:>8.3}",
        "rating dist. sim.", pm.rating_distribution_similarity, rm.rating_distribution_similarity
    );
    println!(
        "{:<22} {:>8.3} {:>8.3}",
        "rating variance", pm.rating_variance, rm.rating_variance
    );

    println!("\nprocured opinions (Podium):");
    for r in all_reviews.iter().filter(|r| podium_sel.contains(&r.user)) {
        let topics: Vec<String> = r
            .topics
            .iter()
            .map(|&(t, s)| {
                format!(
                    "{}{}",
                    dataset.corpus.topic_names[t.index()],
                    match s {
                        podium::data::reviews::Sentiment::Positive => "(+)",
                        podium::data::reviews::Sentiment::Negative => "(-)",
                    }
                )
            })
            .collect();
        println!(
            "  user{:<5} rated {}/5, topics: {}",
            r.user.0,
            r.rating,
            if topics.is_empty() {
                "—".to_owned()
            } else {
                topics.join(", ")
            }
        );
    }
}
